//! Offline shim of `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate re-implements the serde derives for the shapes poem-rs uses:
//! non-generic structs (named / tuple / unit) and enums whose variants are
//! unit, newtype, tuple, or struct-like. The `#[serde(with = "path")]`
//! field attribute is honored on named fields. Generated code drives the
//! same data-model calls as real serde derive (`serialize_struct`,
//! `serialize_*_variant`, seq-style visitors, `u32` variant indices), so
//! any format written against the data model — in particular
//! `poem-proto`'s binary codec — sees identical structure.
//!
//! Parsing is hand-rolled over `proc_macro::TokenStream` (no syn/quote in
//! this environment); unsupported shapes fail the build with a clear
//! message rather than silently mis-serializing.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

// ------------------------------------------------------------------ model

struct Field {
    /// Named-field name, or the positional index rendered as a string.
    name: String,
    ty: String,
    /// `#[serde(with = "path")]` module path, if present.
    with: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Unnamed(Vec<Field>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ------------------------------------------------------------------ parse

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes attributes; returns the `with` path if a `#[serde(with =
/// "path")]` attribute was among them.
fn skip_attrs(iter: &mut TokenIter) -> Option<String> {
    let mut with = None;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(w) = parse_serde_with(&g.stream()) {
                    with = Some(w);
                }
            }
            other => panic!("serde shim derive: expected [...] after #, got {other:?}"),
        }
    }
    with
}

/// Extracts `path` from an attribute body of the form `serde(with = "path")`.
fn parse_serde_with(attr_body: &TokenStream) -> Option<String> {
    let mut iter = attr_body.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let parts: Vec<TokenTree> = inner.into_iter().collect();
    match parts.as_slice() {
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "with" && eq.as_char() == '=' =>
        {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        _ => {
            let rendered: String = parts.iter().map(|t| t.to_string()).collect();
            panic!(
                "serde shim derive: unsupported #[serde(...)] attribute `{rendered}` \
                 (only `with = \"path\"` is implemented)"
            )
        }
    }
}

/// Skips `pub`, `pub(...)`.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Collects type tokens until a top-level comma (tracking `<`/`>` depth),
/// consuming the comma if present.
fn collect_type(iter: &mut TokenIter) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    while let Some(tok) = iter.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                iter.next();
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        let tok = iter.next().expect("peeked");
        out.push_str(&tok.to_string());
        out.push(' ');
    }
    let t = out.trim().to_string();
    assert!(!t.is_empty(), "serde shim derive: empty field type");
    t
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let with = skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        let ty = collect_type(&mut iter);
        fields.push(Field { name, ty, with });
    }
    fields
}

fn parse_unnamed_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    let mut idx = 0usize;
    while iter.peek().is_some() {
        let with = skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let ty = collect_type(&mut iter);
        fields.push(Field { name: idx.to_string(), ty, with });
        idx += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        skip_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                iter.next();
                Fields::Unnamed(parse_unnamed_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        let mut depth = 0i32;
        while let Some(tok) = iter.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            iter.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type `{name}`)");
    }
    let body = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Struct(Fields::Unnamed(parse_unnamed_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Struct(Fields::Unit),
            other => panic!("serde shim derive: unsupported struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };
    Item { name, body }
}

// -------------------------------------------------------------- serialize

/// Emits `serialize_field` (or the `with`-wrapped equivalent) onto a
/// compound serializer binding named `st`, for a named field bound to
/// `expr`.
fn ser_named_field(out: &mut String, trait_path: &str, f: &Field, expr: &str, tag: &str) {
    if let Some(with) = &f.with {
        out.push_str(&format!(
            "{{\n\
             struct __SerdeWith{tag}<'__a>(&'__a {ty});\n\
             impl<'__a> ::serde::ser::Serialize for __SerdeWith{tag}<'__a> {{\n\
               fn serialize<__S2: ::serde::ser::Serializer>(&self, __s: __S2) \
                 -> ::core::result::Result<__S2::Ok, __S2::Error> {{\n\
                 {with}::serialize(self.0, __s)\n\
               }}\n\
             }}\n\
             {trait_path}::serialize_field(&mut __st, \"{name}\", &__SerdeWith{tag}({expr}))?;\n\
             }}\n",
            ty = f.ty,
            name = f.name,
        ));
    } else {
        out.push_str(&format!(
            "{trait_path}::serialize_field(&mut __st, \"{name}\", {expr})?;\n",
            name = f.name,
        ));
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            body.push_str(&format!(
                "let mut __st = ::serde::ser::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {n})?;\n",
                n = fields.len()
            ));
            for f in fields {
                ser_named_field(
                    &mut body,
                    "::serde::ser::SerializeStruct",
                    f,
                    &format!("&self.{}", f.name),
                    &f.name,
                );
            }
            body.push_str("::serde::ser::SerializeStruct::end(__st)\n");
        }
        Body::Struct(Fields::Unnamed(fields)) if fields.len() == 1 => {
            assert!(
                fields[0].with.is_none(),
                "serde shim derive: #[serde(with)] on newtype structs is unsupported"
            );
            body.push_str(&format!(
                "::serde::ser::Serializer::serialize_newtype_struct(\
                 __serializer, \"{name}\", &self.0)\n"
            ));
        }
        Body::Struct(Fields::Unnamed(fields)) => {
            body.push_str(&format!(
                "let mut __st = ::serde::ser::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {n})?;\n",
                n = fields.len()
            ));
            for f in fields {
                assert!(f.with.is_none(), "serde shim derive: with on tuple fields unsupported");
                body.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{})?;\n",
                    f.name
                ));
            }
            body.push_str("::serde::ser::SerializeTupleStruct::end(__st)\n");
        }
        Body::Struct(Fields::Unit) => {
            body.push_str(&format!(
                "::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"
            ));
        }
        Body::Enum(variants) => {
            body.push_str("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                        ));
                    }
                    Fields::Unnamed(fields) if fields.len() == 1 => {
                        body.push_str(&format!(
                            "{name}::{vname}(__f0) => \
                             ::serde::ser::Serializer::serialize_newtype_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                        ));
                    }
                    Fields::Unnamed(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __st = ::serde::ser::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds.join(", "),
                            n = fields.len()
                        ));
                        for b in &binds {
                            body.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(\
                                 &mut __st, {b})?;\n"
                            ));
                        }
                        body.push_str("::serde::ser::SerializeTupleVariant::end(__st)\n},\n");
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __st = ::serde::ser::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n",
                            binds.join(", "),
                            n = fields.len()
                        ));
                        for f in fields {
                            ser_named_field(
                                &mut body,
                                "::serde::ser::SerializeStructVariant",
                                f,
                                &f.name,
                                &format!("{vname}_{}", f.name),
                            );
                        }
                        body.push_str("::serde::ser::SerializeStructVariant::end(__st)\n},\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }

    format!(
        "const _: () = {{\n\
         impl ::serde::ser::Serialize for {name} {{\n\
           fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S) \
             -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n\
         }};\n"
    )
}

// ------------------------------------------------------------ deserialize

/// Emits a `let __v_N = ...;` statement pulling the next seq element of
/// the field's type (honoring `with`).
fn de_seq_field(out: &mut String, f: &Field, slot: usize, expected: &str) {
    let ty = &f.ty;
    if let Some(with) = &f.with {
        out.push_str(&format!(
            "let __v_{slot}: {ty} = {{\n\
             struct __WithField{slot}({ty});\n\
             impl<'__de2> ::serde::de::Deserialize<'__de2> for __WithField{slot} {{\n\
               fn deserialize<__D2: ::serde::de::Deserializer<'__de2>>(__d: __D2) \
                 -> ::core::result::Result<Self, __D2::Error> {{\n\
                 {with}::deserialize(__d).map(__WithField{slot})\n\
               }}\n\
             }}\n\
             match ::serde::de::SeqAccess::next_element::<__WithField{slot}>(&mut __seq)? {{\n\
               Some(__v) => __v.0,\n\
               None => return ::core::result::Result::Err(\
                 <__A::Error as ::serde::de::Error>::missing_field(\"{expected}\")),\n\
             }}\n\
             }};\n"
        ));
    } else {
        out.push_str(&format!(
            "let __v_{slot}: {ty} = \
             match ::serde::de::SeqAccess::next_element::<{ty}>(&mut __seq)? {{\n\
               Some(__v) => __v,\n\
               None => return ::core::result::Result::Err(\
                 <__A::Error as ::serde::de::Error>::missing_field(\"{expected}\")),\n\
             }};\n"
        ));
    }
}

/// Emits a visitor struct (named `vis`) whose `visit_seq` builds
/// `construct` from the given fields.
fn de_seq_visitor(vis: &str, value_ty: &str, fields: &[Field], construct: &str) -> String {
    let mut pulls = String::new();
    for (slot, f) in fields.iter().enumerate() {
        de_seq_field(&mut pulls, f, slot, &f.name);
    }
    format!(
        "struct {vis};\n\
         impl<'de> ::serde::de::Visitor<'de> for {vis} {{\n\
           type Value = {value_ty};\n\
           fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
             __f.write_str(\"{value_ty}\")\n\
           }}\n\
           fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
             -> ::core::result::Result<Self::Value, __A::Error> {{\n\
             {pulls}\n\
             ::core::result::Result::Ok({construct})\n\
           }}\n\
         }}\n"
    )
}

fn named_construct(path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> =
        fields.iter().enumerate().map(|(slot, f)| format!("{}: __v_{slot}", f.name)).collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn tuple_construct(path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = (0..fields.len()).map(|slot| format!("__v_{slot}")).collect();
    format!("{path}({})", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Fields::Named(fields)) => {
            let field_names: Vec<String> =
                fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
            let visitor = de_seq_visitor("__Visitor", name, fields, &named_construct(name, fields));
            format!(
                "{visitor}\n\
                 ::serde::de::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{}], __Visitor)",
                field_names.join(", ")
            )
        }
        Body::Struct(Fields::Unnamed(fields)) if fields.len() == 1 => {
            let ty = &fields[0].ty;
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                   type Value = {name};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) \
                     -> ::core::fmt::Result {{ __f.write_str(\"{name}\") }}\n\
                   fn visit_newtype_struct<__D2: ::serde::de::Deserializer<'de>>(\
                     self, __d: __D2) -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     <{ty} as ::serde::de::Deserialize>::deserialize(__d).map({name})\n\
                   }}\n\
                   fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     match ::serde::de::SeqAccess::next_element::<{ty}>(&mut __seq)? {{\n\
                       Some(__v) => ::core::result::Result::Ok({name}(__v)),\n\
                       None => ::core::result::Result::Err(\
                         <__A::Error as ::serde::de::Error>::missing_field(\"0\")),\n\
                     }}\n\
                   }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_newtype_struct(\
                 __deserializer, \"{name}\", __Visitor)"
            )
        }
        Body::Struct(Fields::Unnamed(fields)) => {
            let visitor = de_seq_visitor("__Visitor", name, fields, &tuple_construct(name, fields));
            format!(
                "{visitor}\n\
                 ::serde::de::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {n}, __Visitor)",
                n = fields.len()
            )
        }
        Body::Struct(Fields::Unit) => {
            format!(
                "struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                   type Value = {name};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) \
                     -> ::core::fmt::Result {{ __f.write_str(\"{name}\") }}\n\
                   fn visit_unit<__E: ::serde::de::Error>(self) \
                     -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                   }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_unit_struct(\
                 __deserializer, \"{name}\", __Visitor)"
            )
        }
        Body::Enum(variants) => {
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            let mut helper_visitors = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let path = format!("{name}::{vname}");
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                             ::core::result::Result::Ok({path})\n\
                             }},\n"
                        ));
                    }
                    Fields::Unnamed(fields) if fields.len() == 1 => {
                        let ty = &fields[0].ty;
                        arms.push_str(&format!(
                            "{idx}u32 => \
                             ::serde::de::VariantAccess::newtype_variant::<{ty}>(__variant)\
                             .map({path}),\n"
                        ));
                    }
                    Fields::Unnamed(fields) => {
                        let vis = format!("__V{idx}");
                        helper_visitors.push_str(&de_seq_visitor(
                            &vis,
                            name,
                            fields,
                            &tuple_construct(&path, fields),
                        ));
                        arms.push_str(&format!(
                            "{idx}u32 => ::serde::de::VariantAccess::tuple_variant(\
                             __variant, {n}, {vis}),\n",
                            n = fields.len()
                        ));
                    }
                    Fields::Named(fields) => {
                        let vis = format!("__V{idx}");
                        let field_names: Vec<String> =
                            fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                        helper_visitors.push_str(&de_seq_visitor(
                            &vis,
                            name,
                            fields,
                            &named_construct(&path, fields),
                        ));
                        arms.push_str(&format!(
                            "{idx}u32 => ::serde::de::VariantAccess::struct_variant(\
                             __variant, &[{}], {vis}),\n",
                            field_names.join(", ")
                        ));
                    }
                }
            }
            format!(
                "{helper_visitors}\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                   type Value = {name};\n\
                   fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) \
                     -> ::core::fmt::Result {{ __f.write_str(\"enum {name}\") }}\n\
                   fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A) \
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     let (__idx, __variant): (u32, __A::Variant) = \
                       ::serde::de::EnumAccess::variant(__data)?;\n\
                     match __idx {{\n\
                       {arms}\n\
                       __other => ::core::result::Result::Err(\
                         <__A::Error as ::serde::de::Error>::custom(\
                         format_args!(\"unknown variant index {{__other}} for enum {name}\"))),\n\
                     }}\n\
                   }}\n\
                 }}\n\
                 ::serde::de::Deserializer::deserialize_enum(\
                 __deserializer, \"{name}\", &[{}], __Visitor)",
                variant_names.join(", ")
            )
        }
    };

    format!(
        "const _: () = {{\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
           fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D) \
             -> ::core::result::Result<Self, __D::Error> {{\n\
             {body}\n\
           }}\n\
         }}\n\
         }};\n"
    )
}

// ------------------------------------------------------------ entrypoints

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
