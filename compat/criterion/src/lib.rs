//! Offline shim of the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the benchmark-facing subset the workspace benches use: groups, the
//! `iter` timing loop, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. It measures honestly — configurable warm-up
//! then a timed measurement window, reporting mean time per iteration and
//! throughput — but does no statistics, plots, or baseline persistence.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Units a benchmark processes per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level harness handle; carries the timing configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    /// Accepted for API compatibility; the shim times a wall-clock window
    /// rather than collecting discrete samples.
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Equivalent of `c.bench_function(...)` without a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let name = id.to_string();
        run_bench(&name, self, None, f);
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.criterion, self.throughput, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Target batch count per measurement window (from `sample_size`).
    batches: usize,
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    result_ns: f64,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run the routine untimed until the warm-up window ends,
        // and learn roughly how many iterations fit a batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }

        // Batch size: aim for `batches` timing checks over the measurement
        // window so `Instant::now` overhead stays negligible for
        // sub-microsecond routines.
        let elapsed = warm_start.elapsed().max(Duration::from_micros(1));
        let iters_per_sec = warm_iters.max(1) as f64 / elapsed.as_secs_f64();
        let batch = ((iters_per_sec * self.measurement.as_secs_f64() / self.batches.max(1) as f64)
            as u64)
            .max(1);

        let measure_start = Instant::now();
        let mut total_iters: u64 = 0;
        while measure_start.elapsed() < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            total_iters += batch;
        }
        let total = measure_start.elapsed();
        self.result_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        self.iterations = total_iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    criterion: &Criterion,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        warm_up: criterion.warm_up,
        measurement: criterion.measurement,
        batches: criterion.sample_size,
        result_ns: 0.0,
        iterations: 0,
    };
    f(&mut b);
    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 * 1e9 / b.result_ns.max(f64::MIN_POSITIVE);
        format!("  ({} {unit}/s)", human_rate(per_sec))
    });
    println!(
        "{label:<40} time: {}  ({} iters){}",
        human_time(b.result_ns),
        b.iterations,
        rate.unwrap_or_default()
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Declares a group runner function from a config expression and a list of
/// benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(10);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        let mut observed = 0.0;
        group.bench_function("add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64));
            observed = b.result_ns;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2);
        });
        group.finish();
        assert!(observed > 0.0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
