//! Scoped threads with the `crossbeam::thread` API shape, backed by
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from crossbeam kept deliberately: `scope` returns
//! `Ok(result)` always — std's scope propagates child panics by panicking
//! in the parent, so the `Err` arm is unreachable but kept for API parity.

/// A scope in which child threads borrowing from the stack can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (like
    /// crossbeam), enabling nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = Scope { inner: self.inner };
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Runs `f` with a scope; all threads spawned in it are joined before
/// `scope` returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
