//! Offline shim for the subset of `crossbeam` that poem-rs uses:
//! MPMC channels (`crossbeam::channel`) and scoped threads
//! (`crossbeam::thread::scope`). Built on `std::sync` + `std::thread`.

#![forbid(unsafe_code)]

pub mod channel;
pub mod thread;
