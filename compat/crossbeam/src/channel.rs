//! MPMC channels with the `crossbeam::channel` API shape.
//!
//! Senders and receivers are both cloneable; a channel disconnects when
//! every handle on the *other* side has been dropped. Bounded channels
//! apply backpressure by blocking `send` until a slot frees up.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel is currently empty.
    Empty,
    /// Channel is empty and all senders have been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel is empty and all senders have been dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel buffering at most `cap` messages; `send` blocks when
/// the buffer is full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued (bounded channels only block
    /// when full). Errors if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = self.shared.capacity.is_some_and(|cap| state.items.len() >= cap.max(1));
            if !full {
                state.items.push_back(value);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Enqueues without blocking if there is room; drops into `Err`
    /// otherwise. (Subset of crossbeam's `TrySendError` surface.)
    pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0
            || self.shared.capacity.is_some_and(|cap| state.items.len() >= cap.max(1))
        {
            return Err(SendError(value));
        }
        state.items.push_back(value);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        if state.senders == 0 {
            // Wake all blocked receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = state.items.pop_front() {
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = state.items.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers += 1;
        drop(state);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        if state.receivers == 0 {
            // Wake all blocked senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_clone_both_sides() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(5).unwrap();
        assert_eq!(rx2.recv(), Ok(5));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
