//! Offline shim of the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the subset of proptest's API the workspace tests use: `Strategy` with
//! `prop_map` / `prop_recursive` / `boxed`, `any::<T>()` over scalars and
//! tuples, range and collection strategies, the `proptest!` /
//! `prop_oneof!` / `prop_assert*!` macros, and a deterministic runner.
//!
//! Differences from real proptest, by design:
//! - no shrinking — on failure the offending inputs are printed verbatim;
//! - generation is seeded from a fixed constant, so runs are reproducible
//!   without persistence files;
//! - string "regex" strategies only support the `.{m,n}` shape the tests
//!   use (random printable ASCII of bounded length).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Random source handed to strategies; wraps the rand shim's [`SmallRng`].
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

pub mod strategy {
    use super::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        type Value: Debug;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values by applying `f` to progressively deeper
        /// strategies `depth` times (no lazy recursion — depth is bounded
        /// up front, which matches how the tests use it).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = f(s).boxed();
            }
            s
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Ranges of samplable numbers are strategies drawing uniformly.
    impl<T> Strategy for std::ops::Range<T>
    where
        T: rand::SampleUniform + PartialOrd + Copy + Debug,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    /// String "regex" strategy. Only the `.{m,n}` pattern the workspace
    /// tests use is supported: random printable ASCII with length in
    /// `[m, n]`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
                panic!(
                    "proptest shim: unsupported string pattern {self:?} \
                     (only `.{{m,n}}` is implemented)"
                )
            });
            let len = rng.gen_range(min..max + 1);
            (0..len).map(|_| char::from(rng.gen_range(0x20u8..0x7f))).collect()
        }
    }

    /// Parses `.{m,n}` → `(m, n)`.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (m, n) = rest.split_once(',')?;
        Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::{Rng, RngCore};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_standard {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )+};
    }

    impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Raw bit patterns: exercises infinities, NaNs, and subnormals,
            // which is exactly what codec round-trip tests want to see.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u32())
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                    return c;
                }
                // Surrogate range — redraw.
            }
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($t:ident),+))+) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )+};
    }

    impl_arbitrary_tuple! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size bound for collection strategies.
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.0.start >= self.0.end {
                self.0.start
            } else {
                rng.gen_range(self.0.start..self.0.end)
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`. Key collisions make the
    /// map smaller than the drawn size, same as real proptest.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            let mut map = BTreeMap::new();
            for _ in 0..len {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>` (3:1 in favour of `Some`, matching
    /// real proptest's default weighting).
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_range(0u8..4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Strategy producing either boolean with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen()
        }
    }
}

pub mod test_runner {
    use super::TestRng;
    use std::cell::RefCell;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration; only the case count is meaningful here.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Explicit test-case failure, produced by `Err(...)` returns from a
    /// `proptest!` body.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    thread_local! {
        static CASE_DESC: RefCell<String> = const { RefCell::new(String::new()) };
    }

    /// Records a debug rendering of the current case's inputs so a failure
    /// can report them (the shim does not shrink).
    pub fn set_case_desc(desc: String) {
        CASE_DESC.with(|d| *d.borrow_mut() = desc);
    }

    /// Fixed base seed: runs are deterministic and reproducible without
    /// proptest's persistence files.
    const BASE_SEED: u64 = 0x5eed_cafe_0b5e_55ed;

    /// Drives `body` for `cases` deterministic random cases, reporting the
    /// generated inputs of the first failing case.
    pub fn run<F: FnMut(&mut TestRng)>(cases: u32, mut body: F) {
        for case in 0..cases {
            let mut rng = TestRng::from_seed(BASE_SEED.wrapping_add(u64::from(case)));
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
            if let Err(panic) = outcome {
                let desc = CASE_DESC.with(|d| d.borrow().clone());
                eprintln!(
                    "proptest shim: case {case}/{cases} failed.\n  inputs: {desc}\n  \
                     (deterministic seed {BASE_SEED:#x} + case index; no shrinking)"
                );
                resume_unwind(panic);
            }
        }
    }

    /// Extracts the case count from a config expression.
    pub fn cases_of(cfg: &ProptestConfig) -> u32 {
        cfg.cases
    }
}

/// Namespace mirror of `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

// ------------------------------------------------------------------ macros

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            $crate::test_runner::run($crate::test_runner::cases_of(&__cfg), |__rng| {
                let __vals = ($($crate::strategy::Strategy::generate(&{ $strat }, __rng),)+);
                $crate::test_runner::set_case_desc(format!("{:?}", __vals));
                let ($($arg,)+) = __vals;
                // Bodies may `return Ok(())` early, matching real proptest.
                let __case = move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(__e) = __case() {
                    panic!("test case failed: {__e}");
                }
            });
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Uniform choice among the given strategies (all producing one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assertion macros: the shim maps these to plain `assert!` family — the
/// runner catches the panic and reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        let s = (0u8..6, 0.0f64..300.0, 1usize..4);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&s, &mut rng);
            assert!(a < 6);
            assert!((0.0..300.0).contains(&b));
            assert!((1..4).contains(&c));
        }
    }

    #[test]
    fn string_pattern_bounds_length() {
        let mut rng = crate::TestRng::from_seed(9);
        for _ in 0..100 {
            let s = Strategy::generate(&".{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u64),
            Pair(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = any::<u64>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 64, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
                any::<u64>().prop_map(Tree::Leaf),
            ]
        });
        let mut rng = crate::TestRng::from_seed(11);
        for _ in 0..50 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn macro_draws_collections(
            v in prop::collection::vec(any::<u8>(), 0..16),
            flag in prop::bool::ANY,
            opt in prop::option::of(any::<i32>()),
        ) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(flag, flag);
            if let Some(x) = opt {
                prop_assert_ne!(i64::from(x), i64::from(x) + 1);
            }
        }
    }
}
