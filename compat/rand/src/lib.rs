//! Offline shim for the subset of `rand` that poem-rs uses.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, the same family real `rand`
//! 0.8 uses for its 64-bit `SmallRng`), the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`SeedableRng::seed_from_u64`] with
//! SplitMix64 seeding. Deterministic per seed, which is all the emulator
//! requires (replayability, not crypto).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core RNG interface: a source of 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (floats: uniform in `[0, 1)`), i.e. `rand`'s `Standard` distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 16) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u8::sample(rng) as i8
    }
}
impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u16::sample(rng) as i16
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform [0, 1) with full float precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide);
                // Widening-multiply rejection-free mapping (Lemire); the
                // slight modulo bias over a 64-bit draw is far below any
                // statistical sensitivity of the emulator.
                let draw = rng.next_u64() as u128;
                let hi = ((draw * span as u128) >> 64) as $wide;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u);
                let draw = rng.next_u64() as u128;
                let hi = ((draw * span as u128) >> 64) as $u;
                range.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = f32::sample(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen::<f64>() < p
        }
    }

    /// Fills a byte slice.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion,
    /// like real `rand`).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to expand the seed, as rand does for xoshiro.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Convenience: a fresh generator seeded from the system clock + a
/// process-wide counter (mirrors `rand::thread_rng` loosely; only for
/// non-replayable convenience paths).
pub fn thread_rng() -> rngs::SmallRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0);
    SeedableRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x), "{x}");
            seen_lo |= x == 10;
        }
        assert!(seen_lo, "lower bound reachable");
        for _ in 0..1_000 {
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f), "{f}");
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}
