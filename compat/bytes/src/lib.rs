//! Offline shim for the subset of `bytes` that poem-rs uses.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (clones share the
//! allocation, which broadcast forwarding relies on); [`BytesMut`] is a
//! growable buffer with `split_to`/`advance` for frame reassembly; [`Buf`]
//! carries the cursor-style read API used by the framing layer.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous byte buffer.
///
/// Clones share one allocation; `as_ptr()` is identical across clones.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// View window into `data` (supports zero-copy `slice`).
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but it is still cheap).
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wraps a static slice. (The shim copies it once into a shared
    /// allocation; clones still share that allocation.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice out of range");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_vec(v.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v), start: 0, end: len }
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::de::{Deserializer, Error, Visitor};
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    impl Serialize for Bytes {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.serialize_bytes(self)
        }
    }

    impl<'de> Deserialize<'de> for Bytes {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            struct BytesVisitor;
            impl<'de> Visitor<'de> for BytesVisitor {
                type Value = Bytes;
                fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str("a byte buffer")
                }
                fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Bytes, E> {
                    Ok(Bytes::copy_from_slice(v))
                }
                fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Bytes, E> {
                    Ok(Bytes::copy_from_slice(v))
                }
                fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Bytes, E> {
                    Ok(Bytes::from(v))
                }
            }
            deserializer.deserialize_byte_buf(BytesVisitor)
        }
    }
}

/// Cursor-style read access to a contiguous buffer (minimal `bytes::Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Moves the cursor forward by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// A unique, growable byte buffer supporting cheap front-splitting.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: everything before it has been consumed. Compacted
    /// lazily so `advance`/`split_to` stay amortized O(1)-ish for the
    /// framing access pattern.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), head: 0 }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether nothing unconsumed remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends bytes at the back.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.compact_if_wasteful();
        self.data.extend_from_slice(extend);
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact_if_wasteful();
        BytesMut { data: front, head: 0 }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let v = if self.head == 0 { self.data } else { self.data[self.head..].to_vec() };
        Bytes::from(v)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    fn compact_if_wasteful(&mut self) {
        // Reclaim consumed front space once it dominates the buffer.
        if self.head > 4096 && self.head * 2 >= self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact_if_wasteful();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec(), head: 0 }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v, head: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = a.slice(1..4);
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(std::ptr::eq(&a[1], &s[0]), "slice must view the parent allocation");
    }

    #[test]
    fn bytes_mut_feed_and_split() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4, 5]);
        b.advance(1);
        let front = b.split_to(2);
        assert_eq!(&front[..], &[2, 3]);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.chunk(), &[4, 5]);
    }

    #[test]
    fn bytes_mut_compaction_preserves_content() {
        let mut b = BytesMut::new();
        for i in 0..3000u32 {
            b.extend_from_slice(&i.to_le_bytes());
            if i % 2 == 0 {
                b.advance(4);
            }
        }
        assert_eq!(b.len(), 1500 * 4);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1500 * 4);
        // 1500 words were consumed from the front, so word 1500 is first.
        assert_eq!(&frozen[..4], &1500u32.to_le_bytes());
    }
}
