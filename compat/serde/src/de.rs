//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Errors a [`Deserializer`] can produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from an arbitrary message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence or map had the wrong number of elements.
    fn invalid_length(len: usize, exp: &dyn Expected) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    /// An enum carried an unknown variant tag.
    fn unknown_variant(variant: &str, _expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!("unknown variant `{variant}`"))
    }

    /// A struct field was absent.
    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }
}

/// What a [`Visitor`] expected, for error messages.
pub trait Expected {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;
}

impl<'de, V: Visitor<'de>> Expected for V {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.expecting(formatter)
    }
}

impl Expected for &str {
    fn fmt(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
        formatter.write_str(self)
    }
}

impl Display for dyn Expected + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Expected::fmt(self, f)
    }
}

/// A data structure that can be deserialized from any serde format.
pub trait Deserialize<'de>: Sized {
    /// Builds this value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A stateful `Deserialize` (serde's seed mechanism); stateless seeds are
/// `PhantomData<T>`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Whether the format is human readable (binary formats return false).
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Walks values a [`Deserializer`] produces.
pub trait Visitor<'de>: Sized {
    type Value;

    /// What this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected bool {v}")))
    }
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}")))
    }
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected integer {v}")))
    }
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected float {v}")))
    }
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected char {v:?}")))
    }
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        Err(E::custom(format_args!("unexpected string {v:?}")))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected sequence"))
    }
    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected map"))
    }
    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom("unexpected enum"))
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion into a trivial deserializer yielding one primitive value
/// (serde's `value` module, reduced to the u32 variant-index case the
/// binary codec needs plus the integer family for completeness).
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer yielding exactly one primitive value.
pub struct PrimitiveDeserializer<T, E> {
    value: T,
    marker: PhantomData<E>,
}

macro_rules! impl_primitive_deserializer {
    ($($ty:ty => $visit:ident),* $(,)?) => {$(
        impl<'de, E: Error> IntoDeserializer<'de, E> for $ty {
            type Deserializer = PrimitiveDeserializer<$ty, E>;
            fn into_deserializer(self) -> Self::Deserializer {
                PrimitiveDeserializer { value: self, marker: PhantomData }
            }
        }

        impl<'de, E: Error> Deserializer<'de> for PrimitiveDeserializer<$ty, E> {
            type Error = E;

            fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.$visit(self.value)
            }

            forward_to_any! {
                deserialize_bool deserialize_i8 deserialize_i16 deserialize_i32
                deserialize_i64 deserialize_u8 deserialize_u16 deserialize_u32
                deserialize_u64 deserialize_f32 deserialize_f64 deserialize_char
                deserialize_str deserialize_string deserialize_bytes
                deserialize_byte_buf deserialize_option deserialize_unit
                deserialize_seq deserialize_map deserialize_identifier
                deserialize_ignored_any
            }

            fn deserialize_unit_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
            fn deserialize_tuple<V: Visitor<'de>>(
                self,
                _len: usize,
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _len: usize,
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _fields: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }
            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _variants: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, E> {
                self.deserialize_any(visitor)
            }

            fn is_human_readable(&self) -> bool {
                false
            }
        }
    )*};
}

macro_rules! forward_to_any {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }
    )*};
}

impl_primitive_deserializer! {
    u8 => visit_u8,
    u16 => visit_u16,
    u32 => visit_u32,
    u64 => visit_u64,
    i8 => visit_i8,
    i16 => visit_i16,
    i32 => visit_i32,
    i64 => visit_i64,
    bool => visit_bool,
    char => visit_char,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for usize {
    type Deserializer = PrimitiveDeserializer<u64, E>;
    fn into_deserializer(self) -> Self::Deserializer {
        PrimitiveDeserializer { value: self as u64, marker: PhantomData }
    }
}
