//! `Serialize`/`Deserialize` impls for the std types poem-rs serializes.

use crate::de::{self, Deserialize, Deserializer, MapAccess, SeqAccess, Visitor};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;

// ---------------------------------------------------------------- scalars

macro_rules! impl_scalar {
    ($($ty:ty, $ser:ident, $deser:ident, $visit:ident);* $(;)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }
                    fn $visit<E: de::Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$deser(V)
            }
        }
    )*};
}

impl_scalar! {
    bool, serialize_bool, deserialize_bool, visit_bool;
    i8, serialize_i8, deserialize_i8, visit_i8;
    i16, serialize_i16, deserialize_i16, visit_i16;
    i32, serialize_i32, deserialize_i32, visit_i32;
    i64, serialize_i64, deserialize_i64, visit_i64;
    u8, serialize_u8, deserialize_u8, visit_u8;
    u16, serialize_u16, deserialize_u16, visit_u16;
    u32, serialize_u32, deserialize_u32, visit_u32;
    u64, serialize_u64, deserialize_u64, visit_u64;
    f32, serialize_f32, deserialize_f32, visit_f32;
    f64, serialize_f64, deserialize_f64, visit_f64;
    char, serialize_char, deserialize_char, visit_char;
}

// usize/isize travel as their 64-bit forms (like real serde).

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| de::Error::custom("usize out of range"))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| de::Error::custom("isize out of range"))
    }
}

// ---------------------------------------------------------------- strings

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: de::Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ----------------------------------------------------- references & boxes

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

// ----------------------------------------------------------------- option

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ------------------------------------------------------------------- unit

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: de::Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<__S: Serializer>(&self, serializer: __S) -> Result<__S::Ok, __S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$idx)?;)+
                tup.end()
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct V<$($t),+>(PhantomData<($($t,)+)>);
                impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                    type Value = ($($t,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }
                    fn visit_seq<__A: SeqAccess<'de>>(
                        self,
                        mut seq: __A,
                    ) -> Result<Self::Value, __A::Error> {
                        Ok(($(
                            match seq.next_element::<$t>()? {
                                Some(v) => v,
                                None => return Err(de::Error::invalid_length($idx, &self)),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);
impl_tuple!(5 => A.0, B.1, C.2, D.3, E.4);
impl_tuple!(6 => A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple!(7 => A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple!(8 => A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

// ------------------------------------------------------------------ arrays

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of {N} elements")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut items = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element::<T>()? {
                        Some(v) => items.push(v),
                        None => return Err(de::Error::invalid_length(i, &self)),
                    }
                }
                items.try_into().map_err(|_| de::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

// ------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

macro_rules! impl_seq {
    ($ty:ident <T $(: $bound:ident $(+ $bound2:ident)*)?>, $insert:ident) => {
        impl<T: Serialize> Serialize for $ty<T> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.len()))?;
                for item in self {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
        }

        impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Deserialize<'de> for $ty<T> {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<T>(PhantomData<T>);
                impl<'de, T: Deserialize<'de> $(+ $bound $(+ $bound2)*)?> Visitor<'de> for V<T> {
                    type Value = $ty<T>;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str("a sequence")
                    }
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut out = $ty::new();
                        while let Some(item) = seq.next_element::<T>()? {
                            out.$insert(item);
                        }
                        Ok(out)
                    }
                }
                deserializer.deserialize_seq(V(PhantomData))
            }
        }
    };
}

impl_seq!(Vec<T>, push);
impl_seq!(VecDeque<T>, push_back);
impl_seq!(BTreeSet<T: Ord>, insert);

impl<T: Serialize, S2: BuildHasher> Serialize for HashSet<T, S2> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash, S2: BuildHasher + Default> Deserialize<'de>
    for HashSet<T, S2>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, S2>(PhantomData<(T, S2)>);
        impl<'de, T: Deserialize<'de> + Eq + Hash, S2: BuildHasher + Default> Visitor<'de> for V<T, S2> {
            type Value = HashSet<T, S2>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a set")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = HashSet::with_hasher(S2::default());
                while let Some(item) = seq.next_element::<T>()? {
                    out.insert(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// ------------------------------------------------------------------- maps

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, S2: BuildHasher> Serialize for HashMap<K, V, S2> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V, S2> Deserialize<'de> for HashMap<K, V, S2>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S2: BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V, S2>(PhantomData<(K, V, S2)>);
        impl<'de, K, V, S2> Visitor<'de> for Vis<K, V, S2>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
            S2: BuildHasher + Default,
        {
            type Value = HashMap<K, V, S2>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_hasher(S2::default());
                while let Some((k, v)) = map.next_entry::<K, V>()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

// --------------------------------------------------------------- duration

impl Serialize for std::time::Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(2)?;
        tup.serialize_element(&self.as_secs())?;
        tup.serialize_element(&self.subsec_nanos())?;
        tup.end()
    }
}

impl<'de> Deserialize<'de> for std::time::Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (secs, nanos) = <(u64, u32)>::deserialize(deserializer)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
