//! Offline shim implementing the subset of serde's data model that
//! poem-rs uses.
//!
//! The build environment has no registry access, so this crate provides
//! source-compatible `Serialize`/`Deserialize`/`Serializer`/`Deserializer`
//! traits plus impls for the std types the emulator serializes. The derive
//! macros come from the sibling `serde_derive` shim and drive structs and
//! enums through the same data model the real serde derive uses
//! (`serialize_struct`, `serialize_*_variant`, seq-style visitors), so the
//! wire format produced by `poem-proto`'s codec is unchanged.
//!
//! Scope notes: derived struct deserialization is seq-driven (how every
//! non-self-describing binary format, including `poem-proto`, decodes);
//! map-keyed self-describing formats (JSON-style) are out of scope.

#![forbid(unsafe_code)]

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the macro namespace, so these re-exports coexist
// with the traits of the same name (exactly how real serde does it).
pub use serde_derive::{Deserialize, Serialize};
