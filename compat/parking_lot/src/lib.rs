//! Offline shim for the subset of `parking_lot` that poem-rs uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same API surface (`Mutex`/`RwLock` without lock poisoning, `Condvar`
//! whose `wait` takes `&mut MutexGuard`) on top of `std::sync`. Poisoned
//! locks are recovered transparently: a panic while holding a lock does not
//! poison unrelated threads, matching parking_lot semantics closely enough
//! for this codebase.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` like parking_lot).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose wait methods take `&mut MutexGuard`,
/// mirroring parking_lot's API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
