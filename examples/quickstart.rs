//! Quickstart: emulate a three-node multi-radio MANET in-process, run the
//! hybrid routing protocol on every node, and inspect what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use poem::core::linkmodel::LinkParams;
use poem::core::mobility::MobilityModel;
use poem::core::radio::RadioConfig;
use poem::core::{ChannelId, EmuTime, NodeId, Point};
use poem::routing::{Router, RouterConfig};
use poem::server::sim::{SimConfig, SimNet};
use poem::server::viz;

fn main() {
    // A deterministic in-process emulation (virtual time, seeded).
    let mut net = SimNet::new(SimConfig { seed: 42, ..SimConfig::default() });

    // Three VMNs: two on channel 1, a dual-radio node bridging to
    // channel 2 — the multi-radio topology of the paper's Fig. 9.
    let ch1 = ChannelId(1);
    let ch2 = ChannelId(2);
    let nodes = [
        (NodeId(1), Point::new(0.0, 0.0), RadioConfig::single(ch1, 200.0)),
        (NodeId(2), Point::new(120.0, 0.0), RadioConfig::multi(&[ch1, ch2], 200.0)),
        (NodeId(3), Point::new(240.0, 0.0), RadioConfig::single(ch2, 200.0)),
    ];

    // Every node runs the real hybrid routing protocol (periodic
    // broadcasting + on-demand discovery) as its client app.
    let mut handles = Vec::new();
    for (id, pos, radios) in nodes {
        let router = Router::new(RouterConfig::hybrid());
        handles.push((id, router.handles()));
        net.add_node(
            id,
            pos,
            radios,
            MobilityModel::Stationary,
            LinkParams::ideal(11.0e6), // lossless 11 Mbps links
            Box::new(router),
        )
        .expect("valid scene");
    }

    // Let the protocol converge for five emulated seconds (instant in
    // wall time — this is virtual-time emulation).
    net.run_until(EmuTime::from_secs(5));

    println!("=== scene ===\n{}", viz::render_scene(net.scene(), 48, 8));
    println!("=== channel-indexed neighbor tables ===\n{}", viz::render_neighbors(net.scene()));

    println!("=== routing tables after 5 s ===");
    for (id, h) in &handles {
        println!("[{id}]\n{}", h.table.lock().render());
    }

    // Send application data end-to-end across the two channels: queue it
    // on VMN1's router and run a little longer.
    handles[0].1.tx.lock().push_back((NodeId(3), b"hello over two radios".to_vec()));
    net.run_until(EmuTime::from_secs(7));

    let received = handles[2].1.received.lock();
    println!("=== VMN3 received ===");
    for r in received.iter() {
        println!(
            "from {} seq {} after {}: {:?}",
            r.origin,
            r.seq,
            r.delivered_at - r.sent_at,
            String::from_utf8_lossy(&r.payload)
        );
    }
    assert!(!received.is_empty(), "data must arrive via the dual-radio relay");

    let (traffic, scene_ops) = (net.recorder().traffic().len(), net.recorder().scene().len());
    println!("\nrecorder captured {traffic} traffic events and {scene_ops} scene ops");
}
