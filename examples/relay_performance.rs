//! The §6.2 performance evaluation (Fig. 9 / Fig. 10 / Table 3): 4 Mbps
//! CBR across a moving dual-radio relay, with the measured loss-rate
//! curve compared against the theoretical expectation.
//!
//! ```sh
//! cargo run --release --example relay_performance
//! ```

use poem_bench::chart::render_series;
use poem_bench::fig10::{run, Fig10Params};

fn main() {
    let r = run(Fig10Params::default());

    println!("Fig. 9 scenario: VMN1 --ch1--> VMN2(moving) --ch2--> VMN3");
    println!(
        "CBR {} Mbps, payload {} B, hop distance {}, range {}, relay speed 10 u/s\n",
        r.scene.cbr_bps / 1e6,
        r.scene.payload,
        r.scene.hop_distance,
        r.scene.radio_range
    );

    println!("{}", render_series(&["measured", "expected"], &[&r.real_time, &r.expected], 24));

    println!(
        "offered {} payloads, delivered {} ({:.1}% overall loss)",
        r.offered,
        r.delivered,
        r.overall_loss * 100.0
    );
    println!(
        "the relay leaves radio range at t \u{2248} {:.1} s — both curves saturate there",
        r.scene.breakdown_time()
    );
}
