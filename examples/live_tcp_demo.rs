//! Real-time deployment demo (§5): a PoEm server on a TCP socket, three
//! client processes-worth of VMNs connecting over loopback, Fig. 5 clock
//! synchronization, unmodified routing-protocol code behind app runners,
//! and the traffic recorder capturing the run.
//!
//! ```sh
//! cargo run --example live_tcp_demo
//! ```

use poem::client::{AppRunner, EmuClient};
use poem::core::clock::{Clock, WallClock};
use poem::core::linkmodel::LinkParams;
use poem::core::mobility::MobilityModel;
use poem::core::radio::RadioConfig;
use poem::core::scene::{Scene, SceneOp};
use poem::core::{ChannelId, EmuDuration, EmuTime, NodeId, Point};
use poem::routing::{Router, RouterConfig};
use poem::server::{ServerConfig, ServerHandle};
use poem_record::query::TrafficQuery;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Build the emulated scene: a 3-node chain bridging two channels.
    let mut scene = Scene::new();
    let radio_plans = [
        (1u32, 0.0, RadioConfig::single(ChannelId(1), 200.0)),
        (2u32, 120.0, RadioConfig::multi(&[ChannelId(1), ChannelId(2)], 200.0)),
        (3u32, 240.0, RadioConfig::single(ChannelId(2), 200.0)),
    ];
    for (id, x, radios) in &radio_plans {
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(*id),
                    pos: Point::new(*x, 0.0),
                    radios: radios.clone(),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(11.0e6),
                },
            )
            .unwrap();
    }

    // Start the real-time server on an ephemeral loopback port.
    let server_clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let server = ServerHandle::start(scene, server_clock, ServerConfig::default()).unwrap();
    println!("PoEm server listening on {}", server.addr());

    // Connect one client per VMN, synchronize clocks, host a router each.
    let fast = RouterConfig {
        broadcast_interval: EmuDuration::from_millis(100),
        route_ttl: EmuDuration::from_millis(700),
        ..RouterConfig::hybrid()
    };
    let mut runners = Vec::new();
    let mut handle_map = Vec::new();
    for (id, _, radios) in &radio_plans {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let client =
            EmuClient::connect_tcp(server.addr(), NodeId(*id), radios.clone(), clock).unwrap();
        let offset = client.sync_clock(3).unwrap();
        println!("VMN{id} connected; last sync offset {offset}");
        let router = Router::new(fast);
        handle_map.push((NodeId(*id), router.handles()));
        runners.push(AppRunner::spawn(client, Box::new(router)));
    }

    // Wait for VMN1 to learn the 2-hop cross-channel route.
    print!("waiting for route VMN1 → VMN3 ");
    loop {
        if let Some(e) = handle_map[0].1.table.lock().route(NodeId(3)) {
            println!("→ via {} in {} hops", e.next_hop.node, e.hops);
            break;
        }
        print!(".");
        use std::io::Write;
        std::io::stdout().flush().ok();
        std::thread::sleep(Duration::from_millis(100));
    }

    // Push 50 payloads through the protocol.
    for i in 0..50u8 {
        handle_map[0].1.tx.lock().push_back((NodeId(3), vec![i; 32]));
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle_map[2].1.received.lock().len() < 50 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    let received = handle_map[2].1.received.lock().clone();
    println!("VMN3 received {}/50 payloads end-to-end", received.len());
    if let Some(first) = received.first() {
        println!("first payload delay: {}", first.delivered_at - first.sent_at);
    }

    // The recorder captured everything with client-side stamps.
    drop(runners);
    let traffic = server.recorder().traffic();
    let q = TrafficQuery::new(&traffic);
    let counts = q.copy_counts();
    println!(
        "\nrecorder: {} ingress rows; copies forwarded {}, dropped (loss {}, no-route {}, disconnected {})",
        q.offered(),
        counts.forwarded,
        counts.loss,
        counts.no_route,
        counts.disconnected
    );
    if let Some(s) = q.delay_summary() {
        println!(
            "per-hop forwarding delay: mean {:.3} ms, p95 {:.3} ms",
            s.mean * 1e3,
            s.p95 * 1e3
        );
    }
    server.shutdown();
    println!("server shut down cleanly");
}
