//! The §6.1 proof-of-concept test (Table 2), narrated: real-time scene
//! construction while a real routing protocol runs, with VMN1's routing
//! table inspected live after each operation.
//!
//! ```sh
//! cargo run --example proof_of_concept
//! ```

use poem::core::scene::SceneOp;
use poem::core::{EmuTime, NodeId, RadioId};
use poem::routing::{Router, RouterConfig};
use poem::server::sim::{SimConfig, SimNet};
use poem::server::viz;
use poem_bench::scenes::fig8_scene;

fn main() {
    let scene = fig8_scene();
    let mut net = SimNet::new(SimConfig { seed: 42, ..SimConfig::default() });

    let mut vmn1 = None;
    for (id, pos, radios) in &scene.nodes {
        let router = Router::new(RouterConfig::hybrid());
        if *id == NodeId(1) {
            vmn1 = Some(router.handles());
        }
        net.add_node(
            *id,
            *pos,
            radios.clone(),
            poem::core::mobility::MobilityModel::Stationary,
            scene.link,
            Box::new(router),
        )
        .unwrap();
    }
    let vmn1 = vmn1.unwrap();

    println!("Step 1: construct the network scene shown in Figure 8\n");
    net.run_until(EmuTime::from_secs(6));
    println!("{}", viz::render_scene(net.scene(), 44, 10));
    println!("Routing table in VMN1:\n{}", vmn1.table.lock().render());

    println!("Step 2: shrink the radio range of VMN1 to exclude VMN3\n");
    net.apply_op(SceneOp::SetRadioRange {
        id: NodeId(1),
        radio: RadioId(0),
        range: scene.shrunken_range,
    })
    .unwrap();
    net.run_until(EmuTime::from_secs(18));
    println!(
        "(VMN1 still *hears* VMN3 — the link is asymmetric — but the\n\
         protocol's two-way validation rejects it and routes via VMN2)\n"
    );
    println!("Routing table in VMN1:\n{}", vmn1.table.lock().render());

    println!("Step 3: set different channels for the radios on VMN1 and VMN2\n");
    net.apply_op(SceneOp::SetRadioChannel {
        id: NodeId(2),
        radio: RadioId(0),
        channel: scene.step3_channel,
    })
    .unwrap();
    net.run_until(EmuTime::from_secs(28));
    println!("Routing table in VMN1:\n{}", vmn1.table.lock().render());
    println!("Channel-indexed neighbor tables:\n{}", viz::render_neighbors(net.scene()));
}
