//! Group mobility showcase (the §7 future-work "group mobility" model):
//! a patrol — leader plus four formation members — marches across the
//! arena while a stationary base station tracks connectivity through the
//! hybrid routing protocol, with energy metering on.
//!
//! ```sh
//! cargo run --example group_patrol
//! ```

use poem::core::energy::PowerProfile;
use poem::core::linkmodel::LinkParams;
use poem::core::mobility::MobilityModel;
use poem::core::radio::RadioConfig;
use poem::core::{ChannelId, EmuTime, NodeId, Point};
use poem::routing::{Router, RouterConfig};
use poem::server::sim::{SimConfig, SimNet};
use poem::server::{viz, PipelineConfig};

fn main() {
    let mut net = SimNet::new(SimConfig {
        seed: 5,
        models: PipelineConfig {
            mac: poem::core::mac::MacModel::None,
            power: Some(PowerProfile::wifi_11b()),
        },
        ..SimConfig::default()
    });
    let ch = ChannelId(1);

    // Base station at the origin.
    let base = Router::new(RouterConfig::hybrid());
    let base_handles = base.handles();
    net.add_node(
        NodeId(100),
        Point::new(0.0, 0.0),
        RadioConfig::single(ch, 250.0),
        MobilityModel::Stationary,
        LinkParams::ideal(11.0e6),
        Box::new(base),
    )
    .unwrap();

    // Patrol leader marching east at 8 u/s, members in a diamond.
    net.add_node(
        NodeId(1),
        Point::new(50.0, 0.0),
        RadioConfig::single(ch, 250.0),
        MobilityModel::Linear { direction_deg: 0.0, speed: 8.0 },
        LinkParams::ideal(11.0e6),
        Box::new(Router::new(RouterConfig::hybrid())),
    )
    .unwrap();
    let offsets = [(-30.0, 0.0), (30.0, 0.0), (0.0, 30.0), (0.0, -30.0)];
    for (i, (dx, dy)) in offsets.iter().enumerate() {
        net.add_node(
            NodeId(2 + i as u32),
            Point::new(50.0 + dx, *dy),
            RadioConfig::single(ch, 250.0),
            MobilityModel::GroupMember { leader: NodeId(1), max_wander: 8.0 },
            LinkParams::ideal(11.0e6),
            Box::new(Router::new(RouterConfig::hybrid())),
        )
        .unwrap();
    }

    for t in [5u64, 15, 25, 35] {
        net.run_until(EmuTime::from_secs(t));
        println!("===== t = {t} s =====");
        println!("{}", viz::render_scene(net.scene(), 60, 9));
        let table = base_handles.table.lock();
        let reachable = table.len();
        println!("base station reaches {reachable} patrol nodes:\n{table}");
    }

    // Energy: the whole patrol has been beaconing for 35 s.
    println!("===== energy ledger at t = 35 s =====");
    let now = net.now();
    if let Some(book) = net.pipeline().energy() {
        for (id, consumed, _) in book.report(now) {
            println!("  {id}: {consumed:.1} J");
        }
    }
}
