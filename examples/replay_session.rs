//! Post-emulation replay (§3.2 step 7 / Table 1): run an emulation with
//! mobility and interactive scene ops, persist both logs to disk, load
//! them back, and step through the reconstructed run.
//!
//! ```sh
//! cargo run --example replay_session
//! ```

use poem::core::linkmodel::LinkParams;
use poem::core::mobility::MobilityModel;
use poem::core::radio::RadioConfig;
use poem::core::scene::SceneOp;
use poem::core::{ChannelId, EmuTime, NodeId, Point};
use poem::record::{Recorder, ReplayEngine};
use poem::routing::{Router, RouterConfig};
use poem::server::sim::{SimConfig, SimNet};
use poem::server::viz;

fn main() {
    // --- live run ---------------------------------------------------
    let mut net = SimNet::new(SimConfig { seed: 7, ..SimConfig::default() });
    for (id, x, mobility) in [
        (1u32, 0.0, MobilityModel::Stationary),
        (2u32, 100.0, MobilityModel::Linear { direction_deg: 90.0, speed: 8.0 }),
        (3u32, 200.0, MobilityModel::random_walk(2.0, 6.0, 1.0)),
    ] {
        net.add_node(
            NodeId(id),
            Point::new(x, 0.0),
            RadioConfig::single(ChannelId(1), 150.0),
            mobility,
            LinkParams::ideal(11.0e6),
            Box::new(Router::new(RouterConfig::hybrid())),
        )
        .unwrap();
    }
    // An interactive op mid-run: drag VMN1 northwards at t = 4 s.
    net.schedule_op(
        EmuTime::from_secs(4),
        SceneOp::MoveNode { id: NodeId(1), pos: Point::new(0.0, 60.0) },
    );
    net.run_until(EmuTime::from_secs(8));
    println!("=== live final scene (t = 8 s) ===\n{}", viz::render_scene(net.scene(), 44, 10));

    // --- persist ------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("poem-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("session");
    net.recorder().save(&stem).unwrap();
    let (traffic, ops) = net.recorder().counts();
    println!("persisted {traffic} traffic records and {ops} scene ops under {}", dir.display());

    // --- reload + replay ----------------------------------------------
    let loaded = Recorder::load(&stem).unwrap();
    let engine = ReplayEngine::new(loaded.scene());
    let (first, last) = engine.span().unwrap();
    println!("\nreplaying {} ops spanning {first} .. {last}", engine.len());

    for t in [0u64, 2, 4, 6, 8] {
        let snap = engine.scene_at(EmuTime::from_secs(t)).unwrap();
        println!("--- t = {t} s ---");
        for v in snap.nodes() {
            println!("  {} at {}", v.id, v.pos);
        }
    }

    println!("\n=== run summary ===\n{}", poem::server::viz::render_run_summary(&loaded.scene()));

    // The replayed end state matches the live one exactly.
    let replayed = engine.scene_at(EmuTime::from_secs(8)).unwrap();
    for v in net.scene().nodes() {
        let r = replayed.node(v.id).unwrap();
        assert!(r.pos.distance(v.pos) < 1e-9, "{}: {} vs {}", v.id, r.pos, v.pos);
    }
    println!("\nreplayed final scene matches the live run exactly ✓");
    std::fs::remove_dir_all(&dir).ok();
}
