//! Scenario-script-driven emulation (the §7 future-work item): the same
//! text format the `poem-server` CLI consumes drives the deterministic
//! harness, including mid-run channel switches, range changes, mobility
//! reassignment and node removal — the full §2.2 stress vocabulary
//! ("switching the channel, changing the radio range, moving out some
//! nodes and lowering link bandwidth ... at any time").
//!
//! ```sh
//! cargo run --example scripted_scenario
//! ```

use poem::core::{EmuTime, NodeId};
use poem::routing::{Router, RouterConfig};
use poem::server::script::Script;
use poem::server::sim::{SimConfig, SimNet};
use poem::server::viz;

const SCENARIO: &str = r"
    # A 5-node multi-radio scene under volatile circumstances.
    at 0   add VMN1 0 0     radio ch1 220
    at 0   add VMN2 150 0   radio ch1 220 radio ch2 220
    at 0   add VMN3 300 0   radio ch2 220
    at 0   add VMN4 150 150 radio ch1 220
    at 0   add VMN5 0 150   radio ch1 220

    at 4   mobility VMN4 linear 180 12      # VMN4 drifts west
    at 6   range VMN1 radio0 120            # military jamming: range cut
    at 10  retune VMN3 radio0 ch1           # VMN3 switches channel
    at 14  remove VMN5                      # node destroyed
    at 18  move VMN4 80 40                  # drag-and-drop reposition
";

fn main() {
    let script = Script::parse(SCENARIO).expect("valid scenario");
    println!("parsed {} scenario ops, last at {}", script.len(), script.end());

    // Host protocol code on every scripted node: the script's AddNode
    // entries become hosted nodes running the hybrid router, every other
    // entry is scheduled as-is.
    let mut net = SimNet::new(SimConfig { seed: 99, ..SimConfig::default() });
    let mut handles = Vec::new();
    for entry in script.entries() {
        if let poem::core::scene::SceneOp::AddNode { id, pos, radios, mobility, link } = &entry.op {
            let router = Router::new(RouterConfig::hybrid());
            handles.push((*id, router.handles()));
            net.add_node(*id, *pos, radios.clone(), *mobility, *link, Box::new(router))
                .expect("valid node");
        } else {
            net.schedule_op(entry.at, entry.op.clone());
        }
    }

    for checkpoint in [3u64, 8, 12, 16, 22] {
        net.run_until(EmuTime::from_secs(checkpoint));
        println!("\n===== t = {checkpoint} s =====");
        println!("{}", viz::render_scene(net.scene(), 52, 10));
        for (id, h) in &handles {
            if net.scene().node(*id).is_some() && *id == NodeId(1) {
                println!("routing table in {id}:\n{}", h.table.lock().render());
            }
        }
    }

    let (traffic, ops) = net.recorder().counts();
    println!("run recorded {traffic} traffic events and {ops} scene ops (replayable)");
}
