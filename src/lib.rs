//! # poem — a portable real-time emulator for testing multi-radio MANETs
//!
//! Facade crate re-exporting the PoEm workspace. See the individual crates
//! for the full APIs:
//!
//! * [`core`] — emulation substrate (time, mobility, link models,
//!   channel-indexed neighbor tables, scene, scheduler).
//! * [`proto`] — client↔server wire protocol.
//! * [`record`] — traffic/scene recording and post-emulation replay.
//! * [`client`] — the emulation client library protocols run on.
//! * [`server`] — the central emulation server.
//! * [`routing`] — MANET routing protocols under test (hybrid, DSDV-like,
//!   AODV-like).
//! * [`traffic`] — workload generators and meters.
//! * [`obs`] — dependency-free metrics substrate (counters, gauges,
//!   histograms) wired through the pipeline, server, cluster and client.
//! * [`baselines`] — JEmu-like centralized and MobiEmu-like distributed
//!   architecture models used for comparison.

#![forbid(unsafe_code)]

/// Commonly used items in one import: `use poem::prelude::*;`.
pub mod prelude {
    pub use poem_client::{AppRunner, ClientApp, EmuClient, Nic};
    pub use poem_core::clock::{Clock, VirtualClock, WallClock};
    pub use poem_core::linkmodel::LinkParams;
    pub use poem_core::mobility::MobilityModel;
    pub use poem_core::packet::Destination;
    pub use poem_core::radio::RadioConfig;
    pub use poem_core::scene::{Scene, SceneOp};
    pub use poem_core::{ChannelId, EmuDuration, EmuTime, NodeId, Point};
    pub use poem_record::{Recorder, ReplayEngine};
    pub use poem_routing::{Router, RouterConfig};
    pub use poem_server::script::Script;
    pub use poem_server::sim::{SimConfig, SimNet};
    pub use poem_server::{ServerConfig, ServerHandle};
    pub use poem_traffic::{Pattern, TrafficApp, TrafficAppConfig};
}

pub use poem_baselines as baselines;
pub use poem_client as client;
pub use poem_core as core;
pub use poem_obs as obs;
pub use poem_proto as proto;
pub use poem_record as record;
pub use poem_routing as routing;
pub use poem_server as server;
pub use poem_traffic as traffic;
