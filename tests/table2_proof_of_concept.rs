//! Integration test for experiment E2 (Table 2, §6.1): the proof-of-
//! concept test under real-time scene construction, end-to-end through
//! the harness, scene, neighbor tables and the hybrid routing protocol.

use poem_bench::table2;

#[test]
fn table2_step_sequence_matches_paper() {
    let r = table2::run(7);

    // Step 1 — scene constructed: VMN1 reaches both peers directly.
    assert_eq!(r.step1, vec![(2, 2, 1), (3, 3, 1)]);

    // Step 2 — radio range shrunk to exclude VMN3: the direct route is
    // replaced by the 2-hop route through VMN2. Crucially the link VMN1←VMN3
    // still *carries* VMN3's broadcasts (asymmetric!), so this only works
    // because the protocol validates bidirectionality.
    assert_eq!(r.step2, vec![(2, 2, 1), (3, 2, 2)]);

    // Step 3 — VMN1 and VMN2 radios on different channels: no usable
    // neighbor remains and the table empties.
    assert_eq!(r.step3, vec![]);
}

#[test]
fn table2_renderings_match_format() {
    let r = table2::run(99);
    assert_eq!(r.rendered[0], "# of Routing Entries: 2\n2 --> 2 1\n3 --> 3 1\n");
    assert_eq!(r.rendered[1], "# of Routing Entries: 2\n2 --> 2 1\n3 --> 2 2\n");
    assert_eq!(r.rendered[2], "# of Routing Entries: 0\n");
}
