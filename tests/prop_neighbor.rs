//! Property tests for the §4.2 neighbor-table invariant: after *any*
//! sequence of scene operations, both the channel-indexed scheme and the
//! unified baseline agree exactly with a from-scratch recomputation of
//!
//! ```text
//! B ∈ NT(A,k) ⇔ k ∈ CS(A) ∩ CS(B) ∧ D(A,B) ≤ R(A,k)
//! ```

use poem_core::neighbor::{
    brute_force, check_against_brute_force, ChannelIndexedTables, NeighborTables, UnifiedTable,
};
use poem_core::radio::{Radio, RadioConfig};
use poem_core::{ChannelId, NodeId, Point};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: u8, x: f64, y: f64, radios: Vec<(u8, f64)> },
    Remove { id: u8 },
    Move { id: u8, x: f64, y: f64 },
    Retune { id: u8, radios: Vec<(u8, f64)> },
}

fn radio_strategy() -> impl Strategy<Value = Vec<(u8, f64)>> {
    prop::collection::vec((0u8..4, 10.0f64..300.0), 1..3)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..10, 0.0f64..400.0, 0.0f64..400.0, radio_strategy())
            .prop_map(|(id, x, y, radios)| Op::Insert { id, x, y, radios }),
        (0u8..10).prop_map(|id| Op::Remove { id }),
        (0u8..10, 0.0f64..400.0, 0.0f64..400.0).prop_map(|(id, x, y)| Op::Move { id, x, y }),
        (0u8..10, radio_strategy()).prop_map(|(id, radios)| Op::Retune { id, radios }),
    ]
}

fn to_config(radios: &[(u8, f64)]) -> RadioConfig {
    RadioConfig::from_radios(
        radios.iter().map(|&(c, r)| Radio::new(ChannelId(c as u16), r)).collect(),
    )
}

fn apply<T: NeighborTables>(t: &mut T, op: &Op) {
    match op {
        Op::Insert { id, x, y, radios } => {
            t.insert_node(NodeId(*id as u32), Point::new(*x, *y), to_config(radios))
        }
        Op::Remove { id } => t.remove_node(NodeId(*id as u32)),
        Op::Move { id, x, y } => t.update_position(NodeId(*id as u32), Point::new(*x, *y)),
        Op::Retune { id, radios } => t.update_radios(NodeId(*id as u32), to_config(radios)),
    }
}

/// Coordinates biased onto the 50-unit lattice so nodes frequently sit
/// *exactly* on grid-cell corners and exactly one range apart (the exact
/// ranges below are all multiples of 50) — the boundary cases where an
/// off-by-one in the 3×3 cell gather or the inclusive distance compare
/// would show.
fn lattice_coord() -> impl Strategy<Value = f64> {
    prop_oneof![(0u8..9).prop_map(|k| k as f64 * 50.0), 0.0f64..400.0]
}

/// 1–2 radios over ≥3 channels with exact lattice-aligned ranges.
fn exact_radio_strategy() -> impl Strategy<Value = Vec<(u8, f64)>> {
    prop::collection::vec(
        (0u8..4, prop_oneof![Just(50.0f64), Just(100.0f64), Just(150.0f64)]),
        1..3,
    )
}

fn boundary_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..10, lattice_coord(), lattice_coord(), exact_radio_strategy())
            .prop_map(|(id, x, y, radios)| Op::Insert { id, x, y, radios }),
        (0u8..10).prop_map(|id| Op::Remove { id }),
        (0u8..10, lattice_coord(), lattice_coord()).prop_map(|(id, x, y)| Op::Move { id, x, y }),
        (0u8..10, exact_radio_strategy()).prop_map(|(id, radios)| Op::Retune { id, radios }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn both_schemes_match_brute_force(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut indexed = ChannelIndexedTables::new();
        let mut unified = UnifiedTable::new();
        for op in &ops {
            apply(&mut indexed, op);
            apply(&mut unified, op);
        }
        prop_assert!(check_against_brute_force(&indexed).is_ok(),
            "{:?}", check_against_brute_force(&indexed));
        prop_assert!(check_against_brute_force(&unified).is_ok(),
            "{:?}", check_against_brute_force(&unified));
        // And with each other, over every (node, channel) pair.
        for id in indexed.node_ids() {
            for ch in 0u16..4 {
                prop_assert_eq!(
                    indexed.neighbors(id, ChannelId(ch)),
                    unified.neighbors(id, ChannelId(ch))
                );
            }
        }
    }

    #[test]
    fn brute_force_relation_is_channel_and_range_correct(
        ops in prop::collection::vec(op_strategy(), 1..40)
    ) {
        let mut indexed = ChannelIndexedTables::new();
        for op in &ops {
            apply(&mut indexed, op);
        }
        let mut nodes = BTreeMap::new();
        for id in indexed.node_ids() {
            nodes.insert(id, indexed.snapshot(id).unwrap().clone());
        }
        let rel = brute_force(&nodes);
        for ((a, ch), nbrs) in &rel {
            let sa = &nodes[a];
            // A row only exists for channels in CS(A).
            prop_assert!(sa.radios.listens_on(*ch));
            for b in nbrs {
                let sb = &nodes[b];
                prop_assert!(sb.radios.listens_on(*ch), "neighbor not on channel");
                prop_assert!(
                    sa.pos.distance(sb.pos) <= sa.radios.range_on(*ch).unwrap() + 1e-9,
                    "neighbor out of range"
                );
                prop_assert_ne!(a, b, "no self loops");
            }
        }
    }

    #[test]
    fn indexed_update_work_is_bounded_by_channel_population(
        n_nodes in 4usize..12,
        moves in 1usize..10,
    ) {
        // Every node single-radio; mover on channel 0. The indexed scheme
        // may only evaluate pairs against channel-0 nodes.
        let mut t = ChannelIndexedTables::new();
        let ch0_nodes = n_nodes / 2;
        for i in 0..n_nodes {
            let ch = if i < ch0_nodes { 0 } else { 1 };
            t.insert_node(
                NodeId(i as u32),
                Point::new(i as f64 * 10.0, 0.0),
                RadioConfig::single(ChannelId(ch), 100.0),
            );
        }
        t.reset_work();
        for m in 0..moves {
            t.update_position(NodeId(0), Point::new(m as f64, 5.0));
        }
        let max_checks = (ch0_nodes - 1) * moves;
        prop_assert!(t.work() as usize <= max_checks, "{} > {max_checks}", t.work());
    }

    #[test]
    fn grid_matches_scan_byte_for_byte_on_boundary_heavy_ops(
        ops in prop::collection::vec(boundary_op_strategy(), 1..60)
    ) {
        // The spatial grid is a pure acceleration: after every single op
        // of a boundary-heavy random sequence (nodes exactly on cell
        // corners, distances exactly equal to ranges, retunes that grow
        // the cell), the grid-backed rows must equal the scanning rows
        // exactly, and the final state must match brute force.
        let mut grid = ChannelIndexedTables::new();
        let mut scan = ChannelIndexedTables::without_grid();
        for (step, op) in ops.iter().enumerate() {
            apply(&mut grid, op);
            apply(&mut scan, op);
            for id in grid.node_ids() {
                for ch in 0u16..4 {
                    prop_assert_eq!(
                        grid.neighbors(id, ChannelId(ch)),
                        scan.neighbors(id, ChannelId(ch)),
                        "step {} ({:?}): node {} channel {}", step, op, id, ch
                    );
                }
            }
            prop_assert_eq!(grid.node_ids(), scan.node_ids(), "membership diverged");
        }
        prop_assert!(check_against_brute_force(&grid).is_ok(),
            "{:?}", check_against_brute_force(&grid));
    }
}
