//! Property tests for the wire codec: arbitrary values roundtrip
//! bit-exactly, and corrupted/truncated frames never decode successfully
//! into a *different* valid value silently (they error instead).

use bytes::Bytes;
use poem_core::packet::Destination;
use poem_core::{ChannelId, EmuPacket, EmuTime, NodeId, PacketId, RadioId};
use poem_proto::{from_bytes, to_bytes};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Tree {
    Leaf(u64),
    Pair(Box<Tree>, Box<Tree>),
    Tagged { name: String, children: Vec<Tree> },
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = any::<u64>().prop_map(Tree::Leaf);
    leaf.prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b))),
            (".{0,12}", prop::collection::vec(inner, 0..4))
                .prop_map(|(name, children)| Tree::Tagged { name, children }),
        ]
    })
}

fn packet_strategy() -> impl Strategy<Value = EmuPacket> {
    (
        any::<u64>(),
        any::<u32>(),
        prop_oneof![
            any::<u32>().prop_map(|d| Destination::Unicast(NodeId(d))),
            Just(Destination::Broadcast)
        ],
        any::<u16>(),
        any::<u8>(),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(id, src, dst, ch, radio, t, payload)| {
            EmuPacket::new(
                PacketId(id),
                NodeId(src),
                dst,
                ChannelId(ch),
                RadioId(radio),
                EmuTime::from_nanos(t),
                Bytes::from(payload),
            )
        })
}

proptest! {
    #[test]
    fn scalars_roundtrip(v in any::<(u8, i16, u32, i64, f64, bool, char)>()) {
        let bytes = to_bytes(&v).unwrap();
        let back: (u8, i16, u32, i64, f64, bool, char) = from_bytes(&bytes).unwrap();
        // NaN-safe comparison for the float slot.
        prop_assert_eq!(v.0, back.0);
        prop_assert_eq!(v.1, back.1);
        prop_assert_eq!(v.2, back.2);
        prop_assert_eq!(v.3, back.3);
        prop_assert!(v.4 == back.4 || (v.4.is_nan() && back.4.is_nan()));
        prop_assert_eq!(v.5, back.5);
        prop_assert_eq!(v.6, back.6);
    }

    #[test]
    fn recursive_enums_roundtrip(t in tree_strategy()) {
        let bytes = to_bytes(&t).unwrap();
        prop_assert_eq!(from_bytes::<Tree>(&bytes).unwrap(), t);
    }

    #[test]
    fn maps_and_options_roundtrip(
        m in prop::collection::btree_map(".{0,8}", prop::option::of(any::<i32>()), 0..16)
    ) {
        let bytes = to_bytes(&m).unwrap();
        prop_assert_eq!(from_bytes::<BTreeMap<String, Option<i32>>>(&bytes).unwrap(), m);
    }

    #[test]
    fn packets_roundtrip(pkt in packet_strategy()) {
        let bytes = to_bytes(&pkt).unwrap();
        prop_assert_eq!(from_bytes::<EmuPacket>(&bytes).unwrap(), pkt);
    }

    #[test]
    fn truncation_always_errors(t in tree_strategy(), cut in 0usize..64) {
        let bytes = to_bytes(&t).unwrap();
        if cut < bytes.len() {
            // Strictly shorter input can never decode to a value AND
            // consume everything.
            prop_assert!(from_bytes::<Tree>(&bytes[..bytes.len() - 1 - cut % bytes.len().max(1)]).is_err()
                || bytes.is_empty());
        }
    }

    #[test]
    fn trailing_garbage_always_errors(pkt in packet_strategy(), tail in 1usize..16) {
        let mut bytes = to_bytes(&pkt).unwrap();
        bytes.extend(std::iter::repeat_n(0xAAu8, tail));
        prop_assert!(from_bytes::<EmuPacket>(&bytes).is_err());
    }

    #[test]
    fn encoding_is_deterministic(t in tree_strategy()) {
        prop_assert_eq!(to_bytes(&t).unwrap(), to_bytes(&t).unwrap());
    }
}
