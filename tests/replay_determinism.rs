//! Replay determinism, end to end: running the same scenario script twice
//! in the deterministic harness must produce byte-identical record logs.
//!
//! This is the behavioral contract behind the `poem-lint` determinism rule:
//! after the `HashMap → BTreeMap` conversions in `neighbor.rs`/`router.rs`,
//! no pipeline or routing decision depends on hash-iteration order, so the
//! serialized traffic/scene logs of two identical runs are equal byte for
//! byte — which is what makes a recorded run trustworthy as a replay
//! source (PAPER.md §3).

use poem_core::scene::SceneOp;
use poem_core::{EmuTime, NodeId};
use poem_routing::{Router, RouterConfig};
use poem_server::script::Script;
use poem_server::sim::{SimConfig, SimNet};

const SCENARIO: &str = r"
    at 0   add VMN1 0 0     radio ch1 220
    at 0   add VMN2 150 0   radio ch1 220 radio ch2 220
    at 0   add VMN3 300 0   radio ch2 220
    at 0   add VMN4 150 150 radio ch1 220
    at 0   add VMN5 0 150   radio ch1 220

    at 4   mobility VMN4 linear 180 12
    at 6   range VMN1 radio0 120
    at 10  retune VMN3 radio0 ch1
    at 14  remove VMN5
    at 18  move VMN4 80 40
";

/// Runs the scenario with hosted hybrid routers and returns the serialized
/// traffic and scene logs.
fn run_once(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let script = Script::parse(SCENARIO).expect("valid scenario");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    let mut senders = Vec::new();
    for entry in script.entries() {
        if let SceneOp::AddNode { id, pos, radios, mobility, link } = &entry.op {
            let router = Router::new(RouterConfig::hybrid());
            senders.push((*id, router.handles()));
            net.add_node(*id, *pos, radios.clone(), *mobility, *link, Box::new(router))
                .expect("valid node");
        } else {
            net.schedule_op(entry.at, entry.op.clone());
        }
    }
    // Deterministic application traffic across the scripted volatility.
    for (i, (_, h)) in senders.iter().enumerate() {
        let dst = NodeId(1 + ((i as u32 + 1) % 5));
        for k in 0..4u32 {
            h.tx.lock().push_back((dst, format!("pkt-{i}-{k}").into_bytes()));
        }
    }
    net.run_until(EmuTime::from_secs(30));
    let recorder = net.recorder();
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let scene = poem_proto::to_bytes(&recorder.scene()).expect("serialize scene log");
    (traffic, scene)
}

#[test]
fn same_script_same_seed_yields_byte_identical_logs() {
    let (traffic_a, scene_a) = run_once(42);
    let (traffic_b, scene_b) = run_once(42);
    assert!(!traffic_a.is_empty(), "scenario produced no traffic records");
    assert!(!scene_a.is_empty(), "scenario produced no scene records");
    assert_eq!(traffic_a, traffic_b, "traffic logs diverged between identical runs");
    assert_eq!(scene_a, scene_b, "scene logs diverged between identical runs");
}

#[test]
fn different_seed_changes_the_run_but_stays_self_consistent() {
    // Loss decisions are seeded, so a different seed may legally change the
    // log — but each seed must still be self-reproducible.
    let (traffic_a, _) = run_once(7);
    let (traffic_b, _) = run_once(7);
    assert_eq!(traffic_a, traffic_b);
}
