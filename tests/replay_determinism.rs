//! Replay determinism, end to end: running the same scenario script twice
//! in the deterministic harness must produce byte-identical record logs.
//!
//! This is the behavioral contract behind the `poem-lint` determinism rule:
//! after the `HashMap → BTreeMap` conversions in `neighbor.rs`/`router.rs`,
//! no pipeline or routing decision depends on hash-iteration order, so the
//! serialized traffic/scene logs of two identical runs are equal byte for
//! byte — which is what makes a recorded run trustworthy as a replay
//! source (PAPER.md §3).

use poem_core::scene::SceneOp;
use poem_core::{EmuTime, NodeId};
use poem_routing::{Router, RouterConfig};
use poem_server::script::Script;
use poem_server::sim::{SimConfig, SimNet};
use proptest::prelude::*;

const SCENARIO: &str = r"
    at 0   add VMN1 0 0     radio ch1 220
    at 0   add VMN2 150 0   radio ch1 220 radio ch2 220
    at 0   add VMN3 300 0   radio ch2 220
    at 0   add VMN4 150 150 radio ch1 220
    at 0   add VMN5 0 150   radio ch1 220

    at 4   mobility VMN4 linear 180 12
    at 6   range VMN1 radio0 120
    at 10  retune VMN3 radio0 ch1
    at 14  remove VMN5
    at 18  move VMN4 80 40
";

/// Runs the scenario with hosted hybrid routers and returns the serialized
/// traffic and scene logs.
fn run_once(seed: u64) -> (Vec<u8>, Vec<u8>) {
    let script = Script::parse(SCENARIO).expect("valid scenario");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    let mut senders = Vec::new();
    for entry in script.entries() {
        if let SceneOp::AddNode { id, pos, radios, mobility, link } = &entry.op {
            let router = Router::new(RouterConfig::hybrid());
            senders.push((*id, router.handles()));
            net.add_node(*id, *pos, radios.clone(), *mobility, *link, Box::new(router))
                .expect("valid node");
        } else {
            net.schedule_op(entry.at, entry.op.clone());
        }
    }
    // Deterministic application traffic across the scripted volatility.
    for (i, (_, h)) in senders.iter().enumerate() {
        let dst = NodeId(1 + ((i as u32 + 1) % 5));
        for k in 0..4u32 {
            h.tx.lock().push_back((dst, format!("pkt-{i}-{k}").into_bytes()));
        }
    }
    net.run_until(EmuTime::from_secs(30));
    let recorder = net.recorder();
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let scene = poem_proto::to_bytes(&recorder.scene()).expect("serialize scene log");
    (traffic, scene)
}

#[test]
fn same_script_same_seed_yields_byte_identical_logs() {
    let (traffic_a, scene_a) = run_once(42);
    let (traffic_b, scene_b) = run_once(42);
    assert!(!traffic_a.is_empty(), "scenario produced no traffic records");
    assert!(!scene_a.is_empty(), "scenario produced no scene records");
    assert_eq!(traffic_a, traffic_b, "traffic logs diverged between identical runs");
    assert_eq!(scene_a, scene_b, "scene logs diverged between identical runs");
}

#[test]
fn different_seed_changes_the_run_but_stays_self_consistent() {
    // Loss decisions are seeded, so a different seed may legally change the
    // log — but each seed must still be self-reproducible.
    let (traffic_a, _) = run_once(7);
    let (traffic_b, _) = run_once(7);
    assert_eq!(traffic_a, traffic_b);
}

/// The same scenario, with a fault plan layered over every chaos layer:
/// wire mangling, transport stalls/evictions, scene flap/jam/crash, and
/// clock skew/jitter. Fault decisions draw from a dedicated RNG stream
/// forked from the seed, so they must reproduce exactly like the rest of
/// the pipeline.
const CHAOS_SCENARIO: &str = r"
    at 0   add VMN1 0 0     radio ch1 220
    at 0   add VMN2 150 0   radio ch1 220 radio ch2 220
    at 0   add VMN3 300 0   radio ch2 220
    at 0   add VMN4 150 150 radio ch1 220
    at 0   add VMN5 0 150   radio ch1 220

    at 4   mobility VMN4 linear 180 12
    at 6   range VMN1 radio0 120
    at 10  retune VMN3 radio0 ch1
    at 18  move VMN4 80 40

    at 1   fault corrupt VMN2 0.2
    at 1   fault duplicate VMN1 0.15
    at 2   fault truncate VMN3 0.1
    at 2   fault reorder VMN4 0.25
    at 3   fault stall VMN2 2
    at 5   fault flap VMN1 radio0 0.4 3
    at 6   fault jam ch2 2
    at 7   fault skew VMN3 0.5
    at 7   fault jitter VMN4 0.02
    at 9   fault slowreader VMN1 4 2
    at 11  fault crash VMN5 restart 4
    at 20  fault disconnect VMN3
";

/// Runs the chaos scenario and returns the serialized traffic, scene and
/// fault logs.
fn run_chaos_once(seed: u64) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    let script = Script::parse(CHAOS_SCENARIO).expect("valid chaos scenario");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    let mut senders = Vec::new();
    for entry in script.entries() {
        if let SceneOp::AddNode { id, pos, radios, mobility, link } = &entry.op {
            let router = Router::new(RouterConfig::hybrid());
            senders.push((*id, router.handles()));
            net.add_node(*id, *pos, radios.clone(), *mobility, *link, Box::new(router))
                .expect("valid node");
        } else {
            net.schedule_op(entry.at, entry.op.clone());
        }
    }
    net.install_faults(script.faults());
    for (i, (_, h)) in senders.iter().enumerate() {
        let dst = NodeId(1 + ((i as u32 + 1) % 5));
        for k in 0..4u32 {
            h.tx.lock().push_back((dst, format!("pkt-{i}-{k}").into_bytes()));
        }
    }
    net.run_until(EmuTime::from_secs(30));
    let recorder = net.recorder();
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let scene = poem_proto::to_bytes(&recorder.scene()).expect("serialize scene log");
    let faults = poem_proto::to_bytes(&recorder.faults()).expect("serialize fault log");
    (traffic, scene, faults)
}

#[test]
fn chaos_plan_reproduces_byte_identical_logs() {
    let (traffic_a, scene_a, faults_a) = run_chaos_once(42);
    let (traffic_b, scene_b, faults_b) = run_chaos_once(42);
    assert!(!faults_a.is_empty(), "chaos scenario produced no fault records");
    assert!(!traffic_a.is_empty(), "chaos scenario produced no traffic records");
    assert_eq!(traffic_a, traffic_b, "traffic logs diverged under fault injection");
    assert_eq!(scene_a, scene_b, "scene logs diverged under fault injection");
    assert_eq!(faults_a, faults_b, "fault logs diverged under fault injection");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property form of the contract: for ANY seed, the same script + fault
    /// plan reproduces all three logs byte for byte.
    #[test]
    fn chaos_logs_reproduce_for_any_seed(seed in 0u64..10_000) {
        let (traffic_a, scene_a, faults_a) = run_chaos_once(seed);
        let (traffic_b, scene_b, faults_b) = run_chaos_once(seed);
        prop_assert_eq!(traffic_a, traffic_b);
        prop_assert_eq!(scene_a, scene_b);
        prop_assert_eq!(faults_a, faults_b);
    }
}

/// A committed profile-driven scenario: empirical Markov/trace link models
/// replace the analytic ramps for bound senders. Regime draws come from a
/// dedicated RNG stream (`seed ^ PROFILE_STREAM`, mixed per link) and the
/// per-packet loss Bernoulli stays on the pipeline stream, so the
/// determinism contract must hold unchanged.
const PROFILE_SCENARIO: &str = include_str!("../scenarios/urban_canyon.poem");
const PROFILE_LIBRARY: &str = include_str!("../scenarios/urban_canyon.profile");

/// Runs the committed urban-canyon scenario with hosted hybrid routers on
/// every scripted node and returns the serialized traffic and scene logs.
fn run_profiled_once(seed: u64) -> (Vec<u8>, Vec<u8>, u64) {
    let lib = poem_profiles::ProfileLibrary::parse(PROFILE_LIBRARY).expect("valid profile file");
    let script = Script::parse(PROFILE_SCENARIO).expect("valid profiled scenario");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    script.install_with_profiles(&mut net, &lib).expect("bindings resolve");
    let ids: Vec<NodeId> = net.scene().nodes().map(|v| v.id).collect();
    let mut senders = Vec::new();
    for id in &ids {
        let router = Router::new(RouterConfig::hybrid());
        senders.push((*id, router.handles()));
        net.attach_app(*id, Box::new(router)).expect("node exists");
    }
    for (i, (_, h)) in senders.iter().enumerate() {
        let dst = senders[(i + 1) % senders.len()].0;
        for k in 0..4u32 {
            h.tx.lock().push_back((dst, format!("pkt-{i}-{k}").into_bytes()));
        }
    }
    net.run_until(EmuTime::from_secs(30));
    let profiled = net.metrics().counter("poem_profile_decides_total").unwrap_or(0);
    let recorder = net.recorder();
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let scene = poem_proto::to_bytes(&recorder.scene()).expect("serialize scene log");
    (traffic, scene, profiled)
}

#[test]
fn profiled_scenario_reproduces_byte_identical_logs() {
    let (traffic_a, scene_a, profiled_a) = run_profiled_once(42);
    let (traffic_b, scene_b, profiled_b) = run_profiled_once(42);
    assert!(!traffic_a.is_empty(), "profiled scenario produced no traffic records");
    assert!(profiled_a > 0, "empirical profiles were never consulted");
    assert_eq!(profiled_a, profiled_b, "profile decision counts diverged");
    assert_eq!(traffic_a, traffic_b, "traffic logs diverged under profile-driven links");
    assert_eq!(scene_a, scene_b, "scene logs diverged under profile-driven links");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For ANY seed, the profile-driven scenario reproduces byte for byte.
    #[test]
    fn profiled_logs_reproduce_for_any_seed(seed in 0u64..10_000) {
        let (traffic_a, scene_a, _) = run_profiled_once(seed);
        let (traffic_b, scene_b, _) = run_profiled_once(seed);
        prop_assert_eq!(traffic_a, traffic_b);
        prop_assert_eq!(scene_a, scene_b);
    }
}
