//! Property tests for the §4.3 configurable models and the §4.1 clock
//! synchronization: the analytic invariants the emulation's correctness
//! rests on.

use poem_core::clock::sync::simulate_handshake;
use poem_core::linkmodel::{BandwidthModel, DelayModel, LinkModel, LossModel};
use poem_core::mobility::{Arena, MobilityModel, MobilityState};
use poem_core::{EmuDuration, EmuRng, EmuTime, ForwardSchedule, Point};
use proptest::prelude::*;

proptest! {
    #[test]
    fn loss_probability_is_a_probability(
        p0 in 0.0f64..1.0,
        p1 in 0.0f64..1.0,
        d0 in 0.0f64..100.0,
        extra in 1.0f64..300.0,
        r in 0.0f64..500.0,
    ) {
        let m = LossModel { p0, p1, d0, range: d0 + extra };
        let p = m.probability(r);
        prop_assert!((0.0..=1.0).contains(&p), "P({r}) = {p}");
    }

    #[test]
    fn loss_is_monotone_in_distance_when_p1_ge_p0(
        p0 in 0.0f64..0.5,
        dp in 0.0f64..0.5,
        d0 in 0.0f64..100.0,
        extra in 1.0f64..300.0,
        r1 in 0.0f64..400.0,
        r2 in 0.0f64..400.0,
    ) {
        let m = LossModel { p0, p1: p0 + dp, d0, range: d0 + extra };
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(m.probability(lo) <= m.probability(hi) + 1e-12);
    }

    #[test]
    fn loss_boundary_values_match_parameters(
        p0 in 0.0f64..1.0,
        p1 in 0.0f64..1.0,
        d0 in 1.0f64..100.0,
        extra in 1.0f64..300.0,
    ) {
        let m = LossModel { p0, p1, d0, range: d0 + extra };
        prop_assert!((m.probability(0.0) - p0).abs() < 1e-12);
        prop_assert!((m.probability(d0) - p0).abs() < 1e-12);
        prop_assert!((m.probability(m.range) - p1.clamp(0.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_stays_within_band_and_is_monotone(
        min_bps in 1e3f64..1e6,
        span in 1.0f64..100.0,
        range in 10.0f64..500.0,
        r1 in 0.0f64..500.0,
        r2 in 0.0f64..500.0,
    ) {
        let m = BandwidthModel { max_bps: min_bps * span, min_bps, range };
        for r in [r1, r2] {
            let b = m.bps(r);
            prop_assert!(b >= min_bps - 1e-6 && b <= m.max_bps + 1e-6, "B({r}) = {b}");
        }
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(m.bps(lo) >= m.bps(hi) - 1e-6);
    }

    #[test]
    fn forward_delay_is_nonnegative_and_additive_in_size(
        bytes_a in 1usize..2000,
        bytes_b in 1usize..2000,
        r in 0.0f64..200.0,
        bps in 1e5f64..1e8,
    ) {
        let link = LinkModel {
            loss: LossModel::lossless(200.0),
            bandwidth: BandwidthModel::constant(bps, 200.0),
            delay: DelayModel::none(),
        };
        let da = link.forward_delay(bytes_a, r);
        let db = link.forward_delay(bytes_b, r);
        let dab = link.forward_delay(bytes_a + bytes_b, r);
        prop_assert!(da >= EmuDuration::ZERO);
        // Constant bandwidth → transmission time additive in size (±1 ns
        // rounding per term).
        prop_assert!(((da + db) - dab).abs() <= EmuDuration::from_nanos(2));
    }

    #[test]
    fn empirical_loss_rate_matches_probability(
        p in 0.05f64..0.95,
        seed in 0u64..1000,
    ) {
        let m = LossModel::constant(p, 100.0);
        let mut rng = EmuRng::seed(seed);
        let n = 4000;
        let drops = (0..n).filter(|_| m.drops(50.0, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        prop_assert!((rate - p).abs() < 0.05, "rate {rate} vs p {p}");
    }

    #[test]
    fn mobility_never_exceeds_max_speed(
        seed in 0u64..500,
        min_speed in 0.1f64..5.0,
        extra in 0.0f64..10.0,
        step in 0.05f64..2.0,
    ) {
        let max_speed = min_speed + extra;
        let model = MobilityModel::random_walk(min_speed, max_speed, 1.0);
        let mut st = MobilityState::init(&model);
        let mut rng = EmuRng::seed(seed);
        let mut pos = Point::new(500.0, 500.0);
        for _ in 0..50 {
            let next = st.advance(&model, pos, step, &mut rng, None);
            let dist = pos.distance(next);
            prop_assert!(dist <= max_speed * step + 1e-6, "moved {dist} in {step}s");
            pos = next;
        }
    }

    #[test]
    fn mobility_respects_arena_bounds(
        seed in 0u64..500,
        w in 50.0f64..500.0,
        h in 50.0f64..500.0,
    ) {
        let arena = Arena::new(w, h);
        let model = MobilityModel::RandomWaypoint { min_speed: 5.0, max_speed: 20.0, pause: 0.1 };
        let mut st = MobilityState::init(&model);
        let mut rng = EmuRng::seed(seed);
        let mut pos = Point::new(w / 2.0, h / 2.0);
        for _ in 0..100 {
            pos = st.advance(&model, pos, 0.5, &mut rng, Some(&arena));
            prop_assert!(pos.x >= -1e-9 && pos.x <= w + 1e-9, "{pos}");
            prop_assert!(pos.y >= -1e-9 && pos.y <= h + 1e-9, "{pos}");
        }
    }

    #[test]
    fn clock_sync_error_is_exactly_half_the_asymmetry(
        up_us in 0i64..50_000,
        down_us in 0i64..50_000,
        turn_us in 0i64..10_000,
        skew_s in -100i64..100,
    ) {
        let up = EmuDuration::from_micros(up_us);
        let down = EmuDuration::from_micros(down_us);
        let server_start = EmuTime::from_secs(1_000);
        let client_start = server_start + EmuDuration::from_secs(skew_s);
        let sample = simulate_handshake(
            client_start,
            server_start,
            up,
            down,
            EmuDuration::from_micros(turn_us),
        );
        let out = sample.solve();
        let true_server_at_c4 =
            server_start + up + EmuDuration::from_micros(turn_us) + down;
        let err = out.estimated_server_now - true_server_at_c4;
        prop_assert_eq!(err, (up - down) / 2);
    }

    #[test]
    fn schedule_pops_sorted_regardless_of_insertion_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut s = ForwardSchedule::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(EmuTime::from_nanos(t), i);
        }
        let mut last = EmuTime::ZERO;
        let mut popped = 0;
        while let Some((at, _)) = s.pop_next() {
            prop_assert!(at >= last);
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }
}
