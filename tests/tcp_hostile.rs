//! Server robustness against misbehaving clients: garbage bytes, hostile
//! frame lengths, protocol-order violations and abrupt disconnects must
//! never take the emulation server down or poison later, well-behaved
//! sessions.

use bytes::Bytes;
use poem_client::EmuClient;
use poem_core::clock::{Clock, WallClock};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_server::{ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn two_node_scene() -> Scene {
    let mut s = Scene::new();
    for (id, x) in [(1u32, 0.0), (2u32, 50.0)] {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(id),
                pos: Point::new(x, 0.0),
                radios: RadioConfig::single(ChannelId(1), 200.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::ideal(11.0e6),
            },
        )
        .unwrap();
    }
    s
}

fn start() -> Arc<ServerHandle> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    ServerHandle::start(two_node_scene(), clock, ServerConfig::default()).unwrap()
}

/// After the hostile interaction, a normal session must still work.
fn assert_server_still_serves(server: &ServerHandle) {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let c1 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(1),
        RadioConfig::single(ChannelId(1), 200.0),
        Arc::clone(&clock),
    )
    .expect("healthy client connects");
    let c2 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(2),
        RadioConfig::single(ChannelId(1), 200.0),
        clock,
    )
    .expect("second healthy client connects");
    c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"alive")).unwrap().unwrap();
    let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).expect("traffic still flows");
    assert_eq!(&pkt.payload[..], b"alive");
    c1.close().unwrap();
    c2.close().unwrap();
}

#[test]
fn garbage_bytes_do_not_kill_the_server() {
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&[0xde; 64]).unwrap();
        // 0xdededede as a length prefix exceeds MAX_FRAME_LEN → the server
        // rejects and drops this connection.
    }
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn hostile_length_prefix_is_rejected() {
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 128]).unwrap();
    }
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn valid_frame_with_garbage_body_is_rejected() {
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let body = [0xABu8; 32];
        s.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&body).unwrap();
    }
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn abrupt_disconnect_mid_frame_is_survivable() {
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        // Announce a 1000-byte frame, send 10 bytes, vanish.
        s.write_all(&1000u32.to_le_bytes()).unwrap();
        s.write_all(&[0u8; 10]).unwrap();
    } // dropped here
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn data_before_hello_is_refused_politely() {
    let server = start();
    {
        // A protocol-order violation: Data before Hello. The server replies
        // Refused and drops the session.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let msg = poem_proto::messages::ClientMsg::Bye;
        let body = poem_proto::to_bytes(&msg).unwrap();
        s.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&body).unwrap();
        let mut reader = poem_proto::MsgReader::new(s.try_clone().unwrap());
        match reader.recv::<poem_proto::messages::ServerMsg>() {
            Ok(poem_proto::messages::ServerMsg::Refused { reason }) => {
                assert!(reason.contains("expected Hello"), "{reason}");
            }
            other => panic!("expected Refused, got {other:?}"),
        }
    }
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn disconnect_mid_clock_sync_is_survivable() {
    // A registered client fires a SyncRequest and vanishes before reading
    // the reply: the server's answering send hits a dead socket. Neither
    // the receiver thread nor later sessions may be harmed.
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut w = poem_proto::MsgWriter::new(s.try_clone().unwrap());
        let mut r = poem_proto::MsgReader::new(s.try_clone().unwrap());
        w.send(&poem_proto::messages::ClientMsg::hello(NodeId(1))).unwrap();
        let _welcome: poem_proto::messages::ServerMsg = r.recv().unwrap();
        w.send(&poem_proto::messages::ClientMsg::SyncRequest { t_c1: EmuTime::from_millis(1) })
            .unwrap();
        s.flush().unwrap();
        // Drop the socket without ever reading the SyncReply.
    }
    // Give the server a beat to notice the dead connection.
    std::thread::sleep(Duration::from_millis(100));
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn raw_data_frame_before_hello_is_refused() {
    // Unlike the Bye-based variant above, this sends an actual Data frame
    // (a full EmuPacket) as the very first message of the session.
    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let pkt = poem_core::EmuPacket::new(
            poem_core::PacketId(7),
            NodeId(1),
            Destination::Broadcast,
            ChannelId(1),
            poem_core::RadioId(0),
            EmuTime::from_millis(1),
            Bytes::from_static(b"premature"),
        );
        let msg = poem_proto::messages::ClientMsg::Data(pkt);
        let body = poem_proto::to_bytes(&msg).unwrap();
        s.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
        s.write_all(&body).unwrap();
        let mut reader = poem_proto::MsgReader::new(s.try_clone().unwrap());
        match reader.recv::<poem_proto::messages::ServerMsg>() {
            Ok(poem_proto::messages::ServerMsg::Refused { reason }) => {
                assert!(reason.contains("expected Hello"), "{reason}");
            }
            other => panic!("expected Refused, got {other:?}"),
        }
    }
    // The premature packet must never have entered the pipeline.
    assert!(server.recorder().traffic().is_empty());
    assert_server_still_serves(&server);
    server.shutdown();
}

#[test]
fn spoofed_source_packets_are_dropped() {
    // A client registered as VMN1 sends a packet claiming src = VMN2; the
    // server must not forward it.
    let server = start();
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let c2 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(2),
        RadioConfig::single(ChannelId(1), 200.0),
        Arc::clone(&clock),
    )
    .unwrap();
    {
        // Hand-roll a VMN1 session that spoofs VMN2 as the source.
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut w = poem_proto::MsgWriter::new(s.try_clone().unwrap());
        let mut r = poem_proto::MsgReader::new(s.try_clone().unwrap());
        w.send(&poem_proto::messages::ClientMsg::hello(NodeId(1))).unwrap();
        let _welcome: poem_proto::messages::ServerMsg = r.recv().unwrap();
        let spoofed = poem_core::EmuPacket::new(
            poem_core::PacketId(1),
            NodeId(2), // lies about its identity
            Destination::Broadcast,
            ChannelId(1),
            poem_core::RadioId(0),
            EmuTime::from_millis(1),
            Bytes::from_static(b"spoof"),
        );
        w.send(&poem_proto::messages::ClientMsg::Data(spoofed)).unwrap();
        s.flush().unwrap();
    }
    // The spoofed broadcast must never reach VMN2's legitimate client...
    assert!(c2.recv_timeout(Duration::from_millis(300)).is_err());
    // ...nor appear in the recorder.
    let traffic = server.recorder().traffic();
    assert!(traffic.is_empty(), "{traffic:?}");
    drop(c2);
    server.shutdown();
}

#[test]
fn chaos_mangled_wire_never_takes_the_server_down() {
    // The poem-chaos wire layer as a hostile-client generator: a registered
    // session pushes Data frames through a ChaosWriter configured to
    // corrupt, truncate and duplicate aggressively. Whatever reaches the
    // server — flipped codec bytes, short frames, doubled frames, mangled
    // length prefixes — the receive thread must shed the session at worst,
    // and keep serving healthy clients.
    use poem_chaos::{ChaosWriter, FaultKind, WireFaults};

    let server = start();
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let mut w = poem_proto::MsgWriter::new(s.try_clone().unwrap());
        let mut r = poem_proto::MsgReader::new(s.try_clone().unwrap());
        w.send(&poem_proto::messages::ClientMsg::hello(NodeId(1))).unwrap();
        let _welcome: poem_proto::messages::ServerMsg = r.recv().unwrap();

        // Mangle only from here on, so the handshake above stays clean.
        let faults = WireFaults::new(poem_core::EmuRng::seed(0xC0FFEE));
        faults.configure(&FaultKind::WireCorrupt { node: NodeId(1), prob: 0.8 });
        faults.configure(&FaultKind::WireTruncate { node: NodeId(1), prob: 0.5 });
        faults.configure(&FaultKind::WireDuplicate { node: NodeId(1), prob: 0.5 });
        let mut mangled =
            poem_proto::MsgWriter::new(ChaosWriter::new(s.try_clone().unwrap(), faults.clone()));
        for i in 0..64u32 {
            let pkt = poem_core::EmuPacket::new(
                poem_core::PacketId(i as u64),
                NodeId(1),
                Destination::Broadcast,
                ChannelId(1),
                poem_core::RadioId(0),
                EmuTime::from_millis(u64::from(i)),
                Bytes::from(format!("mangle-me-{i}")),
            );
            // The server may kill the session mid-loop; write errors are
            // the expected outcome, not a failure.
            if mangled.send(&poem_proto::messages::ClientMsg::Data(pkt)).is_err() {
                break;
            }
        }
        let counts = faults.counts();
        assert!(
            counts.corrupt + counts.truncate + counts.duplicate > 0,
            "wire faults never fired: {counts:?}"
        );
        s.flush().ok();
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_server_still_serves(&server);
    server.shutdown();
}
