//! Property tests for the spatial shard partition behind the cluster
//! coordinator (`poem_core::partition`): for arbitrary node populations,
//! shard counts, tile edges, and pins,
//!
//! * every node has exactly one owner, and it is in shard range;
//! * pins always win over tile ownership;
//! * a shard's mirror set is *exactly* the 3×3 tile neighborhoods of the
//!   nodes it owns (no more, no less); and
//! * with tile edge ≥ the radio range, every in-range neighbor of an
//!   owned node is in the owner's mirror set — the **halo invariant**
//!   that makes boundary neighbor lookups on a shard worker exact.

use poem_core::partition::{Tile, TilePartition};
use poem_core::{NodeId, Point};
use proptest::prelude::*;

fn cheb(a: Tile, b: Tile) -> i64 {
    (a.0 - b.0).abs().max((a.1 - b.1).abs())
}

/// Node populations on a plane that spans several tiles both ways,
/// including negative coordinates.
fn nodes_strategy() -> impl Strategy<Value = Vec<(u32, (f64, f64))>> {
    proptest::collection::vec((0u32..64, (-900.0..900.0f64, -900.0..900.0f64)), 1..48)
}

proptest! {
    #[test]
    fn every_node_has_exactly_one_in_range_owner(
        raw in nodes_strategy(),
        shards in 1u32..6,
        tile_edge in 40.0..260.0f64,
    ) {
        let t = TilePartition::new(shards, tile_edge);
        let nodes: Vec<(NodeId, Point)> = dedup(&raw);
        let m = t.membership(nodes.iter().copied());
        prop_assert_eq!(m.owner.len(), nodes.len());
        let mut owned_total = 0usize;
        for s in 0..shards {
            prop_assert!(m.members.contains_key(&s), "shard {} missing a member set", s);
            owned_total += m.owner.values().filter(|&&o| o == s).count();
        }
        prop_assert_eq!(owned_total, nodes.len(), "ownership must partition the population");
        for (&id, &s) in &m.owner {
            prop_assert!(s < shards, "{} owned by out-of-range shard {}", id, s);
            prop_assert_eq!(
                s,
                t.owner_of(id, pos_of(&nodes, id)),
                "membership and owner_of disagree for {}", id
            );
        }
    }

    #[test]
    fn pins_always_win_over_tiles(
        raw in nodes_strategy(),
        shards in 2u32..6,
        tile_edge in 40.0..260.0f64,
        pin_shard in 0u32..8,
    ) {
        let mut t = TilePartition::new(shards, tile_edge);
        let nodes: Vec<(NodeId, Point)> = dedup(&raw);
        let pinned = nodes[0].0;
        t.pin(pinned, pin_shard);
        let m = t.membership(nodes.iter().copied());
        let expect = pin_shard.min(shards - 1);
        prop_assert_eq!(m.owner[&pinned], expect);
        // The pinned node is still mirrored by its owner.
        prop_assert!(m.members[&expect].contains(&pinned));
    }

    #[test]
    fn mirror_sets_are_exactly_the_three_by_three_neighborhoods(
        raw in nodes_strategy(),
        shards in 1u32..6,
        tile_edge in 40.0..260.0f64,
    ) {
        let t = TilePartition::new(shards, tile_edge);
        let nodes: Vec<(NodeId, Point)> = dedup(&raw);
        let m = t.membership(nodes.iter().copied());
        for &(b, bpos) in &nodes {
            for s in 0..shards {
                let held = m.members[&s].contains(&b);
                let needed = nodes.iter().any(|&(a, apos)| {
                    m.owner[&a] == s && cheb(t.tile_of(apos), t.tile_of(bpos)) <= 1
                });
                prop_assert_eq!(held, needed, "shard {}, node {}", s, b);
            }
        }
    }

    #[test]
    fn halo_covers_every_in_range_neighbor(
        raw in nodes_strategy(),
        shards in 1u32..6,
        tile_edge in 40.0..260.0f64,
        range_frac in 0.1..1.0f64,
    ) {
        // The invariant's precondition: radio range ≤ tile edge.
        let range = tile_edge * range_frac;
        let t = TilePartition::new(shards, tile_edge);
        let nodes: Vec<(NodeId, Point)> = dedup(&raw);
        let m = t.membership(nodes.iter().copied());
        for &(a, apos) in &nodes {
            let owner = m.owner[&a];
            for &(b, bpos) in &nodes {
                let dx = apos.x - bpos.x;
                let dy = apos.y - bpos.y;
                if (dx * dx + dy * dy).sqrt() <= range {
                    prop_assert!(
                        m.members[&owner].contains(&b),
                        "shard {} owns {} but does not mirror in-range neighbor {}",
                        owner, a, b
                    );
                }
            }
        }
    }
}

/// Deduplicates generated ids (keeping the first position) and converts
/// to the partition's input shape.
fn dedup(raw: &[(u32, (f64, f64))]) -> Vec<(NodeId, Point)> {
    let mut seen = std::collections::BTreeSet::new();
    raw.iter()
        .filter(|(id, _)| seen.insert(*id))
        .map(|&(id, (x, y))| (NodeId(id), Point::new(x, y)))
        .collect()
}

fn pos_of(nodes: &[(NodeId, Point)], id: NodeId) -> Point {
    nodes.iter().find(|(n, _)| *n == id).expect("listed").1
}
