//! E15 acceptance: the steady-state per-packet ingest path performs no
//! heap allocation beyond the delivery vector it returns.
//!
//! A counting `GlobalAlloc` wrapper tallies allocations while a warmed-up
//! [`Pipeline`] ingests a pre-built batch. The budget is one allocation
//! per ingest (the `Vec<Delivery>` handed back to the caller) plus a small
//! slack for the recorder's amortized log growth. Routing, the RNG draws,
//! the per-delivery packet clones (refcounted payload) and the traffic
//! records themselves must all be allocation-free.
//!
//! This file holds exactly one `#[test]`: the counter is process-global,
//! and a sibling test running concurrently would perturb it.

use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::{Destination, HEADER_BYTES};
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuPacket, EmuRng, EmuTime, NodeId, PacketId, Point, RadioId};
use poem_record::Recorder;
use poem_server::Pipeline;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator; the wrapper adds only
// an atomic counter and never changes layouts or pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `alloc` — a counted pass-through.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn grid_scene(n: u32) -> Scene {
    let mut s = Scene::new();
    let side = (n as f64).sqrt().ceil() as u32;
    for i in 0..n {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(i),
                pos: Point::new((i % side) as f64 * 80.0, (i / side) as f64 * 80.0),
                radios: RadioConfig::single(ChannelId(1), 170.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::table3(),
            },
        )
        .expect("grid scene valid");
    }
    s
}

fn batch(nodes: u32, packets: usize) -> Vec<EmuPacket> {
    (0..packets)
        .map(|i| {
            EmuPacket::new(
                PacketId(i as u64),
                NodeId((i as u32) % nodes),
                Destination::Broadcast,
                ChannelId(1),
                RadioId(0),
                EmuTime::from_micros(i as u64),
                vec![0u8; 500 - HEADER_BYTES],
            )
        })
        .collect()
}

#[test]
fn steady_state_ingest_allocates_only_the_delivery_vector() {
    const NODES: u32 = 100;
    const MEASURED: usize = 1_000;

    let mut p = Pipeline::new(grid_scene(NODES), Arc::new(Recorder::new()), EmuRng::seed(1));
    let warmup = batch(NODES, MEASURED);
    let measured = batch(NODES, MEASURED);

    // Warm-up: sizes the routing scratch buffer and pre-grows the traffic
    // log so the measured window sees only steady-state behavior.
    let mut warm_deliveries = 0usize;
    for pkt in &warmup {
        warm_deliveries += p.ingest(pkt, pkt.sent_at).len();
    }
    assert!(warm_deliveries > 0, "warmup produced no deliveries");

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut deliveries = 0usize;
    for pkt in &measured {
        deliveries += p.ingest(pkt, pkt.sent_at).len();
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst) as usize;

    assert!(deliveries > MEASURED, "dense scene should fan out: {deliveries}");
    // One `Vec<Delivery>` per packet, plus slack for the recorder's
    // amortized (doubling) log growth across 2 000 appended records.
    let budget = MEASURED + 64;
    assert!(
        allocs <= budget,
        "steady-state ingest allocated {allocs} times for {MEASURED} packets \
         (budget {budget}: delivery vectors + amortized log growth)"
    );
    // Sanity that the counter works at all: the delivery vectors alone
    // account for one allocation per non-empty ingest.
    assert!(allocs > 0, "counter saw nothing — instrumentation broken?");
}
