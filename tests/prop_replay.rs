//! Property tests for recording and replay: any recorded run reconstructs
//! exactly, the log store round-trips arbitrary logs, and replay is
//! consistent between random access and sequential stepping.

use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::radio::RadioConfig;
use poem_core::scene::SceneOp;
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_record::{LogStore, ReplayEngine, SceneRecord};
use poem_server::sim::{SimConfig, SimNet};
use proptest::prelude::*;

/// A random but *valid* scene-op script over up to 6 nodes: node ids are
/// added before being moved/removed (invalid ops are filtered out by
/// construction).
fn script_strategy() -> impl Strategy<Value = Vec<SceneRecord>> {
    prop::collection::vec((0u8..6, 0.0f64..300.0, 0.0f64..300.0, 0u64..60, prop::bool::ANY), 1..40)
        .prop_map(|raw| {
            let mut present = [false; 6];
            let mut out = Vec::new();
            for (id, x, y, t, remove) in raw {
                let at = EmuTime::from_secs(t);
                let node = NodeId(id as u32);
                let op = if !present[id as usize] {
                    present[id as usize] = true;
                    SceneOp::AddNode {
                        id: node,
                        pos: Point::new(x, y),
                        radios: RadioConfig::single(ChannelId(1), 100.0),
                        mobility: MobilityModel::Stationary,
                        link: LinkParams::default(),
                    }
                } else if remove {
                    present[id as usize] = false;
                    SceneOp::RemoveNode { id: node }
                } else {
                    SceneOp::MoveNode { id: node, pos: Point::new(x, y) }
                };
                out.push(SceneRecord::new(at, op));
            }
            // Records must be applied in time order for the per-node
            // add/remove bookkeeping above to stay valid.
            out.sort_by_key(|r| r.at);
            // Re-derive validity after sorting: drop ops that now reference
            // absent nodes.
            let mut present = [false; 6];
            out.retain(|r| match &r.op {
                SceneOp::AddNode { id, .. } => {
                    let i = id.0 as usize;
                    if present[i] {
                        false
                    } else {
                        present[i] = true;
                        true
                    }
                }
                SceneOp::RemoveNode { id } => {
                    let i = id.0 as usize;
                    if present[i] {
                        present[i] = false;
                        true
                    } else {
                        false
                    }
                }
                SceneOp::MoveNode { id, .. } => present[id.0 as usize],
                _ => false,
            });
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_access_equals_sequential_stepping(script in script_strategy()) {
        let engine = ReplayEngine::new(script.clone());
        let mut player = engine.player();
        // Step through; at each distinct timestamp compare with scene_at.
        let mut checked = 0;
        while let Some(rec) = player.step().unwrap() {
            let at = rec.at;
            // Only compare at points where no same-time op follows.
            if player.next_at() != Some(at) {
                let random = engine.scene_at(at).unwrap();
                let stepped = player.scene();
                prop_assert_eq!(random.len(), stepped.len());
                for v in stepped.nodes() {
                    let rv = random.node(v.id).unwrap();
                    prop_assert_eq!(rv.pos, v.pos);
                }
                checked += 1;
            }
        }
        prop_assert!(checked > 0 || script.is_empty());
    }

    #[test]
    fn log_store_roundtrips_any_scene_log(script in script_strategy()) {
        let store: LogStore<SceneRecord> = script.iter().cloned().collect();
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded: LogStore<SceneRecord> =
            LogStore::load_from(&mut std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(loaded.items(), store.items());
    }

    #[test]
    fn recorded_sim_run_replays_to_the_live_final_scene(
        seed in 0u64..200,
        speed in 1.0f64..20.0,
        dir in 0.0f64..360.0,
        secs in 1u64..8,
    ) {
        let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
        net.add_node(
            NodeId(1),
            Point::new(100.0, 100.0),
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::Linear { direction_deg: dir, speed },
            LinkParams::default(),
            Box::new(poem_client::app::IdleApp),
        ).unwrap();
        net.add_node(
            NodeId(2),
            Point::new(150.0, 100.0),
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::random_walk(1.0, speed, 0.5),
            LinkParams::default(),
            Box::new(poem_client::app::IdleApp),
        ).unwrap();
        net.run_until(EmuTime::from_secs(secs));

        let live_1 = net.scene().node(NodeId(1)).unwrap().pos;
        let live_2 = net.scene().node(NodeId(2)).unwrap().pos;

        let engine = ReplayEngine::new(net.recorder().scene());
        let replayed = engine.scene_at(EmuTime::from_secs(secs)).unwrap();
        let r1 = replayed.node(NodeId(1)).unwrap().pos;
        let r2 = replayed.node(NodeId(2)).unwrap().pos;
        prop_assert!(r1.distance(live_1) < 1e-9, "{r1} vs {live_1}");
        prop_assert!(r2.distance(live_2) < 1e-9, "{r2} vs {live_2}");
    }

    #[test]
    fn timeline_is_totally_ordered(script in script_strategy()) {
        let engine = ReplayEngine::new(script);
        let tl = engine.timeline(&[]);
        for w in tl.windows(2) {
            prop_assert!(w[0].at() <= w[1].at());
        }
    }
}
