//! Property tests for the routing protocol over the full emulation stack:
//! on random connected geometric topologies with ideal links, the hybrid
//! protocol's tables converge to true shortest-path hop counts, and data
//! delivery follows.

use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::radio::RadioConfig;
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_routing::{Router, RouterConfig, RouterHandles};
use poem_server::sim::{SimConfig, SimNet};
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

const RANGE: f64 = 140.0;

/// Generates a connected random geometric graph by growing each new node
/// within range of a uniformly chosen existing one.
fn connected_positions() -> impl Strategy<Value = Vec<Point>> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = poem_core::EmuRng::seed(seed);
        let mut pts = vec![Point::new(500.0, 500.0)];
        while pts.len() < n {
            let anchor = pts[rng.index(pts.len())];
            let angle = rng.range_f64(0.0, std::f64::consts::TAU);
            let dist = rng.range_f64(20.0, RANGE * 0.9);
            let p = Point::new(
                (anchor.x + dist * angle.cos()).clamp(0.0, 1000.0),
                (anchor.y + dist * angle.sin()).clamp(0.0, 1000.0),
            );
            pts.push(p);
        }
        pts
    })
}

/// BFS hop counts from every node over the disc graph.
fn bfs_hops(pts: &[Point]) -> BTreeMap<(usize, usize), u32> {
    let n = pts.len();
    let mut out = BTreeMap::new();
    for s in 0..n {
        let mut dist = vec![u32::MAX; n];
        dist[s] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for v in 0..n {
                if dist[v] == u32::MAX && pts[u].distance(pts[v]) <= RANGE {
                    dist[v] = dist[u] + 1;
                    q.push_back(v);
                }
            }
        }
        for (v, &d) in dist.iter().enumerate() {
            if v != s && d != u32::MAX {
                out.insert((s, v), d);
            }
        }
    }
    out
}

fn build_net(pts: &[Point]) -> (SimNet, Vec<RouterHandles>) {
    let mut net = SimNet::new(SimConfig { seed: 1, ..SimConfig::default() });
    let mut handles = Vec::new();
    for (i, p) in pts.iter().enumerate() {
        let router = Router::new(RouterConfig::hybrid());
        handles.push(router.handles());
        net.add_node(
            NodeId(i as u32),
            *p,
            RadioConfig::single(ChannelId(1), RANGE),
            MobilityModel::Stationary,
            LinkParams::ideal(11.0e6),
            Box::new(router),
        )
        .expect("valid node");
    }
    (net, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tables_converge_to_bfs_hop_counts(pts in connected_positions()) {
        let truth = bfs_hops(&pts);
        let (mut net, handles) = build_net(&pts);
        // Diameter ≤ n, one broadcast round per second, give it margin.
        net.run_until(EmuTime::from_secs(3 + 2 * pts.len() as u64));
        for ((s, d), hops) in &truth {
            let table = handles[*s].table.lock();
            let entry = table.route(NodeId(*d as u32));
            prop_assert!(entry.is_some(), "{s}->{d} missing (expect {hops} hops)");
            prop_assert_eq!(
                entry.unwrap().hops,
                *hops,
                "{}->{}: got {} hops, BFS says {}",
                s, d, entry.unwrap().hops, hops
            );
        }
    }

    #[test]
    fn data_delivers_along_converged_routes(pts in connected_positions()) {
        let (mut net, handles) = build_net(&pts);
        net.run_until(EmuTime::from_secs(3 + 2 * pts.len() as u64));
        // Send one payload from node 0 to the farthest node.
        let truth = bfs_hops(&pts);
        let Some((&(_, dst), _)) = truth
            .iter()
            .filter(|((s, _), _)| *s == 0)
            .max_by_key(|(_, &h)| h)
        else {
            return Ok(()); // single-component trivial case
        };
        handles[0].tx.lock().push_back((NodeId(dst as u32), b"prop".to_vec()));
        let t_end = net.now() + poem_core::EmuDuration::from_secs(3);
        net.run_until(t_end);
        let received = handles[dst].received.lock();
        prop_assert_eq!(received.len(), 1, "payload lost on ideal links");
        prop_assert_eq!(received[0].origin, NodeId(0));
    }

    #[test]
    fn virtual_time_runs_are_seed_reproducible(
        pts in connected_positions(),
        seed in 0u64..100,
    ) {
        let run = |seed: u64| {
            let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
            for (i, p) in pts.iter().enumerate() {
                net.add_node(
                    NodeId(i as u32),
                    *p,
                    RadioConfig::single(ChannelId(1), RANGE),
                    MobilityModel::random_walk(1.0, 5.0, 1.0),
                    LinkParams::table3(),
                    Box::new(Router::new(RouterConfig::hybrid())),
                )
                .unwrap();
            }
            net.run_until(EmuTime::from_secs(10));
            let positions: Vec<Point> = net.scene().nodes().map(|v| v.pos).collect();
            (net.recorder().counts(), positions)
        };
        let (a_counts, a_pos) = run(seed);
        let (b_counts, b_pos) = run(seed);
        prop_assert_eq!(a_counts, b_counts);
        for (a, b) in a_pos.iter().zip(&b_pos) {
            prop_assert!(a.distance(*b) < 1e-12);
        }
    }
}
