//! Decoding robustness: arbitrary bytes fed to the codec, the framing
//! decoder and the routing-message parser must never panic — they return
//! clean errors (or `None`) on garbage. This is the "hostile input" side
//! of the wire layer: a buggy or malicious client can send anything.

use poem_core::EmuPacket;
use poem_proto::messages::{ClientMsg, ServerMsg};
use poem_proto::{from_bytes, FrameDecoder};
use poem_routing::msg::RoutingMsg;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = from_bytes::<ClientMsg>(&bytes);
        let _ = from_bytes::<ServerMsg>(&bytes);
        let _ = from_bytes::<EmuPacket>(&bytes);
        let _ = RoutingMsg::decode(&bytes);
    }

    #[test]
    fn frame_decoder_survives_arbitrary_chunking(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
        chunk in 1usize..16,
    ) {
        let mut d = FrameDecoder::new();
        for part in bytes.chunks(chunk) {
            d.feed(part);
            // Either yields frames, waits for more, or reports a hostile
            // length prefix — never panics.
            loop {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return Ok(()), // poisoned: connection drops
                }
            }
        }
    }

    #[test]
    fn valid_prefix_with_flipped_byte_never_panics(
        seed_node in any::<u32>(),
        flip_at in 0usize..64,
        flip_to in any::<u8>(),
    ) {
        // Start from a valid encoding and corrupt one byte anywhere.
        let msg = ClientMsg::hello(poem_core::NodeId(seed_node));
        let mut bytes = poem_proto::to_bytes(&msg).unwrap();
        if bytes.is_empty() {
            return Ok(());
        }
        let idx = flip_at % bytes.len();
        bytes[idx] = flip_to;
        match from_bytes::<ClientMsg>(&bytes) {
            // Either it still decodes (the flip hit a don't-care bit or
            // produced another valid value) or errors cleanly.
            Ok(_) | Err(_) => {}
        }
    }
}
