//! Integration test for experiment E3 (Fig. 10 + Table 3, §6.2): the
//! performance-evaluation shapes the paper reports.

use poem_bench::fig10::{run, Fig10Params};
use poem_core::EmuTime;

fn result() -> poem_bench::fig10::Fig10Result {
    run(Fig10Params { end: EmuTime::from_secs(22), ..Fig10Params::default() })
}

#[test]
fn loss_rate_rises_as_the_relay_recedes() {
    let r = result();
    // Average the first three and last three pre-breakdown windows.
    let tb = r.scene.breakdown_time();
    let pre: Vec<f64> = r.real_time.iter().filter(|p| p.t + 1.0 <= tb).map(|p| p.value).collect();
    assert!(pre.len() >= 8, "{}", pre.len());
    let early: f64 = pre[..3].iter().sum::<f64>() / 3.0;
    let late: f64 = pre[pre.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(late > early + 0.1, "loss must climb: early {early}, late {late}");
}

#[test]
fn real_time_curve_tracks_theory_within_minor_error() {
    // The paper: "The result ... proves that PoEm is an effective
    // real-time MANET emulator ... The minor error between the
    // experimental and the expected real-time performance is analyzed as
    // the result of the drift of the random number generator ..."
    let r = result();
    let tb = r.scene.breakdown_time();
    let mut diffs = Vec::new();
    for (m, e) in r.real_time.iter().zip(&r.expected) {
        if m.t >= 4.0 && m.t + 1.0 < tb {
            diffs.push((m.value - e.value).abs());
        }
    }
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    assert!(mean < 0.08, "mean deviation {mean} (windows: {diffs:?})");
}

#[test]
fn non_real_time_recording_distorts_the_curve() {
    let r = result();
    // Serialized stamping under saturation pushes events later: the
    // non-real-time series must span further in time than reality.
    let rt_span = r.real_time.last().unwrap().t - r.real_time.first().unwrap().t;
    let nrt_span = r.non_real_time.last().unwrap().t - r.non_real_time.first().unwrap().t;
    assert!(nrt_span > rt_span * 1.15, "rt {rt_span}, nrt {nrt_span}");
    // And it misrepresents the early loss plateau: compare the first
    // window values at the same nominal time.
    let rt_at5 = r.real_time.iter().find(|p| p.t == 5.0).unwrap().value;
    let nrt_at5 = r.non_real_time.iter().find(|p| p.t == 5.0).unwrap().value;
    assert!((rt_at5 - nrt_at5).abs() > 1e-6, "the two recordings should disagree somewhere");
}

#[test]
fn channel_isolation_means_no_collisions() {
    // "The packet loss in the test is purely caused by the link model
    // settings since the two channels are assigned diverse channel IDs."
    // With the loss model disabled, the same scenario delivers everything
    // that is offered while routes exist.
    use poem_core::linkmodel::LinkParams;
    use poem_core::NodeId;
    use poem_routing::{Router, RouterConfig};
    use poem_server::sim::{SimConfig, SimNet};
    use poem_traffic::{FlowReport, Pattern, TrafficApp, TrafficAppConfig};

    let scene = poem_bench::scenes::fig9_scene();
    let mut net = SimNet::new(SimConfig::default());
    let cbr = TrafficApp::new(
        Router::new(RouterConfig::hybrid()),
        TrafficAppConfig {
            dst: NodeId(3),
            pattern: Pattern::cbr_rate(4.0e6, 1000),
            start: EmuTime::from_secs(3),
            stop: EmuTime::from_secs(8),
            seed: 5,
        },
    );
    let sent = cbr.sent_log();
    let rx = Router::new(RouterConfig::hybrid());
    let rx_handles = rx.handles();
    let apps: Vec<Box<dyn poem_client::ClientApp>> =
        vec![Box::new(cbr), Box::new(Router::new(RouterConfig::hybrid())), Box::new(rx)];
    for ((id, pos, radios, _mobility), app) in scene.nodes.clone().into_iter().zip(apps) {
        // Stationary + lossless: isolate the channel-collision question.
        net.add_node(
            id,
            pos,
            radios,
            poem_core::mobility::MobilityModel::Stationary,
            LinkParams::ideal(11.0e6),
            app,
        )
        .unwrap();
    }
    net.run_until(EmuTime::from_secs(10));
    let report = FlowReport::compute(
        &sent.lock().clone(),
        &rx_handles.received.lock().clone(),
        NodeId(1),
        poem_core::EmuDuration::from_secs(1),
    );
    assert!(report.offered >= 2_400, "{}", report.offered);
    assert_eq!(
        report.overall_loss,
        Some(0.0),
        "no collisions across channels: {} of {} delivered",
        report.delivered,
        report.offered
    );

    // Cross-check with the emulator's own recorder: nothing was dropped.
    let traffic = net.recorder().traffic();
    let drops =
        traffic.iter().filter(|r| matches!(r, poem_record::TrafficRecord::Drop { .. })).count();
    assert_eq!(drops, 0, "recorder saw {drops} drops");
}

#[test]
fn post_run_replay_reproduces_the_relay_trajectory() {
    use poem_core::NodeId;
    let scene = poem_bench::scenes::fig9_scene();
    let params = Fig10Params { end: EmuTime::from_secs(10), ..Fig10Params::default() };
    // Run the experiment through the harness and keep the recorder.
    let r = run(params);
    assert!(r.offered > 0);
    // Rerun to grab a recorder (run() does not expose it); lighter: build
    // a tiny run with just the moving relay.
    use poem_client::app::IdleApp;
    use poem_server::sim::{SimConfig, SimNet};
    let mut net = SimNet::new(SimConfig::default());
    let (id, pos, radios, mobility) = scene.nodes[1].clone();
    net.add_node(id, pos, radios, mobility, scene.link, Box::new(IdleApp)).unwrap();
    net.run_until(EmuTime::from_secs(10));
    let engine = poem_record::ReplayEngine::new(net.recorder().scene());
    for t in [0u64, 4, 8, 10] {
        let replayed = engine.scene_at(EmuTime::from_secs(t)).unwrap();
        let pos = replayed.node(NodeId(2)).unwrap().pos;
        let truth = scene.relay_pos(t as f64);
        assert!(pos.distance(truth) < 1.5, "t={t}: replayed {pos}, truth {truth}");
    }
}
