//! Chaos soak: every fault kind at once, and the pipeline's books must
//! still balance.
//!
//! The acceptance bar for `poem-chaos` (ISSUE 3): with a client stall, a
//! link flap and frame corruption active *concurrently* — plus the other
//! nine fault kinds layered over the run — the deterministic harness must
//! (a) finish without panicking, (b) keep the per-copy accounting
//! invariant intact: every copy the pipeline scheduled is either forwarded
//! or dropped by the end of the run, with the traffic log and the
//! `poem-obs` counters in exact agreement, and (c) reproduce byte-identical
//! logs when re-run with the same seed. Seeds default to `[7, 42, 1337]`
//! and can be overridden with `POEM_CHAOS_SEED=<n>[,<n>...]`.

use bytes::Bytes;
use poem_chaos::{FaultKind, FaultPlan};
use poem_client::{ClientApp, Nic};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::{ChannelId, EmuDuration, EmuPacket, EmuTime, NodeId, Point, RadioId};
use poem_record::{TrafficQuery, TrafficRecord};
use poem_server::sim::{SimConfig, SimNet};

/// A plan touching all four chaos layers, with the stall, the flap and the
/// wire corruption overlapping in (2 s, 5 s).
fn full_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(EmuTime::from_secs(1), FaultKind::WireCorrupt { node: NodeId(2), prob: 0.2 })
        .push(EmuTime::from_secs(1), FaultKind::WireTruncate { node: NodeId(3), prob: 0.1 })
        .push(EmuTime::from_secs(1), FaultKind::WireDuplicate { node: NodeId(1), prob: 0.15 })
        .push(EmuTime::from_secs(1), FaultKind::WireReorder { node: NodeId(4), prob: 0.25 })
        .push(
            EmuTime::from_secs(2),
            FaultKind::Stall { node: NodeId(2), duration: EmuDuration::from_secs(3) },
        )
        .push(
            EmuTime::from_secs(2),
            FaultKind::LinkFlap {
                node: NodeId(1),
                radio: RadioId(0),
                factor: 0.4,
                duration: EmuDuration::from_secs(3),
            },
        )
        .push(
            EmuTime::from_secs(4),
            FaultKind::Jam { channel: ChannelId(2), duration: EmuDuration::from_secs(2) },
        )
        .push(
            EmuTime::from_secs(6),
            FaultKind::SlowReader {
                node: NodeId(4),
                buffer: 2,
                duration: EmuDuration::from_secs(2),
            },
        )
        .push(
            EmuTime::from_secs(7),
            FaultKind::ClockSkew { node: NodeId(3), offset: EmuDuration::from_millis(500) },
        )
        .push(
            EmuTime::from_secs(7),
            FaultKind::ClockJitter { node: NodeId(4), std_dev: EmuDuration::from_millis(20) },
        )
        .push(
            EmuTime::from_secs(9),
            FaultKind::Crash { node: NodeId(5), restart_after: Some(EmuDuration::from_secs(4)) },
        )
        .push(EmuTime::from_secs(20), FaultKind::Disconnect { node: NodeId(3) });
    plan
}

/// A chatty app with a *finite* send budget, so every scheduled delivery
/// settles (forwarded or dropped) before the run's cutoff and the
/// accounting can be checked exactly. Alternates broadcasts with unicasts
/// to a fixed peer; survives a crash/restart cycle (`on_start` re-fires on
/// revive) without exceeding its budget.
struct SoakApp {
    channel: ChannelId,
    peer: NodeId,
    remaining: u32,
    seq: u32,
}

impl SoakApp {
    fn new(channel: ChannelId, peer: NodeId) -> Self {
        SoakApp { channel, peer, remaining: 24, seq: 0 }
    }

    fn emit(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.seq += 1;
        let dest = if self.seq.is_multiple_of(2) {
            Destination::Unicast(self.peer)
        } else {
            Destination::Broadcast
        };
        nic.send(self.channel, dest, Bytes::from(format!("soak-{}", self.seq)));
        Some(EmuDuration::from_millis(600))
    }
}

impl ClientApp for SoakApp {
    fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        self.emit(nic)
    }

    fn on_packet(&mut self, _nic: &mut dyn Nic, _pkt: EmuPacket) {}

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        self.emit(nic)
    }
}

struct SoakRun {
    traffic: Vec<u8>,
    scene: Vec<u8>,
    faults: Vec<u8>,
    counts: poem_record::CopyCounts,
    ingress: u64,
    snap: poem_obs::MetricsSnapshot,
    fault_records: usize,
}

fn soak_once(seed: u64) -> SoakRun {
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    for (id, x, y) in
        [(1u32, 0.0, 0.0), (2, 150.0, 0.0), (3, 300.0, 0.0), (4, 150.0, 150.0), (5, 0.0, 150.0)]
    {
        // Node 3 sits alone on channel 2: unicasts to it cross channels and
        // exercise the no-route drop path; jamming ch2 silences it.
        let channel = ChannelId(if id == 3 { 2 } else { 1 });
        let peer = NodeId(1 + (id % 5));
        net.add_node(
            NodeId(id),
            Point::new(x, y),
            RadioConfig::single(channel, 220.0),
            MobilityModel::Stationary,
            LinkParams::ideal(8e6),
            Box::new(SoakApp::new(channel, peer)),
        )
        .expect("valid node");
    }
    net.install_faults(&full_plan());
    // Budgeted apps go quiet by ~t = 19 s even across the crash/restart
    // window; running to 25 s leaves nothing in flight.
    net.run_until(EmuTime::from_secs(25));

    let recorder = net.recorder();
    let traffic_log = recorder.traffic();
    let counts = TrafficQuery::new(&traffic_log).copy_counts();
    let ingress =
        traffic_log.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count() as u64;
    let snap = net.metrics();
    SoakRun {
        traffic: poem_proto::to_bytes(&traffic_log).expect("serialize traffic"),
        scene: poem_proto::to_bytes(&recorder.scene()).expect("serialize scene"),
        faults: poem_proto::to_bytes(&recorder.faults()).expect("serialize faults"),
        counts,
        ingress,
        snap,
        fault_records: recorder.faults().len(),
    }
}

fn seeds() -> Vec<u64> {
    match std::env::var("POEM_CHAOS_SEED") {
        Ok(raw) => raw
            .split(',')
            .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad POEM_CHAOS_SEED `{s}`")))
            .collect(),
        Err(_) => vec![7, 42, 1337],
    }
}

#[test]
fn soak_survives_every_fault_kind_with_balanced_books() {
    for seed in seeds() {
        let run = soak_once(seed);
        assert!(run.fault_records > 0, "seed {seed}: no fault records emitted");
        assert!(run.counts.total() > 0, "seed {seed}: soak produced no packet copies");

        // Accounting invariants. Every packet a client offered was counted
        // at ingest; every copy the pipeline scheduled was either forwarded
        // or dropped by the cutoff; and the traffic log agrees with the
        // `poem-obs` counters copy for copy.
        assert_eq!(
            Some(run.ingress),
            run.snap.counter("poem_ingest_packets_total"),
            "seed {seed}: ingest counter disagrees with the traffic log"
        );
        assert_eq!(
            run.counts.dropped(),
            run.snap.counter_family("poem_drops_total"),
            "seed {seed}: drop counters disagree with the traffic log"
        );
        assert_eq!(
            Some(run.counts.forwarded + run.counts.disconnected),
            run.snap.counter("poem_ingest_deliveries_total"),
            "seed {seed}: scheduled deliveries ≠ forwarded + dropped-at-door \
             (copies still in flight or lost to accounting)"
        );
        assert!(run.counts.no_route > 0, "seed {seed}: cross-channel unicasts never dropped");
        assert!(
            run.counts.disconnected > 0,
            "seed {seed}: stall overflow / crash window dropped nothing"
        );

        // The chaos engine exported its own instrumentation: injections
        // were counted, and every windowed fault expired by t = 25 s.
        assert!(
            run.snap.counter_family("poem_faults_injected_total") > 0,
            "seed {seed}: no fault injections counted"
        );
        assert_eq!(
            run.snap.gauge("poem_faults_active"),
            Some(0),
            "seed {seed}: a fault window never expired"
        );
    }
}

#[test]
fn soak_is_reproducible_per_seed() {
    for seed in seeds() {
        let a = soak_once(seed);
        let b = soak_once(seed);
        assert_eq!(a.traffic, b.traffic, "seed {seed}: traffic logs diverged");
        assert_eq!(a.scene, b.scene, "seed {seed}: scene logs diverged");
        assert_eq!(a.faults, b.faults, "seed {seed}: fault logs diverged");
    }
}
