//! Real-time TCP deployment test: the identical protocol code that runs
//! in the deterministic harness (the hybrid router) runs unchanged over a
//! live PoEm server with TCP clients, clock synchronization, a multi-radio
//! relay and the recorder — the paper's deployment mode (§5).

use bytes::Bytes;
use poem_client::{AppRunner, EmuClient};
use poem_core::clock::{Clock, WallClock};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_routing::{Router, RouterConfig};
use poem_server::{ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

/// Fig. 9 geometry, static (no mobility — wall-clock runs stay short).
fn fig9_static_scene() -> Scene {
    let mut s = Scene::new();
    let nodes = [
        (1u32, 0.0, RadioConfig::single(ChannelId(1), 200.0)),
        (2u32, 120.0, RadioConfig::multi(&[ChannelId(1), ChannelId(2)], 200.0)),
        (3u32, 240.0, RadioConfig::single(ChannelId(2), 200.0)),
    ];
    for (id, x, radios) in nodes {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(id),
                pos: Point::new(x, 0.0),
                radios,
                mobility: MobilityModel::Stationary,
                link: LinkParams::ideal(11.0e6),
            },
        )
        .unwrap();
    }
    s
}

fn fast_hybrid() -> RouterConfig {
    RouterConfig {
        broadcast_interval: poem_core::EmuDuration::from_millis(50),
        route_ttl: poem_core::EmuDuration::from_millis(400),
        ..RouterConfig::hybrid()
    }
}

fn connect(server: &ServerHandle, id: u32, radios: RadioConfig) -> EmuClient {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let c = EmuClient::connect_tcp(server.addr(), NodeId(id), radios, clock).unwrap();
    c.sync_clock(3).unwrap();
    c
}

#[test]
fn multi_hop_cross_channel_flow_over_real_tcp() {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let server = ServerHandle::start(fig9_static_scene(), clock, ServerConfig::default()).unwrap();

    let sender_router = Router::new(fast_hybrid());
    let tx_handles = sender_router.handles();
    let relay_router = Router::new(fast_hybrid());
    let rx_router = Router::new(fast_hybrid());
    let rx_handles = rx_router.handles();

    let _sender = AppRunner::spawn(
        connect(&server, 1, RadioConfig::single(ChannelId(1), 200.0)),
        Box::new(sender_router),
    );
    let _relay = AppRunner::spawn(
        connect(&server, 2, RadioConfig::multi(&[ChannelId(1), ChannelId(2)], 200.0)),
        Box::new(relay_router),
    );
    let _receiver = AppRunner::spawn(
        connect(&server, 3, RadioConfig::single(ChannelId(2), 200.0)),
        Box::new(rx_router),
    );

    // Wait for VMN1 to learn the cross-channel route to VMN3 via VMN2.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        if let Some(e) = tx_handles.table.lock().route(NodeId(3)) {
            assert_eq!(e.next_hop.node, NodeId(2));
            assert_eq!(e.hops, 2);
            break;
        }
        assert!(std::time::Instant::now() < deadline, "route to VMN3 never formed");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Inject 20 payloads through the router's external send queue; the
    // app loop originates them on its next ticks.
    for i in 0..20u8 {
        tx_handles.tx.lock().push_back((NodeId(3), vec![i; 8]));
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        let got = rx_handles.received.lock().len();
        if got >= 20 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "only {got} of 20 payloads arrived at VMN3");
        std::thread::sleep(Duration::from_millis(20));
    }
    let received = rx_handles.received.lock().clone();
    assert!(received.iter().all(|r| r.origin == NodeId(1)));
    assert_eq!(received.len(), 20);

    server.shutdown();
}

#[test]
fn clock_sync_over_tcp_brings_client_close_to_server() {
    let server_clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    // Server clock far in the "future".
    server_clock.adjust(poem_core::EmuDuration::from_secs(5_000));
    let server = ServerHandle::start(
        fig9_static_scene(),
        Arc::clone(&server_clock),
        ServerConfig::default(),
    )
    .unwrap();

    let client_clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let client = EmuClient::connect_tcp(
        server.addr(),
        NodeId(1),
        RadioConfig::single(ChannelId(1), 200.0),
        Arc::clone(&client_clock),
    )
    .unwrap();
    let before = (server_clock.now() - client_clock.now()).abs();
    assert!(before > poem_core::EmuDuration::from_secs(4_000));
    client.sync_clock(4).unwrap();
    let after = (server_clock.now() - client_clock.now()).abs();
    // Loopback TCP: sub-10 ms accuracy is ample (the estimate error is half
    // the path asymmetry, which on loopback is microseconds).
    assert!(after < poem_core::EmuDuration::from_millis(10), "offset after sync: {after}");
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn recorder_captures_the_tcp_run_for_replay() {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let server = ServerHandle::start(fig9_static_scene(), clock, ServerConfig::default()).unwrap();
    let c1 = connect(&server, 1, RadioConfig::single(ChannelId(1), 200.0));
    let c2 = connect(&server, 2, RadioConfig::multi(&[ChannelId(1), ChannelId(2)], 200.0));
    for _ in 0..10 {
        c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"ping"))
            .unwrap()
            .unwrap();
    }
    let mut got = 0;
    while got < 10 {
        let _ = c2.recv_timeout(Duration::from_secs(5)).expect("broadcast arrives");
        got += 1;
    }
    // A scene op mid-run is recorded too.
    server.apply_op(SceneOp::MoveNode { id: NodeId(2), pos: Point::new(130.0, 5.0) }).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let recorder = server.recorder();
    let (traffic, scene_ops) = recorder.counts();
    assert!(traffic >= 20, "{traffic}"); // 10 ingress + 10 forwards
    assert_eq!(scene_ops, 4, "3 initial AddNode + 1 MoveNode");

    // Post-emulation replay reconstructs the full scene at every point.
    let engine = poem_record::ReplayEngine::new(recorder.scene());
    let replayed = engine.scene_at(EmuTime::MAX).unwrap();
    assert_eq!(replayed.len(), 3);
    assert_eq!(replayed.node(NodeId(2)).unwrap().pos, Point::new(130.0, 5.0));

    drop((c1, c2));
    server.shutdown();
}
