//! The committed scenario library (`scenarios/*.poem` + `*.profile`),
//! end to end: every committed file parses cleanly (the CI fixture
//! gate), every scenario runs under **both** frontends — the virtual
//! discrete-event harness and the real-time TCP server — and chaos
//! faults composed over profile-driven links keep the pipeline's
//! per-copy accounting exact.

use bytes::Bytes;
use poem_bench::scenario_matrix::SCENARIOS;
use poem_client::{ClientApp, EmuClient, Nic};
use poem_core::clock::{Clock, WallClock};
use poem_core::packet::Destination;
use poem_core::scene::Scene;
use poem_core::{ChannelId, EmuDuration, EmuPacket, EmuTime, NodeId};
use poem_profiles::ProfileLibrary;
use poem_record::{TrafficQuery, TrafficRecord};
use poem_server::script::Script;
use poem_server::sim::{SimConfig, SimNet};
use poem_server::{ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::Duration;

/// Fixture gate: every committed `scenarios/` file parses cleanly — the
/// `.profile`s individually and as one merged library (no cross-file
/// name collisions), and every `.poem` script's `profile` bindings
/// resolve against its own library. Reads the directory from disk so a
/// newly committed scenario is gated even before it joins the E17
/// matrix.
#[test]
fn committed_scenario_files_parse_cleanly() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let mut profile_texts = Vec::new();
    let mut scripts = 0usize;
    let mut entries: Vec<_> =
        std::fs::read_dir(&dir).expect("scenarios/ exists").map(|e| e.unwrap().path()).collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("scenario file readable");
        match path.extension().and_then(|e| e.to_str()) {
            Some("profile") => {
                ProfileLibrary::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                profile_texts.push(text);
            }
            Some("poem") => {
                let script =
                    Script::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                let lib_path = path.with_extension("profile");
                let lib_text =
                    std::fs::read_to_string(&lib_path).expect("matching .profile committed");
                let lib = ProfileLibrary::parse(&lib_text).expect("profile parses");
                script.resolve_profiles(&lib).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                assert!(script.profile_count() > 0, "{}: binds no profiles", path.display());
                scripts += 1;
            }
            other => panic!("{}: unexpected extension {other:?}", path.display()),
        }
    }
    assert!(scripts >= 4, "scenario library shrank to {scripts} scripts");
    assert_eq!(scripts, SCENARIOS.len(), "E17 matrix out of sync with scenarios/");
    // All committed profiles also merge into one library without
    // cross-scenario name collisions.
    let refs: Vec<&str> = profile_texts.iter().map(|s| s.as_str()).collect();
    ProfileLibrary::parse_many(&refs).expect("committed profiles merge cleanly");
}

/// A finite-budget chatterbox: alternates broadcasts and unicasts so
/// every drop path (loss, no-route, collision) stays reachable, then
/// goes quiet so the accounting can settle.
struct Chatter {
    channel: ChannelId,
    peer: NodeId,
    remaining: u32,
    seq: u32,
}

impl Chatter {
    fn emit(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.seq += 1;
        let dest = if self.seq.is_multiple_of(2) {
            Destination::Unicast(self.peer)
        } else {
            Destination::Broadcast
        };
        nic.send(self.channel, dest, Bytes::from(format!("chat-{}", self.seq)));
        Some(EmuDuration::from_millis(400))
    }
}

impl ClientApp for Chatter {
    fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        self.emit(nic)
    }

    fn on_packet(&mut self, _nic: &mut dyn Nic, _pkt: EmuPacket) {}

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        self.emit(nic)
    }
}

/// Installs a committed scenario into a fresh SimNet and attaches a
/// finite-budget chatterer to every scripted node.
fn profiled_net(name: &str, seed: u64) -> SimNet {
    let (_, script_text, profile_text) =
        SCENARIOS.iter().find(|(n, _, _)| *n == name).expect("known scenario");
    let lib = ProfileLibrary::parse(profile_text).expect("profile parses");
    let script = Script::parse(script_text).expect("script parses");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    script.install_with_profiles(&mut net, &lib).expect("bindings resolve");
    let roster: Vec<(NodeId, ChannelId)> = net
        .scene()
        .nodes()
        .filter_map(|v| v.radios.channels().into_iter().next().map(|ch| (v.id, ch)))
        .collect();
    for (i, &(id, channel)) in roster.iter().enumerate() {
        let peer = roster[(i + 1) % roster.len()].0;
        net.attach_app(id, Box::new(Chatter { channel, peer, remaining: 24, seq: 0 }))
            .expect("node exists");
    }
    net
}

/// Chaos over empirical links: the disaster-relief scenario carries
/// committed `jam`/`flap` faults on top of Markov profile bindings. The
/// pipeline's books must still balance copy for copy — the traffic log
/// and the `poem-obs` counters in exact agreement — and the run must
/// reproduce byte for byte.
#[test]
fn chaos_over_profiles_keeps_exact_accounting() {
    let run = |seed: u64| {
        let mut net = profiled_net("disaster_relief", seed);
        assert!(net.scene().nodes().count() > 0);
        // Chatterers go quiet by ~t = 10 s; the last committed fault
        // window (jam at 18 s for 2 s) closes by 20 s.
        net.run_until(EmuTime::from_secs(25));
        let recorder = net.recorder();
        let traffic = recorder.traffic();
        let counts = TrafficQuery::new(&traffic).copy_counts();
        let ingress =
            traffic.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count() as u64;
        let snap = net.metrics();
        (poem_proto::to_bytes(&traffic).expect("serialize"), counts, ingress, snap)
    };
    let (bytes_a, counts, ingress, snap) = run(1337);
    assert!(counts.total() > 0, "scenario produced no packet copies");
    assert!(
        snap.counter("poem_profile_decides_total").unwrap_or(0) > 0,
        "profiles never consulted"
    );
    assert!(
        snap.counter_family("poem_faults_injected_total") > 0,
        "committed jam/flap faults never injected"
    );
    assert_eq!(
        Some(ingress),
        snap.counter("poem_ingest_packets_total"),
        "ingest counter disagrees with the traffic log"
    );
    assert_eq!(
        counts.dropped(),
        snap.counter_family("poem_drops_total"),
        "drop counters disagree with the traffic log"
    );
    assert_eq!(
        Some(counts.forwarded + counts.disconnected),
        snap.counter("poem_ingest_deliveries_total"),
        "scheduled deliveries ≠ forwarded + dropped-at-door"
    );
    let (bytes_b, ..) = run(1337);
    assert_eq!(bytes_a, bytes_b, "chaos-over-profiles run is not reproducible");
}

/// Every committed scenario's full op timeline — including the resolved
/// profile bindings — applies cleanly to the real-time TCP frontend, and
/// traffic between live clients on a profile-bound scene consults the
/// empirical models.
#[test]
fn scenarios_run_under_the_tcp_frontend() {
    for (name, script_text, profile_text) in SCENARIOS {
        let lib = ProfileLibrary::parse(profile_text).expect("profile parses");
        let script = Script::parse(script_text).expect("script parses");
        let resolved = script.resolve_profiles(&lib).expect("bindings resolve");
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let server = ServerHandle::start(Scene::new(), clock, ServerConfig::default())
            .unwrap_or_else(|e| panic!("{name}: server start: {e}"));
        server.install_profiles(lib.clone());
        // Replay the whole scripted timeline immediately — wall-clock
        // runs must stay short, and op application is time-stamped by
        // the server clock anyway.
        for e in script.entries().iter().chain(resolved.iter()) {
            server
                .apply_op(e.op.clone())
                .unwrap_or_else(|err| panic!("{name}: op `{}`: {err}", e.op));
        }
        assert!(server.with_scene(|s| s.len()) > 0, "{name}: empty scene");

        if *name == "urban_canyon" {
            // Live traffic over the profile-bound scene: two co-located
            // clients exchange broadcasts; the profile hook must serve
            // the link decisions.
            let ids: Vec<NodeId> = server.with_scene(|s| s.nodes().map(|v| v.id).collect());
            let clients: Vec<EmuClient> = ids
                .iter()
                .take(2)
                .map(|&id| {
                    let radios = server
                        .with_scene(|s| s.node(id).map(|v| v.radios.clone()))
                        .expect("node exists");
                    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
                    let c = EmuClient::connect_tcp(server.addr(), id, radios, clock)
                        .expect("client connects");
                    c.sync_clock(3).expect("clock sync");
                    c
                })
                .collect();
            for c in &clients {
                for _ in 0..5 {
                    let _ = c.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"hi"));
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            std::thread::sleep(Duration::from_millis(300));
            let profiled = server.metrics().counter("poem_profile_decides_total").unwrap_or(0);
            assert!(profiled > 0, "{name}: TCP frontend never consulted the profiles");
            for c in clients {
                let _ = c.close();
            }
        }
        server.shutdown();
    }
}
