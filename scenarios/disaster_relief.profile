# Disaster-relief swarm — ground teams picking through rubble. Links
# are mostly degraded with rare clean spells; the base-camp uplink is
# steadier but low-rate.

profile rubble_field markov dwell 0.8
state clean loss 0.08 bps 2e6 delay 0.008 -> clean 0.55 rough 0.40 buried 0.05
state rough loss 0.35 bps 8e5 delay 0.025 -> clean 0.25 rough 0.60 buried 0.15
state buried loss 0.90 bps 1e5 delay 0.070 -> clean 0.05 rough 0.45 buried 0.50
end

profile base_uplink markov dwell 2.0
state steady loss 0.05 bps 1e6 delay 0.020 -> steady 0.92 congested 0.08
state congested loss 0.30 bps 3e5 delay 0.060 -> steady 0.50 congested 0.50
end
