# Highway convoy — inter-vehicle links breathe with spacing: tight
# platoon, stretched gaps, and brief cuts when a truck merges between
# members. The trail car tows a trailer that shadows its antenna on a
# fixed duty cycle, modeled as a short looping trace.

profile convoy_gap markov dwell 1.0
state tight loss 0.03 bps 5e6 delay 0.005 -> tight 0.80 stretch 0.18 cut 0.02
state stretch loss 0.20 bps 1.2e6 delay 0.015 -> tight 0.40 stretch 0.50 cut 0.10
state cut loss 0.95 bps 2e5 delay 0.050 -> tight 0.15 stretch 0.55 cut 0.30
end

profile trailer_shadow trace loop 8
at 0 loss 0.05 bps 3e6 delay 0.006
at 5 loss 0.60 bps 5e5 delay 0.020
at 7 loss 0.05 bps 3e6 delay 0.006
end
