# Urban canyon — street-level links flip between line-of-sight and
# building-shadowed regimes; cross-street links spend long spells in
# deep shadow with occasional outage.

profile canyon_los markov dwell 0.5
state clear loss 0.02 bps 6e6 delay 0.004 -> clear 0.90 shadow 0.10
state shadow loss 0.25 bps 1.5e6 delay 0.012 -> clear 0.60 shadow 0.40
end

profile canyon_nlos markov dwell 0.5
state good loss 0.10 bps 2e6 delay 0.010 -> good 0.70 degraded 0.25 outage 0.05
state degraded loss 0.45 bps 6e5 delay 0.030 -> good 0.30 degraded 0.55 outage 0.15
state outage loss 0.98 bps 1e5 delay 0.080 -> good 0.10 degraded 0.40 outage 0.50
end
