# Drone mesh with a LEO-style backhaul — inter-drone links are clean
# air-to-air with occasional attitude fades; the gateway's satellite
# uplink follows a looping pass trace: high rate at culmination, a
# deep dip at the periodic handover, then recovery on the next bird.

profile air_mesh markov dwell 0.4
state level loss 0.01 bps 8e6 delay 0.003 -> level 0.88 bank 0.12
state bank loss 0.30 bps 2e6 delay 0.010 -> level 0.65 bank 0.35
end

profile leo_pass trace loop 12
at 0 loss 0.04 bps 4e6 delay 0.025
at 4 loss 0.02 bps 6e6 delay 0.020
at 8 loss 0.10 bps 2e6 delay 0.035
at 10 loss 0.85 bps 2e5 delay 0.120   # handover gap
at 11 loss 0.06 bps 3e6 delay 0.030
end
