//! Deterministic hostile-bytes regression suite for the wire layer.
//!
//! The `poem-lint` panic-safety rule forbids `unwrap`/`expect`/indexing in
//! `codec.rs`/`framing.rs`; these tests pin the behavioral contract behind
//! that rule: truncated, oversized, and garbage frames must come back as
//! clean `Err`/`None`, never a panic. Unlike the property suite in
//! `tests/prop_fuzz_decode.rs`, every case here is a fixed byte pattern, so
//! a regression fails reproducibly with a readable diff.

use poem_core::{EmuTime, NodeId};
use poem_proto::messages::PROTOCOL_VERSION;
use poem_proto::{
    from_bytes, to_bytes, ClientMsg, CodecError, FrameDecoder, ServerMsg, MAX_FRAME_LEN,
};

fn sample_client_msgs() -> Vec<ClientMsg> {
    vec![
        ClientMsg::hello(NodeId(7)),
        ClientMsg::SyncRequest { t_c1: EmuTime::from_millis(41) },
        ClientMsg::Bye,
    ]
}

fn sample_server_msgs() -> Vec<ServerMsg> {
    vec![
        ServerMsg::Welcome {
            version: PROTOCOL_VERSION,
            node: NodeId(7),
            server_time: EmuTime::from_millis(5),
        },
        ServerMsg::Refused { reason: "duplicate".into() },
        ServerMsg::sync_reply(
            EmuTime::from_millis(1),
            EmuTime::from_millis(2),
            EmuTime::from_millis(3),
        ),
        ServerMsg::Shutdown,
    ]
}

/// Every strict prefix of a valid encoding must decode to `Err`, and the
/// full encoding plus trailing garbage must report the trailing bytes.
#[test]
fn truncation_and_trailing_garbage_are_clean_errors() {
    for msg in sample_client_msgs() {
        let bytes = to_bytes(&msg).expect("encode");
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<ClientMsg>(&bytes[..cut]).is_err(),
                "strict prefix of len {cut} of {msg:?} decoded"
            );
        }
        let mut oversized = bytes;
        oversized.push(0xAA);
        assert_eq!(from_bytes::<ClientMsg>(&oversized), Err(CodecError::TrailingBytes(1)));
    }
    for msg in sample_server_msgs() {
        let bytes = to_bytes(&msg).expect("encode");
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<ServerMsg>(&bytes[..cut]).is_err(),
                "strict prefix of len {cut} of {msg:?} decoded"
            );
        }
        let mut oversized = bytes;
        oversized.push(0xAA);
        assert_eq!(from_bytes::<ServerMsg>(&oversized), Err(CodecError::TrailingBytes(1)));
    }
}

/// A hostile length prefix (u64::MAX string length inside a `Refused`
/// payload) must be rejected without attempting the allocation.
#[test]
fn absurd_length_prefix_is_rejected() {
    let valid = to_bytes(&ServerMsg::Refused { reason: "x".into() }).expect("encode");
    // Variant tag is a u32; the string length prefix follows it.
    let mut hostile = valid.clone();
    hostile[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
    match from_bytes::<ServerMsg>(&hostile) {
        Err(CodecError::BadLength(_) | CodecError::Eof) => {}
        other => panic!("expected BadLength/Eof, got {other:?}"),
    }
}

/// Invalid enum variant tags, bool bytes and UTF-8 must all error cleanly.
#[test]
fn garbage_payloads_error_cleanly() {
    // Unknown variant index.
    assert!(from_bytes::<ClientMsg>(&u32::MAX.to_le_bytes()).is_err());
    // Sweep of repeated single-byte garbage at several lengths.
    for byte in [0x00u8, 0x01, 0x7F, 0x80, 0xFF] {
        for len in 0..48 {
            let bytes = vec![byte; len];
            let _ = from_bytes::<ClientMsg>(&bytes);
            let _ = from_bytes::<ServerMsg>(&bytes);
        }
    }
    // Invalid UTF-8 inside a Refused reason: tag 1 (Refused), len 2, 0xFF 0xFE.
    let mut bad_utf8 = 1u32.to_le_bytes().to_vec();
    bad_utf8.extend_from_slice(&2u64.to_le_bytes());
    bad_utf8.extend_from_slice(&[0xFF, 0xFE]);
    assert_eq!(from_bytes::<ServerMsg>(&bad_utf8), Err(CodecError::BadUtf8));
}

/// The frame decoder must wait on short input, reject hostile lengths, and
/// survive garbage fed one byte at a time.
#[test]
fn frame_decoder_handles_hostile_prefixes() {
    // Fewer than 4 bytes: no frame yet, no panic.
    let mut d = FrameDecoder::new();
    d.feed(&[0x01, 0x02]);
    assert!(matches!(d.next_frame(), Ok(None)));

    // Length over the cap poisons the decoder with an error.
    let mut d = FrameDecoder::new();
    d.feed(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    assert!(d.next_frame().is_err());

    // A declared length larger than what has arrived just waits.
    let mut d = FrameDecoder::new();
    d.feed(&100u32.to_le_bytes());
    d.feed(&[0u8; 40]);
    assert!(matches!(d.next_frame(), Ok(None)));
    assert_eq!(d.pending(), 44);

    // Byte-at-a-time garbage: frames may pop, errors may poison — but the
    // decoder never panics and never yields an oversized frame body.
    let mut d = FrameDecoder::new();
    for (i, b) in (0u32..2048).zip((0u8..=255).cycle()) {
        d.feed(&[b.wrapping_mul(31).wrapping_add(i as u8)]);
        match d.next_frame() {
            Ok(Some(frame)) => assert!(frame.len() <= MAX_FRAME_LEN),
            Ok(None) => {}
            Err(_) => break,
        }
    }
}
