//! Length-prefixed framing over byte streams.
//!
//! Every protocol message travels as one frame: a 4-byte little-endian
//! length followed by the codec-encoded message body. [`MsgWriter`] /
//! [`MsgReader`] wrap blocking `Write`/`Read` halves (a `TcpStream` and its
//! `try_clone`, or an in-memory [`crate::pipe`]); [`FrameDecoder`] is a
//! feed-style reassembler for callers that manage their own buffers.

use crate::codec::{from_bytes, to_bytes, CodecError};
use bytes::{Buf, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Upper bound on a frame body, guarding against corrupt or hostile length
/// prefixes. Generously above any real PoEm message (packets are MTU-ish).
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

fn codec_err(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Encodes one message as a complete frame (length prefix + body), for
/// callers that manage their own write buffers — e.g. the server reactor,
/// which appends frames to per-connection output buffers instead of
/// writing through a blocking [`MsgWriter`].
pub fn encode_frame<T: Serialize>(msg: &T) -> io::Result<Vec<u8>> {
    let body = to_bytes(msg).map_err(codec_err)?;
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Writes framed messages to a byte sink.
#[derive(Debug)]
pub struct MsgWriter<W: Write> {
    w: W,
}

impl<W: Write> MsgWriter<W> {
    /// Wraps a sink.
    pub fn new(w: W) -> Self {
        MsgWriter { w }
    }

    /// Encodes and writes one message, flushing the sink.
    pub fn send<T: Serialize>(&mut self, msg: &T) -> io::Result<()> {
        let body = to_bytes(msg).map_err(codec_err)?;
        if body.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
        }
        self.w.write_all(&(body.len() as u32).to_le_bytes())?;
        self.w.write_all(&body)?;
        self.w.flush()
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// Reads framed messages from a byte source.
#[derive(Debug)]
pub struct MsgReader<R: Read> {
    r: R,
    buf: Vec<u8>,
}

impl<R: Read> MsgReader<R> {
    /// Wraps a source.
    pub fn new(r: R) -> Self {
        MsgReader { r, buf: Vec::new() }
    }

    /// Blocks until one full message arrives and decodes it.
    ///
    /// Returns `ErrorKind::UnexpectedEof` if the stream closes mid-frame
    /// (or before a frame starts — callers distinguish clean shutdown by
    /// protocol, e.g. receiving `Bye`/`Shutdown` first).
    pub fn recv<T: DeserializeOwned>(&mut self) -> io::Result<T> {
        let mut len_bytes = [0u8; 4];
        self.r.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds cap"));
        }
        self.buf.resize(len, 0);
        self.r.read_exact(&mut self.buf)?;
        from_bytes(&self.buf).map_err(codec_err)
    }

    /// Consumes the reader, returning the source.
    pub fn into_inner(self) -> R {
        self.r
    }
}

/// Feed-style frame reassembler: push arbitrary byte chunks in, pull
/// complete frame bodies out.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame body, if one has fully arrived.
    ///
    /// Returns `Err` on a length prefix over [`MAX_FRAME_LEN`]; the decoder
    /// is then poisoned and the connection should be dropped.
    pub fn next_frame(&mut self) -> io::Result<Option<BytesMut>> {
        let Some(prefix) = self.buf.get(..4).and_then(|p| <[u8; 4]>::try_from(p).ok()) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "frame length exceeds cap"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len)))
    }

    /// Decodes the next complete frame as `T`, if available.
    pub fn next_msg<T: DeserializeOwned>(&mut self) -> io::Result<Option<T>> {
        match self.next_frame()? {
            Some(body) => from_bytes(&body).map(Some).map_err(codec_err),
            None => Ok(None),
        }
    }

    /// Bytes currently buffered.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{ClientMsg, ServerMsg};
    use poem_core::{EmuTime, NodeId};
    use std::io::Cursor;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = MsgWriter::new(Vec::new());
        let msgs = vec![
            ClientMsg::hello(NodeId(1)),
            ClientMsg::SyncRequest { t_c1: EmuTime::from_millis(9) },
            ClientMsg::Bye,
        ];
        for m in &msgs {
            w.send(m).unwrap();
        }
        let bytes = w.into_inner();
        let mut r = MsgReader::new(Cursor::new(bytes));
        for m in &msgs {
            let got: ClientMsg = r.recv().unwrap();
            assert_eq!(&got, m);
        }
        // Stream exhausted → UnexpectedEof.
        let err = r.recv::<ClientMsg>().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_frame_is_eof() {
        let mut w = MsgWriter::new(Vec::new());
        w.send(&ClientMsg::hello(NodeId(1))).unwrap();
        let mut bytes = w.into_inner();
        bytes.truncate(bytes.len() - 1);
        let mut r = MsgReader::new(Cursor::new(bytes));
        assert_eq!(r.recv::<ClientMsg>().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut bytes = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let mut r = MsgReader::new(Cursor::new(bytes));
        assert_eq!(r.recv::<ClientMsg>().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_reassembles_split_chunks() {
        let mut w = MsgWriter::new(Vec::new());
        w.send(&ServerMsg::Shutdown).unwrap();
        w.send(&ServerMsg::Refused { reason: "x".into() }).unwrap();
        let bytes = w.into_inner();

        let mut d = FrameDecoder::new();
        let mut out: Vec<ServerMsg> = Vec::new();
        // Feed one byte at a time — worst-case fragmentation.
        for b in &bytes {
            d.feed(std::slice::from_ref(b));
            while let Some(m) = d.next_msg::<ServerMsg>().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, vec![ServerMsg::Shutdown, ServerMsg::Refused { reason: "x".into() }]);
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn decoder_handles_coalesced_frames() {
        let mut w = MsgWriter::new(Vec::new());
        for i in 0..10u32 {
            w.send(&ClientMsg::hello(NodeId(i))).unwrap();
        }
        let mut d = FrameDecoder::new();
        d.feed(&w.into_inner());
        let mut n = 0;
        while let Some(ClientMsg::Hello { node, .. }) = d.next_msg::<ClientMsg>().unwrap() {
            assert_eq!(node, NodeId(n));
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn decoder_rejects_hostile_prefix() {
        let mut d = FrameDecoder::new();
        d.feed(&u32::MAX.to_le_bytes());
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn empty_decoder_yields_nothing() {
        let mut d = FrameDecoder::new();
        assert!(d.next_frame().unwrap().is_none());
        d.feed(&[1, 0]);
        assert!(d.next_frame().unwrap().is_none(), "partial length prefix");
    }
}
