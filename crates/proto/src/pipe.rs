//! An in-memory blocking byte pipe.
//!
//! [`pipe()`] returns connected `(PipeWriter, PipeReader)` halves whose
//! `Write`/`Read` implementations behave like a loopback TCP stream:
//! writes append to a shared buffer, reads block until bytes (or EOF)
//! arrive. Dropping the writer closes the stream (reads drain the buffer
//! and then return `Ok(0)`).
//!
//! This lets tests and deterministic experiments run the *identical*
//! framing + codec path the TCP deployment uses, without sockets.
//!
//! [`bounded_pipe()`] adds a capacity: writes block once `capacity` bytes
//! are buffered, like a full socket send buffer facing a reader that has
//! stopped reading. This is the substrate slow-consumer faults (and their
//! server-side eviction) are tested against.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::Arc;

#[derive(Default)]
struct Shared {
    buf: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
}

#[derive(Default)]
struct PipeState {
    data: VecDeque<u8>,
    /// `None` = unbounded; `Some(n)` = writes block at `n` buffered bytes.
    capacity: Option<usize>,
    closed: bool,
}

/// The write half of an in-memory pipe.
pub struct PipeWriter {
    shared: Arc<Shared>,
}

/// The read half of an in-memory pipe.
pub struct PipeReader {
    shared: Arc<Shared>,
}

/// Creates a connected unidirectional pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared::default());
    (PipeWriter { shared: Arc::clone(&shared) }, PipeReader { shared })
}

/// Creates a pipe whose writer blocks once `capacity` bytes are buffered
/// (capacity 0 is promoted to 1 so a write can always make progress).
pub fn bounded_pipe(capacity: usize) -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared {
        buf: Mutex::new(PipeState { capacity: Some(capacity.max(1)), ..PipeState::default() }),
        ..Shared::default()
    });
    (PipeWriter { shared: Arc::clone(&shared) }, PipeReader { shared })
}

/// Creates a connected bidirectional link: returns two `(writer, reader)`
/// endpoints, A and B, where A's writer feeds B's reader and vice versa —
/// the in-memory analogue of one TCP connection.
pub fn duplex() -> ((PipeWriter, PipeReader), (PipeWriter, PipeReader)) {
    let (aw, br) = pipe();
    let (bw, ar) = pipe();
    ((aw, ar), (bw, br))
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.buf.lock();
        loop {
            if state.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            let room = match state.capacity {
                Some(cap) => cap.saturating_sub(state.data.len()),
                None => buf.len(),
            };
            if room > 0 {
                let n = buf.len().min(room);
                state.data.extend(buf[..n].iter().copied());
                self.shared.readable.notify_all();
                return Ok(n);
            }
            self.shared.writable.wait(&mut state);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        let mut state = self.shared.buf.lock();
        state.closed = true;
        self.shared.readable.notify_all();
        self.shared.writable.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.shared.buf.lock();
        while state.data.is_empty() && !state.closed {
            self.shared.readable.wait(&mut state);
        }
        if state.data.is_empty() {
            return Ok(0); // EOF
        }
        let n = buf.len().min(state.data.len());
        for (slot, byte) in buf.iter_mut().zip(state.data.drain(..n)) {
            *slot = byte;
        }
        self.shared.writable.notify_all();
        Ok(n)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        // Mark closed so writers see BrokenPipe instead of buffering
        // forever into a pipe nobody will read.
        let mut state = self.shared.buf.lock();
        state.closed = true;
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::{MsgReader, MsgWriter};
    use crate::messages::ClientMsg;
    use poem_core::NodeId;
    use std::thread;

    #[test]
    fn bytes_flow_through() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn read_blocks_until_write() {
        let (mut w, mut r) = pipe();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 3];
            r.read_exact(&mut buf).unwrap();
            buf
        });
        thread::sleep(std::time::Duration::from_millis(20));
        w.write_all(b"abc").unwrap();
        assert_eq!(t.join().unwrap(), *b"abc");
    }

    #[test]
    fn dropping_writer_signals_eof() {
        let (w, mut r) = pipe();
        drop(w);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn buffered_bytes_survive_writer_drop() {
        let (mut w, mut r) = pipe();
        w.write_all(b"tail").unwrap();
        drop(w);
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "tail");
    }

    #[test]
    fn write_after_reader_drop_is_broken_pipe() {
        let (mut w, r) = pipe();
        drop(r);
        let err = w.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn duplex_carries_framed_messages_both_ways() {
        let ((aw, ar), (bw, br)) = duplex();
        let mut a_tx = MsgWriter::new(aw);
        let mut a_rx = MsgReader::new(ar);
        let mut b_tx = MsgWriter::new(bw);
        let mut b_rx = MsgReader::new(br);

        let t = thread::spawn(move || {
            let got: ClientMsg = b_rx.recv().unwrap();
            assert_eq!(got, ClientMsg::hello(NodeId(5)));
            b_tx.send(&ClientMsg::Bye).unwrap();
        });
        a_tx.send(&ClientMsg::hello(NodeId(5))).unwrap();
        let reply: ClientMsg = a_rx.recv().unwrap();
        assert_eq!(reply, ClientMsg::Bye);
        t.join().unwrap();
    }

    #[test]
    fn bounded_pipe_blocks_writer_until_reader_drains() {
        let (mut w, mut r) = bounded_pipe(4);
        // Fits: returns immediately.
        w.write_all(b"abcd").unwrap();
        let t = thread::spawn(move || {
            // Blocks until the reader below makes room.
            w.write_all(b"efgh").unwrap();
        });
        thread::sleep(std::time::Duration::from_millis(20));
        let mut got = vec![0u8; 8];
        r.read_exact(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, b"abcdefgh");
    }

    #[test]
    fn bounded_pipe_write_unblocks_on_reader_drop() {
        let (mut w, r) = bounded_pipe(2);
        w.write_all(b"xy").unwrap();
        let t = thread::spawn(move || w.write_all(b"z"));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(r);
        assert_eq!(t.join().unwrap().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn bounded_pipe_zero_capacity_still_moves_bytes() {
        let (mut w, mut r) = bounded_pipe(0);
        let t = thread::spawn(move || w.write_all(b"ok"));
        let mut got = [0u8; 2];
        r.read_exact(&mut got).unwrap();
        t.join().unwrap().unwrap();
        assert_eq!(&got, b"ok");
    }

    #[test]
    fn large_transfer_integrity() {
        let (mut w, mut r) = pipe();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let t = thread::spawn(move || {
            w.write_all(&data).unwrap();
        });
        let mut got = Vec::new();
        r.read_to_end(&mut got).unwrap();
        t.join().unwrap();
        assert_eq!(got, expect);
    }
}
