//! A compact binary serde format, implemented from scratch.
//!
//! The format is **non-self-describing** (the reader must know the type),
//! which keeps frames small and encoding branch-free:
//!
//! * scalars: fixed-width little-endian (`bool` = 1 byte, `u16`/`i16` = 2,
//!   `u32`/`i32`/`f32` = 4, `u64`/`i64`/`f64` = 8, `char` = 4);
//! * `str` / `bytes` / sequences / maps: `u64` little-endian length prefix
//!   followed by the elements;
//! * `Option`: 1-byte tag (0 = `None`, 1 = `Some`) + value;
//! * structs / tuples: fields in declaration order, no prefix;
//! * enums: `u32` variant index + variant content.
//!
//! Deserialization is strict: trailing bytes, truncated input, invalid
//! UTF-8, bad option/bool tags and out-of-range lengths are all hard
//! errors — a corrupted frame can never silently decode.

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::fmt;

/// Errors produced by encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    Eof,
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
    /// A `bool` byte was neither 0 nor 1.
    BadBool(u8),
    /// An `Option` tag byte was neither 0 nor 1.
    BadOptionTag(u8),
    /// A `char` code point was invalid.
    BadChar(u32),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the remaining input (corrupt or hostile).
    BadLength(u64),
    /// The type asked the format for something it cannot do
    /// (`deserialize_any`, unsized sequences, ...).
    Unsupported(&'static str),
    /// Error raised by the type's own serde implementation.
    Custom(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::BadBool(b) => write!(f, "invalid bool byte {b:#x}"),
            CodecError::BadOptionTag(b) => write!(f, "invalid option tag {b:#x}"),
            CodecError::BadChar(c) => write!(f, "invalid char code point {c:#x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in string"),
            CodecError::BadLength(n) => write!(f, "length prefix {n} exceeds input"),
            CodecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CodecError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

/// Encodes a value to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = BinSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Decodes a value from bytes, requiring the input to be fully consumed.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let v = T::deserialize(&mut de)?;
    if de.input.is_empty() {
        Ok(v)
    } else {
        Err(CodecError::TrailingBytes(de.input.len()))
    }
}

struct BinSerializer {
    out: Vec<u8>,
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.serialize_bytes(v.as_bytes())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.out.extend_from_slice(&(v.len() as u64).to_le_bytes());
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("sequences must have a known length"))?;
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::Unsupported("maps must have a known length"))?;
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! forward_compound {
    ($trait:path, $serfn:ident $(, $keyfn:ident)?) => {
        impl<'a> $trait for &'a mut BinSerializer {
            type Ok = ();
            type Error = CodecError;
            $(
                fn $keyfn<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
                    key.serialize(&mut **self)
                }
            )?
            fn $serfn<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

forward_compound!(ser::SerializeSeq, serialize_element);
forward_compound!(ser::SerializeTuple, serialize_element);
forward_compound!(ser::SerializeTupleStruct, serialize_field);
forward_compound!(ser::SerializeTupleVariant, serialize_field);
forward_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::Eof);
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    /// Like [`take`](Self::take) but returns a fixed-size array, so scalar
    /// reads need no panicking `try_into().unwrap()` conversion.
    fn take_n<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| CodecError::Eof)
    }

    fn read_u8(&mut self) -> Result<u8, CodecError> {
        let [b] = self.take_n::<1>()?;
        Ok(b)
    }

    fn read_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_n()?))
    }

    fn read_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_n()?))
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let n = self.read_u64()?;
        if n > self.input.len() as u64 {
            // A length can never exceed the bytes that remain: each element
            // takes at least one byte only for byte-ish data, but even for
            // zero-sized elements this guards against absurd prefixes.
            if n > (1 << 32) {
                return Err(CodecError::BadLength(n));
            }
        }
        Ok(n as usize)
    }
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("deserialize_any on a non-self-describing format"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => v.visit_bool(false),
            1 => v.visit_bool(true),
            b => Err(CodecError::BadBool(b)),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_i8(self.read_u8()? as i8)
    }
    fn deserialize_i16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_i16(i16::from_le_bytes(self.take_n()?))
    }
    fn deserialize_i32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_i32(i32::from_le_bytes(self.take_n()?))
    }
    fn deserialize_i64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_i64(i64::from_le_bytes(self.take_n()?))
    }
    fn deserialize_u8<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_u8(self.read_u8()?)
    }
    fn deserialize_u16<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_u16(u16::from_le_bytes(self.take_n()?))
    }
    fn deserialize_u32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_u32(self.read_u32()?)
    }
    fn deserialize_u64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_u64(self.read_u64()?)
    }
    fn deserialize_f32<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_f32(f32::from_le_bytes(self.take_n()?))
    }
    fn deserialize_f64<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_f64(f64::from_le_bytes(self.take_n()?))
    }
    fn deserialize_char<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        let c = self.read_u32()?;
        v.visit_char(char::from_u32(c).ok_or(CodecError::BadChar(c))?)
    }
    fn deserialize_str<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        let bytes = self.take(len)?;
        v.visit_borrowed_str(std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?)
    }
    fn deserialize_string<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(v)
    }
    fn deserialize_bytes<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        v.visit_borrowed_bytes(self.take(len)?)
    }
    fn deserialize_byte_buf<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(v)
    }
    fn deserialize_option<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        match self.read_u8()? {
            0 => v.visit_none(),
            1 => v.visit_some(self),
            b => Err(CodecError::BadOptionTag(b)),
        }
    }
    fn deserialize_unit<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        v.visit_unit()
    }
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        v: V,
    ) -> Result<V::Value, CodecError> {
        v.visit_unit()
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        v: V,
    ) -> Result<V::Value, CodecError> {
        v.visit_newtype_struct(self)
    }
    fn deserialize_seq<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        self.deserialize_counted(len, v)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, len: usize, v: V) -> Result<V::Value, CodecError> {
        self.deserialize_counted(len, v)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        v: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_counted(len, v)
    }
    fn deserialize_map<V: Visitor<'de>>(self, v: V) -> Result<V::Value, CodecError> {
        let len = self.read_len()?;
        v.visit_map(CountedAccess { de: self, remaining: len })
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        v: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_counted(fields.len(), v)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        v: V,
    ) -> Result<V::Value, CodecError> {
        v.visit_enum(EnumAccess { de: self })
    }
    fn deserialize_identifier<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("identifiers are not encoded"))
    }
    fn deserialize_ignored_any<V: Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Unsupported("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

impl<'de> BinDeserializer<'de> {
    fn deserialize_counted<V: Visitor<'de>>(
        &mut self,
        len: usize,
        v: V,
    ) -> Result<V::Value, CodecError> {
        v.visit_seq(CountedAccess { de: self, remaining: len })
    }
}

struct CountedAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let idx = self.de.read_u32()?;
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: Visitor<'de>>(self, len: usize, v: V) -> Result<V::Value, CodecError> {
        self.de.deserialize_counted(len, v)
    }
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        v: V,
    ) -> Result<V::Value, CodecError> {
        self.de.deserialize_counted(fields.len(), v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: &T) {
        let bytes = to_bytes(v).expect("encode");
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Flat {
        a: u8,
        b: i64,
        c: f64,
        d: bool,
        e: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u16, u16),
        Struct { x: f32, name: String },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        items: Vec<Shape>,
        map: BTreeMap<String, Option<u64>>,
        pair: (i8, char),
        blob: Vec<u8>,
        unit: (),
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&i64::MIN);
        roundtrip(&-1i32);
        roundtrip(&2.25f64);
        roundtrip(&f64::NEG_INFINITY);
        roundtrip(&true);
        roundtrip(&'λ');
        roundtrip(&String::from("多radio MANET"));
    }

    #[test]
    fn struct_roundtrip() {
        roundtrip(&Flat { a: 7, b: -42, c: 2.5, d: true, e: "hello".into() });
    }

    #[test]
    fn enum_variants_roundtrip() {
        roundtrip(&Shape::Unit);
        roundtrip(&Shape::Newtype(99));
        roundtrip(&Shape::Tuple(1, 2));
        roundtrip(&Shape::Struct { x: 1.5, name: "n".into() });
    }

    #[test]
    fn nested_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), Some(1));
        map.insert("b".to_string(), None);
        roundtrip(&Nested {
            items: vec![Shape::Unit, Shape::Tuple(3, 4), Shape::Newtype(0)],
            map,
            pair: (-5, 'x'),
            blob: vec![0, 255, 128],
            unit: (),
        });
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(&Option::<u32>::None);
        roundtrip(&Some(17u32));
        roundtrip(&Some(Some(false)));
        roundtrip(&Option::<Option<bool>>::Some(None));
    }

    #[test]
    fn empty_collections() {
        roundtrip(&Vec::<u64>::new());
        roundtrip(&BTreeMap::<String, u8>::new());
        roundtrip(&String::new());
    }

    #[test]
    fn core_types_roundtrip() {
        use poem_core::{ChannelId, EmuTime, NodeId, PacketId};
        roundtrip(&NodeId(3));
        roundtrip(&ChannelId(2));
        roundtrip(&PacketId(u64::MAX));
        roundtrip(&EmuTime::from_millis(123));
        let pkt = poem_core::EmuPacket::new(
            PacketId(1),
            NodeId(1),
            poem_core::packet::Destination::Broadcast,
            ChannelId(2),
            poem_core::RadioId(0),
            EmuTime::from_micros(5),
            vec![1u8, 2, 3],
        );
        roundtrip(&pkt);
    }

    #[test]
    fn truncated_input_is_eof() {
        let bytes = to_bytes(&Flat { a: 1, b: 2, c: 3.0, d: false, e: "abc".into() }).unwrap();
        for cut in 0..bytes.len() {
            let err = from_bytes::<Flat>(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, CodecError::Eof | CodecError::BadLength(_)), "cut {cut}: {err}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&42u32).unwrap();
        bytes.push(0xFF);
        assert_eq!(from_bytes::<u32>(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_rejected() {
        assert_eq!(from_bytes::<bool>(&[2]), Err(CodecError::BadBool(2)));
    }

    #[test]
    fn bad_option_tag_rejected() {
        assert_eq!(from_bytes::<Option<u8>>(&[7, 0]), Err(CodecError::BadOptionTag(7)));
    }

    #[test]
    fn bad_utf8_rejected() {
        // len=1, byte 0xFF.
        let bytes = [1, 0, 0, 0, 0, 0, 0, 0, 0xFF];
        assert_eq!(from_bytes::<String>(&bytes), Err(CodecError::BadUtf8));
    }

    #[test]
    fn bad_char_rejected() {
        let bytes = 0xD800u32.to_le_bytes();
        assert_eq!(from_bytes::<char>(&bytes), Err(CodecError::BadChar(0xD800)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Vec<u8> claiming u64::MAX elements.
        let bytes = u64::MAX.to_le_bytes();
        let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::BadLength(_) | CodecError::Eof), "{err}");
    }

    #[test]
    fn unknown_enum_variant_rejected() {
        let bytes = 999u32.to_le_bytes();
        assert!(from_bytes::<Shape>(&bytes).is_err());
    }

    #[test]
    fn encoding_is_deterministic_and_compact() {
        let v = Flat { a: 1, b: 2, c: 3.0, d: true, e: "xy".into() };
        let b1 = to_bytes(&v).unwrap();
        let b2 = to_bytes(&v).unwrap();
        assert_eq!(b1, b2);
        // 1 + 8 + 8 + 1 + (8 + 2) = 28 bytes.
        assert_eq!(b1.len(), 28);
    }
}
