//! Client↔server message sets.
//!
//! The protocol is deliberately small — PoEm clients only ever (1) register
//! as a VMN, (2) run the Fig. 5 clock-sync handshake, (3) ship time-stamped
//! traffic, and (4) leave; the server (1) acknowledges registration,
//! (2) answers sync requests, (3) delivers forwarded traffic, and
//! (4) announces shutdown.

use poem_core::scene::SceneOp;
use poem_core::{EmuPacket, EmuTime, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Current protocol version; bumped on any wire-incompatible change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Messages flowing client → server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Registration: the client claims a VMN identity. First message on
    /// every connection.
    Hello {
        /// Protocol version spoken by the client.
        version: u16,
        /// The VMN this client embodies.
        node: NodeId,
    },
    /// Step 1 of the Fig. 5 handshake: carries the client's local send
    /// time `t_c1`.
    SyncRequest {
        /// Client clock at send time.
        t_c1: EmuTime,
    },
    /// An emulated packet, already time-stamped by the client
    /// (`packet.sent_at` — the parallel time-stamping).
    Data(EmuPacket),
    /// Graceful disconnect.
    Bye,
    /// Registration of a *multiplexed* connection: the client carries
    /// many VMN identities over this one socket, attached individually
    /// with [`ClientMsg::Attach`]. Appended after the v1 variants so the
    /// wire encoding of every legacy message is unchanged.
    MuxHello {
        /// Protocol version spoken by the client.
        version: u16,
    },
    /// Mux connections only: open a virtual session for `node` on this
    /// socket. Answered in FIFO order by [`ServerMsg::Attached`] or
    /// [`ServerMsg::AttachRefused`].
    Attach {
        /// The VMN to embody.
        node: NodeId,
    },
    /// Mux connections only: close `node`'s virtual session. Answered by
    /// [`ServerMsg::Detached`].
    Detach {
        /// The VMN to release.
        node: NodeId,
    },
}

/// Messages flowing server → client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Registration accepted.
    Welcome {
        /// Protocol version spoken by the server.
        version: u16,
        /// Echo of the registered VMN id.
        node: NodeId,
        /// Server clock at acceptance (informational; clients synchronize
        /// properly via the handshake).
        server_time: EmuTime,
    },
    /// Registration rejected (duplicate VMN, unknown VMN, bad version).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// Step 3 of the Fig. 5 handshake: carries the server reply time
    /// `t_s3` and the echo term `t_c1 + t_s3 − t_s2`.
    SyncReply {
        /// Server clock at reply time.
        t_s3: EmuTime,
        /// `t_c1 + t_s3 − t_s2` as computed by the server.
        echo: EmuTime,
    },
    /// A forwarded packet delivered to this client.
    Deliver {
        /// The packet (original client timestamp preserved).
        packet: EmuPacket,
        /// Server emulation time at which the forward fired (§3.2 step 6).
        forwarded_at: EmuTime,
    },
    /// The emulation is over; the client should disconnect.
    Shutdown,
    /// A [`ClientMsg::MuxHello`] was accepted; the socket is now a mux
    /// connection awaiting [`ClientMsg::Attach`] requests. Appended after
    /// the v1 variants so the wire encoding of every legacy message is
    /// unchanged.
    MuxWelcome {
        /// Protocol version spoken by the server.
        version: u16,
        /// Server clock at acceptance (informational).
        server_time: EmuTime,
    },
    /// A virtual session opened (answers [`ClientMsg::Attach`] in FIFO
    /// order).
    Attached {
        /// Echo of the attached VMN id.
        node: NodeId,
        /// Server clock at acceptance (informational).
        server_time: EmuTime,
    },
    /// A virtual session was refused (duplicate VMN, unknown VMN).
    AttachRefused {
        /// Echo of the requested VMN id.
        node: NodeId,
        /// Human-readable reason.
        reason: String,
    },
    /// A virtual session closed — answering a [`ClientMsg::Detach`] or
    /// announcing a server-side eviction (disconnect fault, slow
    /// consumer). The socket itself stays up.
    Detached {
        /// The released VMN.
        node: NodeId,
        /// Human-readable reason (`"detached"` for client-requested).
        reason: String,
    },
    /// A forwarded packet delivered to one virtual session of a mux
    /// connection (the mux counterpart of [`ServerMsg::Deliver`]).
    DeliverTo {
        /// The receiving VMN (which virtual session this copy is for).
        to: NodeId,
        /// The packet (original client timestamp preserved).
        packet: EmuPacket,
        /// Server emulation time at which the forward fired.
        forwarded_at: EmuTime,
    },
}

/// Per-target outcome of a worker-side forwarding decision, as shipped
/// back to the cluster coordinator. Mirrors the pipeline's
/// `ForwardDecision` plus the unreachable case, with the forward time
/// already resolved to an absolute instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireDecision {
    /// Deliver a copy to the target when the emulation clock reaches
    /// `fire_at` (client stamp + serialization + model delay).
    Forward {
        /// Absolute forward time.
        fire_at: EmuTime,
    },
    /// The per-packet loss Bernoulli said drop.
    Loss,
    /// No usable link to the target (out of range, wrong channel, or a
    /// unicast destination that is not a neighbor).
    NoRoute,
}

/// One target's outcome within a [`PacketDecisions`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetDecision {
    /// The would-be receiver.
    pub to: NodeId,
    /// What happened to its copy.
    pub decision: WireDecision,
}

/// Every decision for one packet of a [`ClusterMsg::Batch`], in the
/// scene's canonical target order (ascending node id) so the coordinator
/// can replay them into the record log in the exact single-process order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketDecisions {
    /// Index of the packet within the batch that carried it.
    pub idx: u32,
    /// Per-target outcomes. Empty for a broadcast with no neighbors; a
    /// single `NoRoute` entry for an unreachable unicast.
    pub targets: Vec<TargetDecision>,
}

/// Messages flowing coordinator ↔ shard worker (`poem-shardd`), framed
/// exactly like the client protocol. The coordinator remains the single
/// authority for the scene and the record log; workers hold a mirror of
/// their members (owned nodes plus halo) and compute pure per-packet
/// forwarding decisions against it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClusterMsg {
    /// Coordinator → worker: run parameters. First message on every
    /// worker connection.
    Assign {
        /// Protocol version spoken by the coordinator.
        version: u16,
        /// This worker's shard index.
        shard: u32,
        /// Total shard count.
        shards: u32,
        /// Scenario seed (feeds the worker's profile book).
        seed: u64,
        /// Base of the per-packet decision RNG stream
        /// (`poem_core::rng::decide_rng`).
        decide_base: u64,
        /// Profile library text, when the scenario installed one.
        profiles: Option<String>,
    },
    /// Coordinator → worker: a scene operation for the worker's mirror
    /// (only ops touching the worker's members are sent).
    Op {
        /// Scenario time of the operation.
        at: EmuTime,
        /// The operation.
        op: SceneOp,
    },
    /// Coordinator → worker: membership delta — nodes entering the
    /// worker's mirror (as `AddNode`/`SetLinkProfile` ops) and nodes
    /// leaving it.
    HaloUpdate {
        /// Scenario time of the update.
        at: EmuTime,
        /// Ops materializing the entering nodes.
        enter: Vec<SceneOp>,
        /// Nodes leaving the mirror.
        leave: Vec<NodeId>,
    },
    /// Coordinator → worker: decide these packets (their senders are
    /// owned by this shard).
    Batch {
        /// Server receipt time of the batch.
        received_at: EmuTime,
        /// `(index within the coordinator batch, packet)` pairs.
        pkts: Vec<(u32, EmuPacket)>,
    },
    /// Worker → coordinator: the decisions for one [`ClusterMsg::Batch`].
    BatchResult {
        /// One entry per batch packet, in batch order.
        results: Vec<PacketDecisions>,
    },
    /// Coordinator → worker: a copy of a packet decided by *another*
    /// shard is headed for a node this worker owns (the cross-shard
    /// forwarding path). Informational — delivery itself is scheduled by
    /// the coordinator — but keeps per-shard traffic accounting exact.
    Forward {
        /// The forwarded packet.
        id: PacketId,
        /// The receiving node (owned by this worker).
        to: NodeId,
        /// When the copy fires.
        fire_at: EmuTime,
    },
    /// Coordinator → worker: end of a lockstep epoch; the worker replies
    /// [`ClusterMsg::BarrierAck`] once everything before it is applied.
    Barrier {
        /// Epoch number (monotonic).
        epoch: u64,
    },
    /// Worker → coordinator: barrier acknowledged — everything the
    /// coordinator sent before the barrier has been applied.
    BarrierAck {
        /// Echoed epoch number.
        epoch: u64,
        /// The acknowledging shard.
        shard: u32,
    },
    /// Worker → coordinator: per-shard counters, sent just before each
    /// barrier ack so the coordinator's gauges stay fresh at epoch
    /// granularity. (Ownership vs halo split is the coordinator's
    /// knowledge; the worker only sees its member mirror.)
    Metrics {
        /// Reporting shard.
        shard: u32,
        /// Packets decided since assignment.
        decided: u64,
        /// Cross-shard forwards received since assignment.
        forwards_in: u64,
        /// Nodes currently in the worker's mirror (owned + halo).
        member_nodes: u64,
    },
    /// Coordinator → worker: the run is over; exit cleanly.
    Shutdown,
}

impl ClientMsg {
    /// Builds the registration message for `node`.
    pub fn hello(node: NodeId) -> Self {
        ClientMsg::Hello { version: PROTOCOL_VERSION, node }
    }

    /// Builds the registration message for a multiplexed connection.
    pub fn mux_hello() -> Self {
        ClientMsg::MuxHello { version: PROTOCOL_VERSION }
    }
}

impl ServerMsg {
    /// Computes the [`ServerMsg::SyncReply`] for a request per the Fig. 5
    /// arithmetic: given `t_c1` (from the request), `t_s2` (server receive
    /// time) and `t_s3` (now), echo is `t_c1 + t_s3 − t_s2`.
    pub fn sync_reply(t_c1: EmuTime, t_s2: EmuTime, t_s3: EmuTime) -> Self {
        let echo = t_c1 + (t_s3 - t_s2);
        ServerMsg::SyncReply { t_s3, echo }
    }
}

/// Client-side completion of the handshake (steps 5–6): given the reply
/// and the local receive time `t_c4`, returns the estimated server time
/// `t_s4` and the offset to apply to the local emulation clock.
pub fn finish_sync(
    reply_t_s3: EmuTime,
    reply_echo: EmuTime,
    t_c4: EmuTime,
) -> (EmuTime, poem_core::EmuDuration) {
    let t_d = (t_c4 - reply_echo) / 2;
    let t_s4 = reply_t_s3 + t_d;
    (t_s4, t_s4 - t_c4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use poem_core::clock::sync::{simulate_handshake, SyncSample};
    use poem_core::{ChannelId, EmuDuration, PacketId, RadioId};

    #[test]
    fn client_messages_roundtrip() {
        let msgs = vec![
            ClientMsg::hello(NodeId(4)),
            ClientMsg::SyncRequest { t_c1: EmuTime::from_millis(3) },
            ClientMsg::Data(EmuPacket::new(
                PacketId(9),
                NodeId(4),
                poem_core::packet::Destination::Unicast(NodeId(2)),
                ChannelId(1),
                RadioId(0),
                EmuTime::from_micros(77),
                vec![9u8; 64],
            )),
            ClientMsg::Bye,
            ClientMsg::mux_hello(),
            ClientMsg::Attach { node: NodeId(7) },
            ClientMsg::Detach { node: NodeId(7) },
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            assert_eq!(from_bytes::<ClientMsg>(&bytes).unwrap(), m);
        }
    }

    /// The mux extension appends variants; the v1 wire encodings must not
    /// shift (a v1 client decodes a reactor server's legacy replies).
    #[test]
    fn legacy_variant_indexes_are_stable() {
        // Enum variants encode as a little-endian u32 index prefix.
        assert_eq!(to_bytes(&ClientMsg::Bye).unwrap()[..4], 3u32.to_le_bytes());
        assert_eq!(to_bytes(&ClientMsg::mux_hello()).unwrap()[..4], 4u32.to_le_bytes());
        assert_eq!(to_bytes(&ServerMsg::Shutdown).unwrap()[..4], 4u32.to_le_bytes());
        assert_eq!(
            to_bytes(&ServerMsg::MuxWelcome {
                version: PROTOCOL_VERSION,
                server_time: EmuTime::ZERO
            })
            .unwrap()[..4],
            5u32.to_le_bytes()
        );
    }

    #[test]
    fn server_messages_roundtrip() {
        let msgs = vec![
            ServerMsg::Welcome {
                version: PROTOCOL_VERSION,
                node: NodeId(1),
                server_time: EmuTime::from_secs(5),
            },
            ServerMsg::Refused { reason: "duplicate VMN1".into() },
            ServerMsg::SyncReply { t_s3: EmuTime::from_secs(1), echo: EmuTime::from_secs(2) },
            ServerMsg::Deliver {
                packet: EmuPacket::new(
                    PacketId(1),
                    NodeId(2),
                    poem_core::packet::Destination::Broadcast,
                    ChannelId(3),
                    RadioId(1),
                    EmuTime::from_millis(1),
                    vec![0u8; 16],
                ),
                forwarded_at: EmuTime::from_millis(2),
            },
            ServerMsg::Shutdown,
            ServerMsg::MuxWelcome {
                version: PROTOCOL_VERSION,
                server_time: EmuTime::from_millis(4),
            },
            ServerMsg::Attached { node: NodeId(6), server_time: EmuTime::from_millis(5) },
            ServerMsg::AttachRefused { node: NodeId(6), reason: "duplicate VMN6".into() },
            ServerMsg::Detached { node: NodeId(6), reason: "detached".into() },
            ServerMsg::DeliverTo {
                to: NodeId(6),
                packet: EmuPacket::new(
                    PacketId(2),
                    NodeId(3),
                    poem_core::packet::Destination::Broadcast,
                    ChannelId(1),
                    RadioId(0),
                    EmuTime::from_millis(3),
                    vec![7u8; 8],
                ),
                forwarded_at: EmuTime::from_millis(4),
            },
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            assert_eq!(from_bytes::<ServerMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn cluster_messages_roundtrip() {
        use poem_core::linkmodel::LinkParams;
        use poem_core::mobility::MobilityModel;
        use poem_core::radio::RadioConfig;
        use poem_core::Point;
        let msgs = vec![
            ClusterMsg::Assign {
                version: PROTOCOL_VERSION,
                shard: 1,
                shards: 4,
                seed: 7,
                decide_base: 0xDEAD_BEEF,
                profiles: Some("profile clean trace\nat 0 loss 0 bps 8e6 delay 0\nend\n".into()),
            },
            ClusterMsg::Op {
                at: EmuTime::from_millis(5),
                op: SceneOp::MoveNode { id: NodeId(3), pos: Point::new(1.0, -2.0) },
            },
            ClusterMsg::HaloUpdate {
                at: EmuTime::from_millis(6),
                enter: vec![SceneOp::AddNode {
                    id: NodeId(9),
                    pos: Point::new(10.0, 20.0),
                    radios: RadioConfig::single(poem_core::ChannelId(2), 120.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                }],
                leave: vec![NodeId(4), NodeId(5)],
            },
            ClusterMsg::Batch {
                received_at: EmuTime::from_millis(9),
                pkts: vec![(
                    2,
                    EmuPacket::new(
                        PacketId(11),
                        NodeId(1),
                        poem_core::packet::Destination::Broadcast,
                        poem_core::ChannelId(1),
                        poem_core::RadioId(0),
                        EmuTime::from_millis(8),
                        vec![3u8; 32],
                    ),
                )],
            },
            ClusterMsg::BatchResult {
                results: vec![PacketDecisions {
                    idx: 2,
                    targets: vec![
                        TargetDecision {
                            to: NodeId(2),
                            decision: WireDecision::Forward { fire_at: EmuTime::from_millis(9) },
                        },
                        TargetDecision { to: NodeId(3), decision: WireDecision::Loss },
                        TargetDecision { to: NodeId(4), decision: WireDecision::NoRoute },
                    ],
                }],
            },
            ClusterMsg::Forward {
                id: PacketId(11),
                to: NodeId(6),
                fire_at: EmuTime::from_millis(10),
            },
            ClusterMsg::Barrier { epoch: 3 },
            ClusterMsg::BarrierAck { epoch: 3, shard: 1 },
            ClusterMsg::Metrics { shard: 1, decided: 40, forwards_in: 2, member_nodes: 25 },
            ClusterMsg::Shutdown,
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            assert_eq!(from_bytes::<ClusterMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn sync_reply_matches_paper_arithmetic() {
        let t_c1 = EmuTime::from_millis(100);
        let t_s2 = EmuTime::from_millis(500);
        let t_s3 = EmuTime::from_millis(502);
        match ServerMsg::sync_reply(t_c1, t_s2, t_s3) {
            ServerMsg::SyncReply { t_s3: s3, echo } => {
                assert_eq!(s3, t_s3);
                assert_eq!(echo, EmuTime::from_millis(102)); // t_c1 + (t_s3 - t_s2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finish_sync_agrees_with_core_solver() {
        let sample: SyncSample = simulate_handshake(
            EmuTime::from_secs(10),
            EmuTime::from_secs(90),
            EmuDuration::from_millis(7),
            EmuDuration::from_millis(7),
            EmuDuration::from_millis(1),
        );
        let core = sample.solve();
        // The wire path: server computes the echo; client finishes.
        let echo = sample.t_c1 + (sample.t_s3 - sample.t_s2);
        let (t_s4, offset) = finish_sync(sample.t_s3, echo, sample.t_c4);
        assert_eq!(t_s4, core.estimated_server_now);
        assert_eq!(offset, core.offset);
    }
}
