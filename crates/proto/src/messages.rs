//! Client↔server message sets.
//!
//! The protocol is deliberately small — PoEm clients only ever (1) register
//! as a VMN, (2) run the Fig. 5 clock-sync handshake, (3) ship time-stamped
//! traffic, and (4) leave; the server (1) acknowledges registration,
//! (2) answers sync requests, (3) delivers forwarded traffic, and
//! (4) announces shutdown.

use poem_core::{EmuPacket, EmuTime, NodeId};
use serde::{Deserialize, Serialize};

/// Current protocol version; bumped on any wire-incompatible change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Messages flowing client → server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientMsg {
    /// Registration: the client claims a VMN identity. First message on
    /// every connection.
    Hello {
        /// Protocol version spoken by the client.
        version: u16,
        /// The VMN this client embodies.
        node: NodeId,
    },
    /// Step 1 of the Fig. 5 handshake: carries the client's local send
    /// time `t_c1`.
    SyncRequest {
        /// Client clock at send time.
        t_c1: EmuTime,
    },
    /// An emulated packet, already time-stamped by the client
    /// (`packet.sent_at` — the parallel time-stamping).
    Data(EmuPacket),
    /// Graceful disconnect.
    Bye,
}

/// Messages flowing server → client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServerMsg {
    /// Registration accepted.
    Welcome {
        /// Protocol version spoken by the server.
        version: u16,
        /// Echo of the registered VMN id.
        node: NodeId,
        /// Server clock at acceptance (informational; clients synchronize
        /// properly via the handshake).
        server_time: EmuTime,
    },
    /// Registration rejected (duplicate VMN, unknown VMN, bad version).
    Refused {
        /// Human-readable reason.
        reason: String,
    },
    /// Step 3 of the Fig. 5 handshake: carries the server reply time
    /// `t_s3` and the echo term `t_c1 + t_s3 − t_s2`.
    SyncReply {
        /// Server clock at reply time.
        t_s3: EmuTime,
        /// `t_c1 + t_s3 − t_s2` as computed by the server.
        echo: EmuTime,
    },
    /// A forwarded packet delivered to this client.
    Deliver {
        /// The packet (original client timestamp preserved).
        packet: EmuPacket,
        /// Server emulation time at which the forward fired (§3.2 step 6).
        forwarded_at: EmuTime,
    },
    /// The emulation is over; the client should disconnect.
    Shutdown,
}

impl ClientMsg {
    /// Builds the registration message for `node`.
    pub fn hello(node: NodeId) -> Self {
        ClientMsg::Hello { version: PROTOCOL_VERSION, node }
    }
}

impl ServerMsg {
    /// Computes the [`ServerMsg::SyncReply`] for a request per the Fig. 5
    /// arithmetic: given `t_c1` (from the request), `t_s2` (server receive
    /// time) and `t_s3` (now), echo is `t_c1 + t_s3 − t_s2`.
    pub fn sync_reply(t_c1: EmuTime, t_s2: EmuTime, t_s3: EmuTime) -> Self {
        let echo = t_c1 + (t_s3 - t_s2);
        ServerMsg::SyncReply { t_s3, echo }
    }
}

/// Client-side completion of the handshake (steps 5–6): given the reply
/// and the local receive time `t_c4`, returns the estimated server time
/// `t_s4` and the offset to apply to the local emulation clock.
pub fn finish_sync(
    reply_t_s3: EmuTime,
    reply_echo: EmuTime,
    t_c4: EmuTime,
) -> (EmuTime, poem_core::EmuDuration) {
    let t_d = (t_c4 - reply_echo) / 2;
    let t_s4 = reply_t_s3 + t_d;
    (t_s4, t_s4 - t_c4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{from_bytes, to_bytes};
    use poem_core::clock::sync::{simulate_handshake, SyncSample};
    use poem_core::{ChannelId, EmuDuration, PacketId, RadioId};

    #[test]
    fn client_messages_roundtrip() {
        let msgs = vec![
            ClientMsg::hello(NodeId(4)),
            ClientMsg::SyncRequest { t_c1: EmuTime::from_millis(3) },
            ClientMsg::Data(EmuPacket::new(
                PacketId(9),
                NodeId(4),
                poem_core::packet::Destination::Unicast(NodeId(2)),
                ChannelId(1),
                RadioId(0),
                EmuTime::from_micros(77),
                vec![9u8; 64],
            )),
            ClientMsg::Bye,
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            assert_eq!(from_bytes::<ClientMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn server_messages_roundtrip() {
        let msgs = vec![
            ServerMsg::Welcome {
                version: PROTOCOL_VERSION,
                node: NodeId(1),
                server_time: EmuTime::from_secs(5),
            },
            ServerMsg::Refused { reason: "duplicate VMN1".into() },
            ServerMsg::SyncReply { t_s3: EmuTime::from_secs(1), echo: EmuTime::from_secs(2) },
            ServerMsg::Deliver {
                packet: EmuPacket::new(
                    PacketId(1),
                    NodeId(2),
                    poem_core::packet::Destination::Broadcast,
                    ChannelId(3),
                    RadioId(1),
                    EmuTime::from_millis(1),
                    vec![0u8; 16],
                ),
                forwarded_at: EmuTime::from_millis(2),
            },
            ServerMsg::Shutdown,
        ];
        for m in msgs {
            let bytes = to_bytes(&m).unwrap();
            assert_eq!(from_bytes::<ServerMsg>(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn sync_reply_matches_paper_arithmetic() {
        let t_c1 = EmuTime::from_millis(100);
        let t_s2 = EmuTime::from_millis(500);
        let t_s3 = EmuTime::from_millis(502);
        match ServerMsg::sync_reply(t_c1, t_s2, t_s3) {
            ServerMsg::SyncReply { t_s3: s3, echo } => {
                assert_eq!(s3, t_s3);
                assert_eq!(echo, EmuTime::from_millis(102)); // t_c1 + (t_s3 - t_s2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finish_sync_agrees_with_core_solver() {
        let sample: SyncSample = simulate_handshake(
            EmuTime::from_secs(10),
            EmuTime::from_secs(90),
            EmuDuration::from_millis(7),
            EmuDuration::from_millis(7),
            EmuDuration::from_millis(1),
        );
        let core = sample.solve();
        // The wire path: server computes the echo; client finishes.
        let echo = sample.t_c1 + (sample.t_s3 - sample.t_s2);
        let (t_s4, offset) = finish_sync(sample.t_s3, echo, sample.t_c4);
        assert_eq!(t_s4, core.estimated_server_now);
        assert_eq!(offset, core.offset);
    }
}
