//! # poem-proto — the PoEm client↔server wire protocol
//!
//! PoEm's portability claim rests on using nothing below TCP/IP: "both the
//! server software and the client software can run on any hardware platform
//! since they are connected through TCP/IP connections independent of low
//! layers" (§3.1). This crate is that connection layer:
//!
//! * [`codec`] — a compact, non-self-describing binary serde format
//!   (fixed-width little-endian scalars, length-prefixed sequences)
//!   implemented from scratch; every message and record in the workspace is
//!   encoded with it.
//! * [`messages`] — the client→server and server→client message sets,
//!   including the Fig. 5 clock-synchronization handshake.
//! * [`framing`] — length-prefixed frames over any byte stream, with a
//!   non-blocking feed-style decoder for stream reassembly.
//! * [`pipe`] — an in-memory blocking byte pipe implementing
//!   `Read`/`Write`, so the full framing+codec path can be exercised
//!   without sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod framing;
pub mod messages;
pub mod pipe;

pub use codec::{from_bytes, to_bytes, CodecError};
pub use framing::{encode_frame, FrameDecoder, MsgReader, MsgWriter, MAX_FRAME_LEN};
pub use messages::{
    ClientMsg, ClusterMsg, PacketDecisions, ServerMsg, TargetDecision, WireDecision,
    PROTOCOL_VERSION,
};
