//! Deterministic fault injection for the PoEm emulator.
//!
//! PoEm's pitch is testing real protocol stacks under *hostile* radio
//! conditions; this crate supplies the hostility. A [`FaultPlan`] is a
//! time-ordered schedule of typed faults spanning four layers:
//!
//! * **wire** — byte corruption, truncation, duplication and reordering of
//!   the client↔server byte stream ([`ChaosReader`]/[`ChaosWriter`] wrap
//!   any `Read`/`Write`, including `poem-proto`'s in-memory pipes and a
//!   `TcpStream`; the deterministic sim harness applies the same faults at
//!   the packet level).
//! * **transport** — client disconnect, stall, and slow readers with
//!   bounded buffers.
//! * **scene** — link flap (shrink/restore range), node crash/restart and
//!   per-channel jamming, expressed through the existing `SceneOp`
//!   vocabulary so multi-radio jamming exercises the channel-indexed
//!   neighbor tables.
//! * **clock** — skew and jitter injected into a client's view of time
//!   ([`ChaosClock`]), which the Fig. 5 sync rounds must then absorb.
//!
//! Every random draw comes from an [`poem_core::EmuRng`] stream derived
//! from the scenario seed via [`chaos_rng`], isolated from the pipeline's
//! own stream, so installing a plan never perturbs loss or mobility draws
//! and two runs of the same script + plan + seed are byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod engine;
pub mod plan;
pub mod wire;

pub use clock::ChaosClock;
pub use engine::{crash_legs, flap_legs, jam_legs, ChaosMetrics};
pub use plan::{FaultKind, FaultPlan, FaultSpec};
pub use wire::{ChaosReader, ChaosWriter, WireFaultHub, WireFaults};

use poem_core::EmuRng;

/// Salt mixed into the scenario seed to derive the chaos RNG stream.
///
/// The pipeline consumes `EmuRng::seed(seed)` itself; deriving the chaos
/// stream from `seed ^ CHAOS_STREAM` keeps fault draws off the pipeline's
/// sequence, so a plan with zero-probability faults is behaviorally
/// identical to no plan at all.
pub const CHAOS_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// The chaos RNG stream for a scenario seed (see [`CHAOS_STREAM`]).
pub fn chaos_rng(seed: u64) -> EmuRng {
    EmuRng::seed(seed ^ CHAOS_STREAM)
}
