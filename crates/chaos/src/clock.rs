//! Clock-layer faults: skew and jitter on a client's view of time.
//!
//! [`ChaosClock`] wraps any [`Clock`] and perturbs `now()` reads with a
//! constant skew plus `|N(0, σ)|` jitter. Handing one to an `EmuClient`
//! makes its parallel time-stamping and Fig. 5 sync rounds operate on
//! faulty time — exactly the condition the synchronization scheme exists
//! to absorb. `adjust` passes through to the inner clock, so a sync round
//! still corrects the underlying clock while the skew persists.

use parking_lot::Mutex;
use poem_core::clock::Clock;
use poem_core::{EmuDuration, EmuRng, EmuTime};
use std::sync::Arc;

struct ClockState {
    skew: EmuDuration,
    jitter_std: EmuDuration,
    rng: EmuRng,
}

/// A [`Clock`] decorator injecting deterministic skew and jitter.
pub struct ChaosClock {
    inner: Arc<dyn Clock>,
    state: Mutex<ClockState>,
}

impl ChaosClock {
    /// Wraps `inner`; starts faultless.
    pub fn new(inner: Arc<dyn Clock>, rng: EmuRng) -> Self {
        ChaosClock {
            inner,
            state: Mutex::new(ClockState {
                skew: EmuDuration::ZERO,
                jitter_std: EmuDuration::ZERO,
                rng,
            }),
        }
    }

    /// Sets the constant offset added to every read (may be negative;
    /// reads saturate at the epoch).
    pub fn set_skew(&self, skew: EmuDuration) {
        self.state.lock().skew = skew;
    }

    /// Sets the jitter standard deviation (`ZERO` disables jitter).
    pub fn set_jitter(&self, std_dev: EmuDuration) {
        self.state.lock().jitter_std = std_dev;
    }

    /// The current skew.
    pub fn skew(&self) -> EmuDuration {
        self.state.lock().skew
    }
}

impl Clock for ChaosClock {
    fn now(&self) -> EmuTime {
        let mut st = self.state.lock();
        let mut t = self.inner.now() + st.skew;
        let std_ns = st.jitter_std.as_nanos();
        if std_ns > 0 {
            let j = st.rng.gaussian(0.0, std_ns as f64).abs();
            t += EmuDuration::from_nanos(j as i64);
        }
        t
    }

    fn adjust(&self, offset: EmuDuration) {
        self.inner.adjust(offset);
    }
}

impl std::fmt::Debug for ChaosClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("ChaosClock")
            .field("skew", &st.skew)
            .field("jitter_std", &st.jitter_std)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::clock::VirtualClock;

    #[test]
    fn skew_shifts_reads_without_touching_inner() {
        let inner = Arc::new(VirtualClock::starting_at(EmuTime::from_secs(10)));
        let chaos = ChaosClock::new(inner.clone(), EmuRng::seed(1));
        assert_eq!(chaos.now(), EmuTime::from_secs(10));
        chaos.set_skew(EmuDuration::from_millis(250));
        assert_eq!(chaos.now(), EmuTime::from_millis(10_250));
        chaos.set_skew(EmuDuration::from_millis(-250));
        assert_eq!(chaos.now(), EmuTime::from_millis(9_750));
        assert_eq!(inner.now(), EmuTime::from_secs(10));
    }

    #[test]
    fn negative_skew_saturates_at_epoch() {
        let chaos = ChaosClock::new(Arc::new(VirtualClock::new()), EmuRng::seed(2));
        chaos.set_skew(EmuDuration::from_secs(-5));
        assert_eq!(chaos.now(), EmuTime::ZERO);
    }

    #[test]
    fn jitter_is_nonnegative_and_seed_deterministic() {
        let reads = |seed| {
            let chaos =
                ChaosClock::new(Arc::new(VirtualClock::starting_at(EmuTime::from_secs(1))), {
                    EmuRng::seed(seed)
                });
            chaos.set_jitter(EmuDuration::from_millis(2));
            (0..16).map(|_| chaos.now()).collect::<Vec<_>>()
        };
        let a = reads(3);
        assert!(a.iter().all(|&t| t >= EmuTime::from_secs(1)));
        assert!(a.iter().any(|&t| t > EmuTime::from_secs(1)), "jitter never fired");
        assert_eq!(a, reads(3));
    }

    #[test]
    fn adjust_passes_through() {
        let inner = Arc::new(VirtualClock::new());
        let chaos = ChaosClock::new(inner.clone(), EmuRng::seed(4));
        chaos.adjust(EmuDuration::from_secs(3));
        assert_eq!(inner.now(), EmuTime::from_secs(3));
    }
}
