//! The fault taxonomy and time-ordered fault plans.
//!
//! A [`FaultKind`] is one typed fault; a [`FaultPlan`] is a schedule of
//! them. Plans are authored programmatically with [`FaultPlan::push`] or
//! parsed from `fault …` lines of a scenario script (see
//! `poem-server::script`). The kinds map onto the four layers described in
//! the crate docs; [`FaultKind::layer`] and [`FaultKind::name`] give the
//! labels used for metrics and fault records.

use poem_core::{ChannelId, EmuDuration, EmuTime, NodeId, RadioId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One typed fault.
///
/// Probabilities are per-event Bernoulli parameters in `[0, 1]`; setting a
/// wire probability to `0.0` deactivates that wire fault for the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Wire: each frame from `node` has one payload byte flipped with
    /// probability `prob`.
    WireCorrupt {
        /// Affected VMN.
        node: NodeId,
        /// Per-frame corruption probability.
        prob: f64,
    },
    /// Wire: each frame from `node` loses its tail with probability `prob`.
    WireTruncate {
        /// Affected VMN.
        node: NodeId,
        /// Per-frame truncation probability.
        prob: f64,
    },
    /// Wire: each frame from `node` is duplicated with probability `prob`.
    WireDuplicate {
        /// Affected VMN.
        node: NodeId,
        /// Per-frame duplication probability.
        prob: f64,
    },
    /// Wire: each frame from `node` is delayed past its successors with
    /// probability `prob` (observable as delivery reordering).
    WireReorder {
        /// Affected VMN.
        node: NodeId,
        /// Per-frame reorder probability.
        prob: f64,
    },
    /// Transport: `node`'s client connection is severed.
    Disconnect {
        /// Affected VMN.
        node: NodeId,
    },
    /// Transport: `node`'s client stops consuming deliveries for
    /// `duration`; everything buffers (unbounded) and flushes at the end.
    Stall {
        /// Affected VMN.
        node: NodeId,
        /// How long the client is wedged.
        duration: EmuDuration,
    },
    /// Transport: like [`FaultKind::Stall`] but with a bounded buffer of
    /// `buffer` frames — overflow is dropped as a disconnected copy.
    SlowReader {
        /// Affected VMN.
        node: NodeId,
        /// Frames buffered before overflow drops begin.
        buffer: u32,
        /// How long the client reads slowly.
        duration: EmuDuration,
    },
    /// Scene: `node`'s radio range shrinks to `factor ×` its current value
    /// for `duration`, then restores — a link flap.
    LinkFlap {
        /// Affected VMN.
        node: NodeId,
        /// Which radio slot flaps.
        radio: RadioId,
        /// Range multiplier while down (0 = fully dark).
        factor: f64,
        /// Outage length.
        duration: EmuDuration,
    },
    /// Scene: `node` is removed from the scene (and its hosted app, in the
    /// sim harness), optionally re-added `restart_after` later.
    Crash {
        /// Affected VMN.
        node: NodeId,
        /// Delay until restart, or `None` for a permanent crash.
        restart_after: Option<EmuDuration>,
    },
    /// Scene: every radio tuned to `channel` goes dark for `duration` —
    /// per-channel jamming through the channel-indexed neighbor tables.
    Jam {
        /// Jammed channel.
        channel: ChannelId,
        /// Jam length.
        duration: EmuDuration,
    },
    /// Clock: `node`'s clock reads are offset by `offset` (may be
    /// negative) from injection onward.
    ClockSkew {
        /// Affected VMN.
        node: NodeId,
        /// Constant offset applied to clock reads.
        offset: EmuDuration,
    },
    /// Clock: `node`'s clock reads gain `|N(0, std_dev)|` of jitter.
    ClockJitter {
        /// Affected VMN.
        node: NodeId,
        /// Standard deviation of the jitter distribution.
        std_dev: EmuDuration,
    },
}

/// Metric/record label for every fault kind, in declaration order.
pub const KIND_NAMES: &[&str] = &[
    "wire_corrupt",
    "wire_truncate",
    "wire_duplicate",
    "wire_reorder",
    "disconnect",
    "stall",
    "slow_reader",
    "link_flap",
    "crash",
    "jam",
    "clock_skew",
    "clock_jitter",
];

impl FaultKind {
    /// The stable label used for metrics and fault records.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::WireCorrupt { .. } => "wire_corrupt",
            FaultKind::WireTruncate { .. } => "wire_truncate",
            FaultKind::WireDuplicate { .. } => "wire_duplicate",
            FaultKind::WireReorder { .. } => "wire_reorder",
            FaultKind::Disconnect { .. } => "disconnect",
            FaultKind::Stall { .. } => "stall",
            FaultKind::SlowReader { .. } => "slow_reader",
            FaultKind::LinkFlap { .. } => "link_flap",
            FaultKind::Crash { .. } => "crash",
            FaultKind::Jam { .. } => "jam",
            FaultKind::ClockSkew { .. } => "clock_skew",
            FaultKind::ClockJitter { .. } => "clock_jitter",
        }
    }

    /// Which layer the fault acts on: `wire`, `transport`, `scene`, `clock`.
    pub fn layer(&self) -> &'static str {
        match self {
            FaultKind::WireCorrupt { .. }
            | FaultKind::WireTruncate { .. }
            | FaultKind::WireDuplicate { .. }
            | FaultKind::WireReorder { .. } => "wire",
            FaultKind::Disconnect { .. }
            | FaultKind::Stall { .. }
            | FaultKind::SlowReader { .. } => "transport",
            FaultKind::LinkFlap { .. } | FaultKind::Crash { .. } | FaultKind::Jam { .. } => "scene",
            FaultKind::ClockSkew { .. } | FaultKind::ClockJitter { .. } => "clock",
        }
    }

    /// The node the fault targets, when it targets one (jam targets a
    /// channel instead).
    pub fn node(&self) -> Option<NodeId> {
        match self {
            FaultKind::WireCorrupt { node, .. }
            | FaultKind::WireTruncate { node, .. }
            | FaultKind::WireDuplicate { node, .. }
            | FaultKind::WireReorder { node, .. }
            | FaultKind::Disconnect { node }
            | FaultKind::Stall { node, .. }
            | FaultKind::SlowReader { node, .. }
            | FaultKind::LinkFlap { node, .. }
            | FaultKind::Crash { node, .. }
            | FaultKind::ClockSkew { node, .. }
            | FaultKind::ClockJitter { node, .. } => Some(*node),
            FaultKind::Jam { .. } => None,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            Some(n) => write!(f, "{} {n}", self.name()),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// A fault and the time it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// When the fault is injected.
    pub at: EmuTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault; the plan stays time-ordered (stable for equal times,
    /// so insertion order breaks ties deterministically).
    pub fn push(&mut self, at: EmuTime, kind: FaultKind) -> &mut Self {
        self.specs.push(FaultSpec { at, kind });
        self.specs.sort_by_key(|s| s.at);
        self
    }

    /// The time-ordered specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True with no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The last injection time (timed faults may *act* past this; add
    /// their durations when picking a run end).
    pub fn end(&self) -> EmuTime {
        self.specs.last().map(|s| s.at).unwrap_or(EmuTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_stay_time_ordered() {
        let mut p = FaultPlan::new();
        p.push(EmuTime::from_secs(9), FaultKind::Disconnect { node: NodeId(1) });
        p.push(EmuTime::from_secs(2), FaultKind::WireCorrupt { node: NodeId(2), prob: 0.5 });
        p.push(
            EmuTime::from_secs(5),
            FaultKind::Jam { channel: ChannelId(1), duration: EmuDuration::from_secs(1) },
        );
        let times: Vec<EmuTime> = p.specs().iter().map(|s| s.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.end(), EmuTime::from_secs(9));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn names_layers_and_display_agree() {
        let kinds = [
            FaultKind::WireCorrupt { node: NodeId(1), prob: 0.1 },
            FaultKind::WireTruncate { node: NodeId(1), prob: 0.1 },
            FaultKind::WireDuplicate { node: NodeId(1), prob: 0.1 },
            FaultKind::WireReorder { node: NodeId(1), prob: 0.1 },
            FaultKind::Disconnect { node: NodeId(1) },
            FaultKind::Stall { node: NodeId(1), duration: EmuDuration::from_secs(1) },
            FaultKind::SlowReader { node: NodeId(1), buffer: 4, duration: EmuDuration::ZERO },
            FaultKind::LinkFlap {
                node: NodeId(1),
                radio: RadioId(0),
                factor: 0.0,
                duration: EmuDuration::ZERO,
            },
            FaultKind::Crash { node: NodeId(1), restart_after: None },
            FaultKind::Jam { channel: ChannelId(1), duration: EmuDuration::ZERO },
            FaultKind::ClockSkew { node: NodeId(1), offset: EmuDuration::from_millis(5) },
            FaultKind::ClockJitter { node: NodeId(1), std_dev: EmuDuration::from_millis(1) },
        ];
        let names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names, KIND_NAMES);
        for k in &kinds {
            assert!(["wire", "transport", "scene", "clock"].contains(&k.layer()), "{k}");
            assert!(k.to_string().starts_with(k.name()));
        }
        assert_eq!(kinds[9].node(), None);
        assert_eq!(kinds[0].node(), Some(NodeId(1)));
    }

    #[test]
    fn specs_roundtrip_through_codec() {
        let spec = FaultSpec {
            at: EmuTime::from_millis(1500),
            kind: FaultKind::SlowReader {
                node: NodeId(7),
                buffer: 2,
                duration: EmuDuration::from_secs(3),
            },
        };
        let bytes = poem_proto::to_bytes(&spec).unwrap();
        let back: FaultSpec = poem_proto::from_bytes(&bytes).unwrap();
        assert_eq!(back, spec);
    }
}
