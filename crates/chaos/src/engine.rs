//! Per-fault-kind metrics and scene-fault compilation.
//!
//! Scene faults (flap, crash, jam) are not new scene machinery — they
//! *compile* to legs of existing [`SceneOp`]s against the current scene:
//! an injection leg applied at fault time and restore legs applied after
//! the fault's duration. Both the deterministic sim harness and the
//! real-time server driver execute the same legs, which is what keeps the
//! two frontends behaviorally aligned.

use crate::plan::{FaultKind, KIND_NAMES};
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuDuration, EmuTime, NodeId, RadioId};
use poem_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Per-fault-kind injection counters plus an active-fault gauge, exported
/// through `poem-obs` as `poem_faults_injected_total{kind="…"}` and
/// `poem_faults_active`.
#[derive(Clone)]
pub struct ChaosMetrics {
    injected: Vec<(&'static str, Arc<Counter>)>,
    active: Arc<Gauge>,
}

impl ChaosMetrics {
    /// Registers the chaos metric family in `registry`.
    pub fn register(registry: &Registry) -> Self {
        let injected = KIND_NAMES
            .iter()
            .map(|name| {
                (*name, registry.counter(&format!("poem_faults_injected_total{{kind=\"{name}\"}}")))
            })
            .collect();
        ChaosMetrics { injected, active: registry.gauge("poem_faults_active") }
    }

    /// Counts one injection of the named kind (see
    /// [`crate::plan::KIND_NAMES`]); unknown names are ignored.
    pub fn injected(&self, kind_name: &str) {
        if let Some((_, c)) = self.injected.iter().find(|(n, _)| *n == kind_name) {
            c.inc();
        }
    }

    /// Total injections across every kind.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().map(|(_, c)| c.get()).sum()
    }

    /// A timed fault became active.
    pub fn activate(&self) {
        self.active.add(1);
    }

    /// A timed fault expired or was restored.
    pub fn deactivate(&self) {
        self.active.sub(1);
    }
}

impl std::fmt::Debug for ChaosMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosMetrics")
            .field("injected_total", &self.injected_total())
            .field("active", &self.active.get())
            .finish()
    }
}

/// Compiles a link flap into shrink + restore legs against the node's
/// *current* range. `None` when the node or radio slot does not exist.
pub fn flap_legs(
    scene: &Scene,
    now: EmuTime,
    node: NodeId,
    radio: RadioId,
    factor: f64,
    duration: EmuDuration,
) -> Option<Vec<(EmuTime, SceneOp)>> {
    let current = scene.node(node)?.radios.get(radio)?.range;
    let shrunk = (current * factor.max(0.0)).max(0.0);
    Some(vec![
        (now, SceneOp::SetRadioRange { id: node, radio, range: shrunk }),
        (now + duration, SceneOp::SetRadioRange { id: node, radio, range: current }),
    ])
}

/// Compiles a per-channel jam: every radio tuned to `channel` goes dark
/// now and restores after `duration`. Empty when nothing listens there.
pub fn jam_legs(
    scene: &Scene,
    now: EmuTime,
    channel: ChannelId,
    duration: EmuDuration,
) -> Vec<(EmuTime, SceneOp)> {
    let mut legs = Vec::new();
    for vmn in scene.nodes() {
        for (slot, radio) in vmn.radios.radios().iter().enumerate() {
            if radio.channel != channel {
                continue;
            }
            let id = vmn.id;
            let slot = RadioId(slot as u8);
            legs.push((now, SceneOp::SetRadioRange { id, radio: slot, range: 0.0 }));
            legs.push((
                now + duration,
                SceneOp::SetRadioRange { id, radio: slot, range: radio.range },
            ));
        }
    }
    // Injection legs first, restores after, each group in node order.
    legs.sort_by_key(|(at, _)| *at);
    legs
}

/// Compiles a crash into a `RemoveNode` leg plus, when `restart_after` is
/// set, an `AddNode` restore leg rebuilt from the node's current
/// configuration. `None` when the node does not exist.
pub fn crash_legs(
    scene: &Scene,
    now: EmuTime,
    node: NodeId,
    restart_after: Option<EmuDuration>,
) -> Option<(SceneOp, Option<(EmuTime, SceneOp)>)> {
    let vmn = scene.node(node)?;
    let restore = restart_after.map(|d| {
        (
            now + d,
            SceneOp::AddNode {
                id: node,
                pos: vmn.pos,
                radios: vmn.radios.clone(),
                mobility: vmn.mobility,
                link: vmn.link,
            },
        )
    });
    Some((SceneOp::RemoveNode { id: node }, restore))
}

/// Emits the injection-time fault record for a non-wire kind (wire kinds
/// record per occurrence instead, at the interposer).
pub fn injection_record(kind: &FaultKind, at: EmuTime) -> Option<poem_record::FaultRecord> {
    use poem_record::FaultRecord;
    match kind {
        FaultKind::WireCorrupt { .. }
        | FaultKind::WireTruncate { .. }
        | FaultKind::WireDuplicate { .. }
        | FaultKind::WireReorder { .. } => None,
        FaultKind::Disconnect { node } => {
            Some(FaultRecord::Transport { at, node: *node, action: "disconnect".to_string() })
        }
        FaultKind::Stall { node, .. } => {
            Some(FaultRecord::Transport { at, node: *node, action: "stall".to_string() })
        }
        FaultKind::SlowReader { node, .. } => {
            Some(FaultRecord::Transport { at, node: *node, action: "slow_reader".to_string() })
        }
        FaultKind::LinkFlap { node, .. } => {
            Some(FaultRecord::Scene { at, action: format!("link_flap {node}") })
        }
        FaultKind::Crash { node, .. } => {
            Some(FaultRecord::Scene { at, action: format!("crash {node}") })
        }
        FaultKind::Jam { channel, .. } => {
            Some(FaultRecord::Scene { at, action: format!("jam ch{}", channel.0) })
        }
        FaultKind::ClockSkew { node, offset } => {
            Some(FaultRecord::Clock { at, node: *node, offset_ns: offset.as_nanos() })
        }
        FaultKind::ClockJitter { node, std_dev } => {
            Some(FaultRecord::Clock { at, node: *node, offset_ns: std_dev.as_nanos() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::radio::RadioConfig;
    use poem_core::Point;

    fn two_node_scene() -> Scene {
        let mut scene = Scene::new();
        for (id, ch) in [(1u32, 1u16), (2, 1), (3, 2)] {
            scene
                .apply(
                    EmuTime::ZERO,
                    &SceneOp::AddNode {
                        id: NodeId(id),
                        pos: Point::new(id as f64 * 10.0, 0.0),
                        radios: RadioConfig::single(ChannelId(ch), 100.0),
                        mobility: MobilityModel::Stationary,
                        link: LinkParams::default(),
                    },
                )
                .unwrap();
        }
        scene
    }

    #[test]
    fn flap_shrinks_then_restores() {
        let scene = two_node_scene();
        let legs = flap_legs(
            &scene,
            EmuTime::from_secs(5),
            NodeId(1),
            RadioId(0),
            0.2,
            EmuDuration::from_secs(3),
        )
        .unwrap();
        assert_eq!(legs.len(), 2);
        assert!(
            matches!(legs[0].1, SceneOp::SetRadioRange { range, .. } if (range - 20.0).abs() < 1e-9)
        );
        assert_eq!(legs[1].0, EmuTime::from_secs(8));
        assert!(matches!(legs[1].1, SceneOp::SetRadioRange { range, .. } if range == 100.0));
        assert!(flap_legs(&scene, EmuTime::ZERO, NodeId(9), RadioId(0), 0.5, EmuDuration::ZERO)
            .is_none());
    }

    #[test]
    fn jam_darkens_only_the_channel() {
        let scene = two_node_scene();
        let legs = jam_legs(&scene, EmuTime::from_secs(1), ChannelId(1), EmuDuration::from_secs(2));
        // Nodes 1 and 2 listen on ch1; node 3 (ch2) is untouched.
        assert_eq!(legs.len(), 4);
        let dark: Vec<NodeId> = legs
            .iter()
            .filter(|(at, _)| *at == EmuTime::from_secs(1))
            .map(|(_, op)| match op {
                SceneOp::SetRadioRange { id, range, .. } => {
                    assert_eq!(*range, 0.0);
                    *id
                }
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(dark, vec![NodeId(1), NodeId(2)]);
        assert!(legs.iter().any(|(at, op)| *at == EmuTime::from_secs(3)
            && matches!(op, SceneOp::SetRadioRange { range, .. } if *range == 100.0)));
    }

    #[test]
    fn crash_captures_restore_config() {
        let scene = two_node_scene();
        let (remove, restore) =
            crash_legs(&scene, EmuTime::from_secs(2), NodeId(2), Some(EmuDuration::from_secs(4)))
                .unwrap();
        assert_eq!(remove, SceneOp::RemoveNode { id: NodeId(2) });
        let (at, add) = restore.unwrap();
        assert_eq!(at, EmuTime::from_secs(6));
        assert!(matches!(
            add,
            SceneOp::AddNode { id, pos, .. } if id == NodeId(2) && pos == Point::new(20.0, 0.0)
        ));
        let (_, no_restart) = crash_legs(&scene, EmuTime::ZERO, NodeId(1), None).unwrap();
        assert!(no_restart.is_none());
        assert!(crash_legs(&scene, EmuTime::ZERO, NodeId(9), None).is_none());
    }

    #[test]
    fn metrics_count_per_kind() {
        let reg = Registry::new();
        let m = ChaosMetrics::register(&reg);
        m.injected("jam");
        m.injected("jam");
        m.injected("clock_skew");
        m.injected("not_a_kind");
        m.activate();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("poem_faults_injected_total{kind=\"jam\"}"), Some(2));
        assert_eq!(snap.counter("poem_faults_injected_total{kind=\"clock_skew\"}"), Some(1));
        assert_eq!(snap.gauge("poem_faults_active"), Some(1));
        assert_eq!(m.injected_total(), 3);
        m.deactivate();
        assert_eq!(reg.snapshot().gauge("poem_faults_active"), Some(0));
    }

    #[test]
    fn injection_records_match_layers() {
        use poem_record::FaultRecord;
        let at = EmuTime::from_secs(1);
        assert!(
            injection_record(&FaultKind::WireCorrupt { node: NodeId(1), prob: 0.1 }, at).is_none()
        );
        assert!(matches!(
            injection_record(&FaultKind::Disconnect { node: NodeId(1) }, at),
            Some(FaultRecord::Transport { .. })
        ));
        assert!(matches!(
            injection_record(
                &FaultKind::Jam { channel: ChannelId(2), duration: EmuDuration::ZERO },
                at
            ),
            Some(FaultRecord::Scene { .. })
        ));
        assert!(matches!(
            injection_record(
                &FaultKind::ClockSkew { node: NodeId(1), offset: EmuDuration::from_millis(3) },
                at
            ),
            Some(FaultRecord::Clock { offset_ns: 3_000_000, .. })
        ));
    }
}
