//! Wire-layer fault interposers.
//!
//! [`ChaosWriter`]/[`ChaosReader`] wrap any blocking `Write`/`Read` half —
//! a `poem-proto` in-memory pipe or a `TcpStream` clone — and mangle the
//! byte stream according to a shared [`WireFaults`] handle. Faults are
//! applied per `write` call; since `MsgWriter` emits one length prefix and
//! one body per frame, corrupting either chunk produces exactly the
//! hostile byte streams the framing layer must survive (decode errors and
//! desyncs, never panics).
//!
//! All draws come from the handle's [`EmuRng`], so a fixed seed and fixed
//! write sequence mangle identically. A [`WireFaultHub`] maps node ids to
//! handles so a real-time fault driver can retarget probabilities while
//! streams are live.

use crate::engine::ChaosMetrics;
use crate::plan::FaultKind;
use parking_lot::Mutex;
use poem_core::clock::Clock;
use poem_core::{EmuRng, NodeId};
use poem_record::{FaultRecord, Recorder};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Occurrence counts per wire action.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCounts {
    /// Frames with a flipped byte.
    pub corrupt: u64,
    /// Frames with a dropped tail.
    pub truncate: u64,
    /// Frames written twice.
    pub duplicate: u64,
    /// Frames delayed past a successor.
    pub reorder: u64,
}

struct WireSink {
    recorder: Arc<Recorder>,
    node: NodeId,
    clock: Arc<dyn Clock>,
}

struct WireState {
    corrupt: f64,
    truncate: f64,
    duplicate: f64,
    reorder: f64,
    rng: EmuRng,
    /// A reordered chunk awaiting its successor.
    held: Option<Vec<u8>>,
    /// When set, writes fail and reads report EOF (severed wire).
    cut: bool,
    counts: WireCounts,
    sink: Option<WireSink>,
    metrics: Option<ChaosMetrics>,
}

/// Shared, cloneable fault configuration for one byte stream.
#[derive(Clone)]
pub struct WireFaults {
    state: Arc<Mutex<WireState>>,
}

impl WireFaults {
    /// A quiet handle (all probabilities zero) drawing from `rng`.
    pub fn new(rng: EmuRng) -> Self {
        WireFaults {
            state: Arc::new(Mutex::new(WireState {
                corrupt: 0.0,
                truncate: 0.0,
                duplicate: 0.0,
                reorder: 0.0,
                rng,
                held: None,
                cut: false,
                counts: WireCounts::default(),
                sink: None,
                metrics: None,
            })),
        }
    }

    /// Emits a [`FaultRecord::Wire`] per occurrence into `recorder`,
    /// stamped with `clock` and attributed to `node`.
    pub fn with_recorder(
        self,
        recorder: Arc<Recorder>,
        node: NodeId,
        clock: Arc<dyn Clock>,
    ) -> Self {
        self.state.lock().sink = Some(WireSink { recorder, node, clock });
        self
    }

    /// Counts occurrences into per-kind chaos metrics.
    pub fn with_metrics(self, metrics: ChaosMetrics) -> Self {
        self.state.lock().metrics = Some(metrics);
        self
    }

    /// Applies a wire fault kind to this handle. Returns `false` (and does
    /// nothing) for non-wire kinds.
    pub fn configure(&self, kind: &FaultKind) -> bool {
        let mut st = self.state.lock();
        match kind {
            FaultKind::WireCorrupt { prob, .. } => st.corrupt = *prob,
            FaultKind::WireTruncate { prob, .. } => st.truncate = *prob,
            FaultKind::WireDuplicate { prob, .. } => st.duplicate = *prob,
            FaultKind::WireReorder { prob, .. } => st.reorder = *prob,
            _ => return false,
        }
        true
    }

    /// Severs the wire: subsequent writes fail with `BrokenPipe`, reads
    /// report EOF.
    pub fn cut(&self) {
        self.state.lock().cut = true;
    }

    /// Occurrence counts so far.
    pub fn counts(&self) -> WireCounts {
        self.state.lock().counts
    }
}

impl std::fmt::Debug for WireFaults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("WireFaults")
            .field("corrupt", &st.corrupt)
            .field("truncate", &st.truncate)
            .field("duplicate", &st.duplicate)
            .field("reorder", &st.reorder)
            .field("cut", &st.cut)
            .field("counts", &st.counts)
            .finish()
    }
}

/// What one `write` call must actually emit, decided under the state lock.
struct WritePlan {
    chunks: Vec<Vec<u8>>,
    events: Vec<(&'static str, u32)>,
}

fn plan_write(st: &mut WireState, buf: &[u8]) -> io::Result<WritePlan> {
    if st.cut {
        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "wire cut by fault injection"));
    }
    let mut chunk = buf.to_vec();
    let mut events: Vec<(&'static str, u32)> = Vec::new();
    if st.corrupt > 0.0 && st.rng.chance(st.corrupt) {
        let i = st.rng.index(chunk.len());
        let mask = st.rng.range_u64(1, 256) as u8;
        chunk[i] ^= mask;
        st.counts.corrupt += 1;
        events.push(("wire_corrupt", 1));
    }
    if st.truncate > 0.0 && st.rng.chance(st.truncate) {
        let keep = st.rng.index(chunk.len());
        let lost = (chunk.len() - keep) as u32;
        chunk.truncate(keep);
        st.counts.truncate += 1;
        events.push(("wire_truncate", lost));
    }
    let mut chunks = Vec::new();
    if st.reorder > 0.0 && st.rng.chance(st.reorder) && st.held.is_none() {
        // Hold this chunk back; it goes out after the next write (a
        // trailing hold at stream close degrades to tail loss).
        st.counts.reorder += 1;
        events.push(("wire_reorder", chunk.len() as u32));
        st.held = Some(chunk);
    } else {
        if st.duplicate > 0.0 && st.rng.chance(st.duplicate) {
            st.counts.duplicate += 1;
            events.push(("wire_duplicate", chunk.len() as u32));
            chunks.push(chunk.clone());
        }
        chunks.push(chunk);
        if let Some(held) = st.held.take() {
            chunks.push(held);
        }
    }
    Ok(WritePlan { chunks, events })
}

fn note_events(state: &Arc<Mutex<WireState>>, events: &[(&'static str, u32)]) {
    if events.is_empty() {
        return;
    }
    let st = state.lock();
    for (action, bytes) in events {
        if let Some(m) = &st.metrics {
            m.injected(action);
        }
        if let Some(s) = &st.sink {
            s.recorder.record_fault(FaultRecord::Wire {
                at: s.clock.now(),
                node: s.node,
                action: (*action).to_string(),
                bytes: *bytes,
            });
        }
    }
}

/// A `Write` half with fault injection (see module docs).
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    faults: WireFaults,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps a sink.
    pub fn new(inner: W, faults: WireFaults) -> Self {
        ChaosWriter { inner, faults }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let plan = plan_write(&mut self.faults.state.lock(), buf)?;
        for chunk in &plan.chunks {
            self.inner.write_all(chunk)?;
        }
        note_events(&self.faults.state, &plan.events);
        // Report full success so framed writers never retry a mangled tail.
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` half honoring the severed-wire flag.
#[derive(Debug)]
pub struct ChaosReader<R: Read> {
    inner: R,
    faults: WireFaults,
}

impl<R: Read> ChaosReader<R> {
    /// Wraps a source.
    pub fn new(inner: R, faults: WireFaults) -> Self {
        ChaosReader { inner, faults }
    }
}

impl<R: Read> Read for ChaosReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.faults.state.lock().cut {
            return Ok(0);
        }
        self.inner.read(buf)
    }
}

/// Node-indexed registry of live [`WireFaults`] handles.
///
/// A real-time fault driver resolves `FaultKind::Wire*` specs against the
/// hub so probabilities change on streams that are already connected.
#[derive(Default)]
pub struct WireFaultHub {
    handles: Mutex<BTreeMap<NodeId, WireFaults>>,
}

impl WireFaultHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the handle for `node`.
    pub fn register(&self, node: NodeId, faults: WireFaults) {
        self.handles.lock().insert(node, faults);
    }

    /// The handle for `node`, if registered.
    pub fn handle(&self, node: NodeId) -> Option<WireFaults> {
        self.handles.lock().get(&node).cloned()
    }

    /// Routes a wire fault kind to its node's handle. Returns `true` when
    /// a registered stream was reconfigured.
    pub fn configure(&self, kind: &FaultKind) -> bool {
        let Some(node) = kind.node() else { return false };
        match self.handle(node) {
            Some(h) => h.configure(kind),
            None => false,
        }
    }
}

impl std::fmt::Debug for WireFaultHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireFaultHub").field("nodes", &self.handles.lock().len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_proto::pipe::pipe;

    fn noisy(corrupt: f64, truncate: f64, duplicate: f64, reorder: f64, seed: u64) -> WireFaults {
        let f = WireFaults::new(EmuRng::seed(seed));
        f.configure(&FaultKind::WireCorrupt { node: NodeId(1), prob: corrupt });
        f.configure(&FaultKind::WireTruncate { node: NodeId(1), prob: truncate });
        f.configure(&FaultKind::WireDuplicate { node: NodeId(1), prob: duplicate });
        f.configure(&FaultKind::WireReorder { node: NodeId(1), prob: reorder });
        f
    }

    #[test]
    fn quiet_wire_is_transparent() {
        let (w, mut r) = pipe();
        let mut cw = ChaosWriter::new(w, WireFaults::new(EmuRng::seed(1)));
        cw.write_all(b"hello").unwrap();
        drop(cw);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn always_duplicate_doubles_every_chunk() {
        let (w, mut r) = pipe();
        let mut cw = ChaosWriter::new(w, noisy(0.0, 0.0, 1.0, 0.0, 2));
        cw.write_all(b"ab").unwrap();
        drop(cw);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abab");
    }

    #[test]
    fn always_reorder_swaps_adjacent_chunks() {
        let (w, mut r) = pipe();
        // First chunk held, second chunk drawn while a hold exists passes
        // straight through, then the held chunk follows.
        let mut cw = ChaosWriter::new(w, noisy(0.0, 0.0, 0.0, 1.0, 3));
        cw.write_all(b"AAA").unwrap();
        cw.write_all(b"BBB").unwrap();
        drop(cw);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"BBBAAA");
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (w, mut r) = pipe();
        let faults = noisy(1.0, 0.0, 0.0, 0.0, 4);
        let mut cw = ChaosWriter::new(w, faults.clone());
        cw.write_all(&[0u8; 16]).unwrap();
        drop(cw);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out.len(), 16);
        assert_eq!(out.iter().filter(|&&b| b != 0).count(), 1);
        assert_eq!(faults.counts().corrupt, 1);
    }

    #[test]
    fn truncation_drops_a_tail() {
        let (w, mut r) = pipe();
        let faults = noisy(0.0, 1.0, 0.0, 0.0, 5);
        let mut cw = ChaosWriter::new(w, faults.clone());
        cw.write_all(&[7u8; 32]).unwrap();
        drop(cw);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(out.len() < 32, "kept {}", out.len());
        assert_eq!(faults.counts().truncate, 1);
    }

    #[test]
    fn mangling_is_deterministic_per_seed() {
        let run = |seed| {
            let (w, mut r) = pipe();
            let mut cw = ChaosWriter::new(w, noisy(0.3, 0.3, 0.3, 0.3, seed));
            for i in 0..50u8 {
                cw.write_all(&[i; 8]).unwrap();
            }
            drop(cw);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            out
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn cut_wire_fails_writes_and_eofs_reads() {
        let (w, r) = pipe();
        let faults = WireFaults::new(EmuRng::seed(6));
        let mut cw = ChaosWriter::new(w, faults.clone());
        let mut cr = ChaosReader::new(r, faults.clone());
        cw.write_all(b"x").unwrap();
        faults.cut();
        assert_eq!(cw.write_all(b"y").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        let mut buf = [0u8; 4];
        assert_eq!(cr.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn hub_routes_by_node() {
        let hub = WireFaultHub::new();
        hub.register(NodeId(3), WireFaults::new(EmuRng::seed(7)));
        assert!(hub.configure(&FaultKind::WireCorrupt { node: NodeId(3), prob: 0.5 }));
        assert!(!hub.configure(&FaultKind::WireCorrupt { node: NodeId(4), prob: 0.5 }));
        assert!(!hub.configure(&FaultKind::Disconnect { node: NodeId(3) }));
        assert!(hub.handle(NodeId(3)).is_some());
    }
}
