//! # poem-server — the PoEm central emulation server
//!
//! "PoEm emulation server accepts connections from emulation clients and
//! forwards the packets to their corresponding clients according to the
//! emulated network scene." (§3.2)
//!
//! Two frontends over one engine:
//!
//! * [`engine::Pipeline`] — the per-packet steps 2–4 and the recording
//!   step 7, transport-independent.
//! * [`server::ServerHandle`] — the real-time TCP server with the paper's
//!   thread architecture (receiver threads, scheduling, one scanning
//!   thread, mobility integration).
//! * [`sim::SimNet`] — the deterministic in-process harness: the same
//!   pipeline driven by a virtual-time event loop, hosting
//!   [`poem_client::ClientApp`]s directly. Every experiment in the
//!   evaluation runs here reproducibly; the TCP frontend demonstrates the
//!   deployed mode.
//! * [`viz`] — text rendering of scenes and neighbor tables (the GUI
//!   replacement).
//!
//! Fault injection (`poem-chaos`) plugs into both frontends: `fault …`
//! script lines become a [`poem_chaos::FaultPlan`] executed by
//! [`sim::SimNet::install_faults`] under virtual time and by
//! [`server::ServerHandle::spawn_fault_driver`] under wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod engine;
pub mod script;
pub mod server;
pub mod sim;
pub mod viz;

pub use cluster::{ClusterConfig, ClusterPipeline};
pub use engine::{Delivery, Pipeline, PipelineConfig};
pub use script::{Script, ScriptEntry};
pub use server::{ServerConfig, ServerHandle};
pub use sim::{SimConfig, SimNet};
