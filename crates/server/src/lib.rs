//! # poem-server — the PoEm central emulation server
//!
//! "PoEm emulation server accepts connections from emulation clients and
//! forwards the packets to their corresponding clients according to the
//! emulated network scene." (§3.2)
//!
//! Two frontends over one engine:
//!
//! * [`engine::Pipeline`] — the per-packet steps 2–4 and the recording
//!   step 7, transport-independent.
//! * [`server::ServerHandle`] — the real-time TCP server with the paper's
//!   thread architecture, its receive path run by a readiness reactor
//!   ([`reactor`]) hosting sessions as explicit state machines
//!   ([`session`]) with timer-wheel deadlines ([`timer`]) — plus the
//!   scheduling/scanning thread and mobility integration.
//! * [`sim::SimNet`] — the deterministic in-process harness: the same
//!   pipeline driven by a virtual-time event loop, hosting
//!   [`poem_client::ClientApp`]s directly. Every experiment in the
//!   evaluation runs here reproducibly; the TCP frontend demonstrates the
//!   deployed mode.
//! * [`viz`] — text rendering of scenes and neighbor tables (the GUI
//!   replacement).
//!
//! Fault injection (`poem-chaos`) plugs into both frontends: `fault …`
//! script lines become a [`poem_chaos::FaultPlan`] executed by
//! [`sim::SimNet::install_faults`] under virtual time and by
//! [`server::ServerHandle::spawn_fault_driver`] under wall-clock time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod engine;
pub(crate) mod reactor;
pub mod script;
pub mod server;
pub(crate) mod session;
pub mod sim;
pub(crate) mod timer;
pub mod viz;

pub use cluster::{ClusterConfig, ClusterPipeline};
pub use engine::{Delivery, Pipeline, PipelineConfig};
pub use script::{Script, ScriptEntry};
pub use server::{ServerConfig, ServerHandle};
pub use session::PacingConfig;
pub use sim::{SimConfig, SimNet};
