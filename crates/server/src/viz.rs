//! Text visualization — the GUI replacement.
//!
//! The paper's server GUI shows the topology and per-node configuration;
//! its clients show protocol output. Headless reproduction renders the
//! same information as text: an ASCII map of node positions and a
//! per-channel neighbor listing. Scenario scripts plus these renderers
//! cover everything the GUI's visual interaction produced.

use poem_core::neighbor::NeighborTables;
use poem_core::scene::Scene;
use std::fmt::Write as _;

/// Renders the scene as an ASCII map of `cols × rows` characters covering
/// the bounding box of all nodes (plus margin), followed by a node table.
pub fn render_scene(scene: &Scene, cols: usize, rows: usize) -> String {
    let mut out = String::new();
    let nodes: Vec<_> = scene.nodes().collect();
    if nodes.is_empty() {
        return "(empty scene)\n".into();
    }
    let cols = cols.max(8);
    let rows = rows.max(4);

    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for v in &nodes {
        min_x = min_x.min(v.pos.x);
        max_x = max_x.max(v.pos.x);
        min_y = min_y.min(v.pos.y);
        max_y = max_y.max(v.pos.y);
    }
    let pad_x = ((max_x - min_x) * 0.05).max(1.0);
    let pad_y = ((max_y - min_y) * 0.05).max(1.0);
    min_x -= pad_x;
    max_x += pad_x;
    min_y -= pad_y;
    max_y += pad_y;

    let mut grid = vec![vec![b'.'; cols]; rows];
    for v in &nodes {
        let cx = ((v.pos.x - min_x) / (max_x - min_x) * (cols - 1) as f64).round() as usize;
        let cy = ((v.pos.y - min_y) / (max_y - min_y) * (rows - 1) as f64).round() as usize;
        // Screen y grows downward; scene y grows upward.
        let row = rows - 1 - cy.min(rows - 1);
        let label = (b'0' + (v.id.index() % 10) as u8) as char;
        grid[row][cx.min(cols - 1)] = label as u8;
    }
    for row in grid {
        out.extend(row.into_iter().map(char::from));
        out.push('\n');
    }

    let _ = writeln!(out, "\n{:<6} {:<18} {:<24} range", "node", "position", "channels");
    for v in &nodes {
        let channels: Vec<String> = v.radios.channels().iter().map(|c| c.to_string()).collect();
        let ranges: Vec<String> =
            v.radios.radios().iter().map(|r| format!("{:.0}", r.range)).collect();
        let _ = writeln!(
            out,
            "{:<6} {:<18} {:<24} {}",
            v.id.to_string(),
            v.pos.to_string(),
            channels.join(","),
            ranges.join(",")
        );
    }
    out
}

/// Renders the channel-indexed neighbor tables: per active channel, each
/// member and its `NT(·, k)` row.
pub fn render_neighbors(scene: &Scene) -> String {
    let mut out = String::new();
    let tables = scene.tables();
    for ch in tables.active_channels() {
        let _ = writeln!(out, "[{ch}]");
        for node in tables.node_set(ch) {
            let nbrs: Vec<String> =
                tables.neighbors(node, ch).iter().map(|n| n.to_string()).collect();
            let _ = writeln!(out, "  {node} -> {{{}}}", nbrs.join(", "));
        }
    }
    if out.is_empty() {
        out.push_str("(no active channels)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::radio::RadioConfig;
    use poem_core::scene::SceneOp;
    use poem_core::{ChannelId, EmuTime, NodeId, Point};

    fn demo_scene() -> Scene {
        let mut s = Scene::new();
        for (id, x, y, ch) in [(1u32, 0.0, 0.0, 1u16), (2, 100.0, 0.0, 1), (3, 50.0, 80.0, 2)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(x, y),
                    radios: RadioConfig::single(ChannelId(ch), 150.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn map_contains_all_node_labels() {
        let s = demo_scene();
        let map = render_scene(&s, 40, 12);
        assert!(map.contains('1'));
        assert!(map.contains('2'));
        assert!(map.contains('3'));
        assert!(map.contains("VMN1"));
        assert!(map.contains("ch2"));
    }

    #[test]
    fn empty_scene_renders_placeholder() {
        assert_eq!(render_scene(&Scene::new(), 40, 12), "(empty scene)\n");
        assert_eq!(render_neighbors(&Scene::new()), "(no active channels)\n");
    }

    #[test]
    fn neighbor_rendering_lists_channels() {
        let s = demo_scene();
        let txt = render_neighbors(&s);
        assert!(txt.contains("[ch1]"), "{txt}");
        assert!(txt.contains("[ch2]"), "{txt}");
        assert!(txt.contains("VMN1 -> {VMN2}"), "{txt}");
        assert!(txt.contains("VMN3 -> {}"), "{txt}");
    }

    #[test]
    fn vertical_orientation_up_is_up() {
        let mut s = Scene::new();
        for (id, y) in [(1u32, 0.0), (2u32, 100.0)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(0.0, y),
                    radios: RadioConfig::single(ChannelId(1), 50.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        }
        let map = render_scene(&s, 10, 8);
        let row_of = |c: char| map.lines().position(|l| l.contains(c)).unwrap();
        assert!(row_of('2') < row_of('1'), "higher y renders higher:\n{map}");
    }
}

/// Renders a replay-run summary: op histogram, population curve and the
/// most-travelled nodes — the "session overview" panel of the GUI
/// replacement.
pub fn render_run_summary(scene_log: &[poem_record::SceneRecord]) -> String {
    use poem_core::EmuDuration;
    let stats = poem_record::SceneStats::compute(scene_log, EmuDuration::from_secs(1));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scene ops: {} total (add {}, remove {}, move {}, retune {}, range {}, \
         mobility {}, link {}, arena {})",
        stats.ops.total(),
        stats.ops.add,
        stats.ops.remove,
        stats.ops.moves,
        stats.ops.retune,
        stats.ops.range,
        stats.ops.mobility,
        stats.ops.link,
        stats.ops.arena,
    );
    let _ = writeln!(out, "peak population: {}", stats.peak_population());
    let _ = writeln!(out, "total distance travelled: {:.1} units", stats.total_distance());
    let mut top: Vec<_> = stats.distance_travelled.clone();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (id, d) in top.iter().take(5) {
        if *d > 0.0 {
            let _ = writeln!(out, "  {id}: {d:.1} units");
        }
    }
    out
}

/// Renders a fault-injection log as a per-layer summary plus a time-ordered
/// event list — the chaos panel of the GUI replacement.
pub fn render_faults(faults: &[poem_record::FaultRecord]) -> String {
    if faults.is_empty() {
        return "(no faults injected)\n".into();
    }
    let counts = poem_record::FaultQuery::new(faults).counts();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "faults: {} total (wire {}, transport {}, scene {}, clock {})",
        counts.total(),
        counts.wire,
        counts.transport,
        counts.scene,
        counts.clock,
    );
    for f in faults {
        let secs = f.at().as_nanos() as f64 / 1e9;
        let line = match f {
            poem_record::FaultRecord::Wire { node, action, bytes, .. } => {
                format!("[{secs:9.3}s] wire      {node} {action} ({bytes} B)")
            }
            poem_record::FaultRecord::Transport { node, action, .. } => {
                format!("[{secs:9.3}s] transport {node} {action}")
            }
            poem_record::FaultRecord::Scene { action, .. } => {
                format!("[{secs:9.3}s] scene     {action}")
            }
            poem_record::FaultRecord::Clock { node, offset_ns, .. } => {
                format!("[{secs:9.3}s] clock     {node} offset {offset_ns} ns")
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use poem_core::{EmuTime, NodeId};
    use poem_record::FaultRecord;

    #[test]
    fn fault_panel_summarizes_and_lists() {
        let log = vec![
            FaultRecord::Wire {
                at: EmuTime::from_millis(1500),
                node: NodeId(1),
                action: "wire_corrupt".into(),
                bytes: 1,
            },
            FaultRecord::Transport {
                at: EmuTime::from_secs(2),
                node: NodeId(2),
                action: "stall".into(),
            },
            FaultRecord::Scene { at: EmuTime::from_secs(3), action: "jam ch1".into() },
            FaultRecord::Clock { at: EmuTime::from_secs(4), node: NodeId(1), offset_ns: -250 },
        ];
        let txt = render_faults(&log);
        assert!(txt.contains("4 total (wire 1, transport 1, scene 1, clock 1)"), "{txt}");
        assert!(txt.contains("wire_corrupt"), "{txt}");
        assert!(txt.contains("jam ch1"), "{txt}");
        assert!(txt.contains("offset -250 ns"), "{txt}");
        assert!(txt.contains("[    1.500s]"), "{txt}");
    }

    #[test]
    fn empty_fault_log_renders_placeholder() {
        assert_eq!(render_faults(&[]), "(no faults injected)\n");
    }
}

/// Renders a [`poem_obs::MetricsSnapshot`] as a human-readable table —
/// the "health panel" of the GUI replacement. Counters and gauges get one
/// aligned row each; histograms show count, mean and p99.
pub fn render_metrics(snap: &poem_obs::MetricsSnapshot) -> String {
    if snap.is_empty() {
        return "(no metrics)\n".into();
    }
    let mut out = String::new();
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .chain(snap.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v}");
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(out, "histograms:");
        for (name, h) in &snap.histograms {
            let p99 = h.quantile(0.99).map_or_else(|| "-".into(), |v| v.to_string());
            let _ = writeln!(
                out,
                "  {name:<width$}  count={} mean={:.0} p99={p99}",
                h.count,
                h.mean(),
            );
        }
    }
    out
}

#[cfg(test)]
mod metrics_tests {
    use super::*;
    use poem_obs::Registry;

    #[test]
    fn metrics_table_lists_every_instrument() {
        let r = Registry::new();
        r.counter("poem_ingest_packets_total").add(7);
        r.gauge("poem_schedule_depth").set(3);
        r.histogram("poem_scan_lag_ns", &[1_000, 1_000_000]).observe(500);
        let txt = render_metrics(&r.snapshot());
        assert!(txt.contains("poem_ingest_packets_total"), "{txt}");
        assert!(txt.contains("7"), "{txt}");
        assert!(txt.contains("poem_schedule_depth"), "{txt}");
        assert!(txt.contains("count=1"), "{txt}");
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(render_metrics(&Registry::new().snapshot()), "(no metrics)\n");
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::radio::RadioConfig;
    use poem_core::scene::SceneOp;
    use poem_core::{ChannelId, EmuTime, NodeId, Point};
    use poem_record::SceneRecord;

    #[test]
    fn summary_mentions_ops_and_distance() {
        let log = vec![
            SceneRecord::new(
                EmuTime::ZERO,
                SceneOp::AddNode {
                    id: NodeId(1),
                    pos: Point::ORIGIN,
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::default(),
                },
            ),
            SceneRecord::new(
                EmuTime::from_secs(1),
                SceneOp::MoveNode { id: NodeId(1), pos: Point::new(30.0, 40.0) },
            ),
        ];
        let s = render_run_summary(&log);
        assert!(s.contains("2 total"), "{s}");
        assert!(s.contains("peak population: 1"), "{s}");
        assert!(s.contains("50.0 units"), "{s}");
        assert!(s.contains("VMN1: 50.0"), "{s}");
    }

    #[test]
    fn empty_log_summary() {
        let s = render_run_summary(&[]);
        assert!(s.contains("0 total"), "{s}");
        assert!(s.contains("peak population: 0"), "{s}");
    }
}
