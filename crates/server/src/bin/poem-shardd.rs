//! `poem-shardd` — one cluster shard worker process.
//!
//! Spawned by the cluster coordinator with a single argument: the
//! coordinator's listen address. Everything else — shard assignment,
//! seed, decision base, the mirror sub-scene — arrives over the
//! connection. Exits cleanly when the coordinator shuts the cluster down
//! or disappears.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let addr = match args.next() {
        Some(a) if a != "--help" && a != "-h" => a,
        _ => {
            eprintln!("usage: poem-shardd <coordinator-addr>");
            eprintln!();
            eprintln!("Shard worker for distributed PoEm emulation. Not meant to be");
            eprintln!("run by hand: the coordinator (poem-server --cluster, or a");
            eprintln!("poem_cluster::Coordinator embedding) spawns one per shard.");
            return ExitCode::FAILURE;
        }
    };
    match poem_cluster::worker::run(&addr) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("poem-shardd: {e}");
            ExitCode::FAILURE
        }
    }
}
