//! The PoEm emulation server CLI.
//!
//! ```sh
//! poem-server <scenario.poem> [--listen 127.0.0.1:0] [--seed N] [--duration SECS]
//!             [--sleep-policy naive|hybrid|spin|auto] [--profiles FILE]
//! ```
//!
//! Loads a scenario script (see `poem_server::script` for the format),
//! applies its t = 0 ops as the initial scene, starts the real-time TCP
//! server, schedules the remaining ops at their wall-clock offsets, and
//! on exit saves the recorded traffic and scene logs next to the script
//! (`<script>.traffic.poemlog` / `<script>.scene.poemlog`).
//!
//! Scripts with `profile …` bindings need a profile library: pass
//! `--profiles FILE` or commit the library next to the script as
//! `<script>.profile` (the default lookup).

#![forbid(unsafe_code)]

use poem_core::clock::{Clock, WallClock};
use poem_core::scene::Scene;
use poem_core::sleep::SleepPolicy;
use poem_core::EmuTime;
use poem_server::script::Script;
use poem_server::{ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    script: PathBuf,
    listen: String,
    seed: u64,
    duration: Option<f64>,
    sleep_policy: SleepPolicy,
    profiles: Option<PathBuf>,
    cluster: bool,
    shards: u32,
    tile_edge: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let script = PathBuf::from(args.next().ok_or(
        "usage: poem-server <scenario.poem> [--listen ADDR] [--seed N] [--duration SECS] \
         [--sleep-policy naive|hybrid|spin|auto] [--profiles FILE] \
         [--cluster [--shards N] [--tile-edge UNITS]]",
    )?);
    let mut out = Args {
        script,
        listen: "127.0.0.1:0".into(),
        seed: 0,
        duration: None,
        sleep_policy: SleepPolicy::default(),
        profiles: None,
        cluster: false,
        shards: 2,
        tile_edge: None,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => out.listen = value()?,
            "--seed" => out.seed = value()?.parse().map_err(|e| format!("bad seed: {e}"))?,
            "--duration" => {
                out.duration = Some(value()?.parse().map_err(|e| format!("bad duration: {e}"))?)
            }
            "--sleep-policy" => out.sleep_policy = value()?.parse()?,
            "--profiles" => out.profiles = Some(PathBuf::from(value()?)),
            "--cluster" => out.cluster = true,
            "--shards" => {
                out.shards = value()?.parse().map_err(|e| format!("bad shard count: {e}"))?;
                out.cluster = true;
            }
            "--tile-edge" => {
                out.tile_edge = Some(value()?.parse().map_err(|e| format!("bad tile edge: {e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

/// Loads the profile library a `profile …`-bearing script needs —
/// `--profiles FILE` when given, else the committed `<script>.profile`
/// sibling — and resolves the script's symbolic bindings against it.
fn load_profiles(
    args: &Args,
    script: &Script,
) -> Result<
    Option<(String, poem_profiles::ProfileLibrary, Vec<poem_server::script::ScriptEntry>)>,
    String,
> {
    let path = match &args.profiles {
        Some(p) => p.clone(),
        None if script.profile_count() > 0 => args.script.with_extension("profile"),
        None => return Ok(None),
    };
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "script binds {} profile(s) but cannot read {}: {e}",
            script.profile_count(),
            path.display()
        )
    })?;
    let lib = poem_profiles::ProfileLibrary::parse(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let resolved = script.resolve_profiles(&lib).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(Some((text, lib, resolved)))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&args.script) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.script.display());
            std::process::exit(2);
        }
    };
    let script = match Script::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", args.script.display());
            std::process::exit(2);
        }
    };

    let profiles = match load_profiles(&args, &script) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // t = 0 ops form the initial scene; later ops fire live. Resolved
    // profile bindings join the same timeline.
    let resolved = profiles.as_ref().map(|(_, _, r)| r.as_slice()).unwrap_or(&[]);
    let mut timeline: Vec<_> = script.entries().iter().chain(resolved).cloned().collect();
    timeline.sort_by_key(|e| e.at);
    let mut scene = Scene::new();
    let mut deferred = Vec::new();
    for entry in timeline {
        if entry.at == EmuTime::ZERO {
            if let Err(e) = scene.apply(EmuTime::ZERO, &entry.op) {
                eprintln!("initial op `{}` failed: {e}", entry.op);
                std::process::exit(2);
            }
        } else {
            deferred.push(entry);
        }
    }

    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let config = ServerConfig {
        addr: args.listen.parse().unwrap_or_else(|e| {
            eprintln!("bad listen address {}: {e}", args.listen);
            std::process::exit(2);
        }),
        seed: args.seed,
        sleep_policy: args.sleep_policy,
        ..ServerConfig::default()
    };
    let server = match ServerHandle::start(scene, Arc::clone(&clock), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            std::process::exit(1);
        }
    };
    if let Some((_, lib, _)) = &profiles {
        server.install_profiles(lib.clone());
        println!(
            "profiles: {} ({} binding(s) on the timeline)",
            lib.names().collect::<Vec<_>>().join(", "),
            script.profile_count()
        );
    }
    if args.cluster {
        // Tile edge defaults to the scene's longest radio range — the
        // smallest tiling the halo invariant allows.
        let max_range = server.with_scene(|s| {
            s.nodes()
                .flat_map(|v| v.radios.radios().iter().map(|r| r.range))
                .fold(1.0_f64, f64::max)
        });
        let config = poem_cluster::ClusterConfig {
            workers: args.shards.max(1),
            tile_edge: args.tile_edge.unwrap_or(max_range),
            profiles: profiles.as_ref().map(|(text, _, _)| text.clone()),
            ..poem_cluster::ClusterConfig::default()
        };
        match server.attach_cluster(config) {
            Ok(()) => println!("cluster: {} shard worker(s) attached", args.shards.max(1)),
            Err(e) => {
                eprintln!("cannot attach cluster: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("poem-server listening on {}", server.addr());
    println!(
        "scene: {} nodes, {} deferred scenario ops, {} scheduled faults",
        server.with_scene(|s| s.len()),
        deferred.len(),
        script.fault_count()
    );
    println!("{}", server.with_scene(|s| poem_server::viz::render_scene(s, 56, 12)));

    // Scenario driver: fire deferred ops at their wall-clock offsets.
    let driver = {
        let server = Arc::clone(&server);
        let clock = Arc::clone(&clock);
        std::thread::spawn(move || {
            for entry in deferred {
                loop {
                    let now = clock.now();
                    if now >= entry.at {
                        break;
                    }
                    std::thread::sleep((entry.at - now).to_std().min(Duration::from_millis(100)));
                }
                match server.apply_op(entry.op.clone()) {
                    Ok(()) => println!("[{}] {}", clock.now(), entry.op),
                    Err(e) => eprintln!("[{}] {} FAILED: {e}", clock.now(), entry.op),
                }
            }
        })
    };

    // Chaos driver: execute `fault …` lines at their wall-clock offsets.
    let fault_driver = if script.fault_count() > 0 {
        match server.spawn_fault_driver(script.faults(), None) {
            Ok(h) => Some(h),
            Err(e) => {
                eprintln!("cannot start fault driver: {e}");
                None
            }
        }
    } else {
        None
    };

    // Run for the requested duration (default: script end + 5 s).
    let run_secs = args.duration.unwrap_or(script.end().as_secs_f64() + 5.0);
    println!("running for {run_secs:.1} s of wall time ...");
    std::thread::sleep(Duration::from_secs_f64(run_secs));
    let _ = driver.join();

    let recorder = server.recorder();
    let (traffic, ops) = recorder.counts();
    println!("recorded {traffic} traffic events, {ops} scene ops");
    let faults = recorder.faults();
    if !faults.is_empty() {
        println!("\n=== faults ===\n{}", poem_server::viz::render_faults(&faults));
    }
    println!("\n=== metrics ===\n{}", poem_server::viz::render_metrics(&server.metrics()));
    let stem = args.script.with_extension("");
    match recorder.save(&stem) {
        Ok(()) => {
            println!("logs saved to {}.{{traffic,scene,metrics,faults}}.poemlog", stem.display())
        }
        Err(e) => eprintln!("could not save logs: {e}"),
    }
    // Shutdown flips `running`, so a fault driver with restores beyond the
    // run duration exits instead of pinning the process.
    server.shutdown();
    if let Some(h) = fault_driver {
        let _ = h.join();
    }
}
