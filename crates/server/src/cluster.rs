//! The parallelized server cluster — §7's future work: "expand the one
//! server to a parallelized cluster to conquer the performance bottleneck
//! so as to support fine-granularity performance evaluations".
//!
//! [`ClusterPipeline`] shards the per-packet work (§3.2 steps 2–3: the
//! neighbor lookup and the drop/forward-time decisions) across worker
//! shards by source VMN. The scene stays **centralized** behind a
//! read-write lock — preserving PoEm's consistency argument: scene
//! construction is still a single serialized writer, only the
//! embarrassingly parallel per-packet decisions fan out. Each shard owns
//! an independent RNG (forked from the cluster seed), so runs are
//! deterministic *per shard assignment*.
//!
//! Batches are executed by a pool of long-lived per-shard worker threads
//! fed over channels — spawning threads per batch costs more than small
//! batches take to process. The pool preserves the sequential contract:
//! shard `i`'s packets are processed in batch order against shard `i`'s
//! RNG, so results are bit-identical to the scoped-spawn baseline
//! ([`ClusterPipeline::ingest_batch_sharded_spawning`], kept for E15).
//!
//! # Lock order
//!
//! **`scene` before any shard lock.** Every path that needs both takes
//! the scene lock (read or write) first and a shard's mutex second,
//! matching [`ClusterPipeline::apply_op`]'s scene-first writes. The pair
//! is declared in poem-lint's `lock_order` rule, so an inversion fails CI.
//!
//! The cluster path implements the paper's baseline models; the optional
//! MAC collision domain is inherently a global serialization point and is
//! deliberately not offered here (see DESIGN.md).

use crate::engine::Delivery;
use crossbeam::channel::{self, Receiver, Sender};
use crossbeam::thread;
use parking_lot::{Mutex, RwLock};
use poem_core::linkmodel::ForwardDecision;
use poem_core::packet::Destination;
use poem_core::partition::Partitioner;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::{EmuPacket, EmuRng, EmuTime, NodeId, Point};
use poem_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use poem_record::{DropReason, Recorder, SceneRecord, TrafficRecord};
use std::sync::Arc;

/// Bucket bounds (packets) for the per-call batch-size distribution.
const BATCH_SIZE_BOUNDS: &[u64] = &[8, 32, 128, 512, 2_048, 8_192, 32_768];

/// Cluster sizing.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Seed forked into every shard's RNG.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { shards: 4, seed: 0 }
    }
}

struct Shard {
    rng: EmuRng,
    /// Per-shard recorder — shards never contend on the log lock; the
    /// logs are merged (time-ordered) on demand.
    recorder: Arc<Recorder>,
    /// Packets this shard has ingested
    /// (`poem_shard_ingest_total{shard="i"}`).
    ingested: Arc<Counter>,
    /// Reused routing buffer: steady-state shard ingest allocates nothing
    /// beyond the delivery vector.
    scratch: Vec<NodeId>,
}

/// One unit of batch work for a shard worker: the shard's slice of the
/// batch, processed in order against the shard's RNG.
struct Job {
    pkts: Vec<EmuPacket>,
    received_at: EmuTime,
    reply: Sender<(usize, Vec<Delivery>)>,
}

/// Long-lived per-shard worker threads fed over channels. Dropping the
/// pool disconnects every job lane, which the workers observe as shutdown.
struct WorkerPool {
    /// One job lane per shard; index = shard index.
    jobs: Vec<Sender<Job>>,
    handles: Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,
}

impl WorkerPool {
    fn start(scene: Arc<RwLock<Scene>>, shards: Arc<Vec<Mutex<Shard>>>) -> WorkerPool {
        let n = shards.len();
        let mut jobs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for idx in 0..n {
            let (tx, rx) = channel::unbounded::<Job>();
            let scene = Arc::clone(&scene);
            let shards = Arc::clone(&shards);
            handles.push(Some(std::thread::spawn(move || shard_worker(idx, &scene, &shards, &rx))));
            jobs.push(tx);
        }
        WorkerPool { jobs, handles: Mutex::new(handles) }
    }

    /// A job lane disconnected mid-batch: a worker died. Join whatever
    /// finished and re-raise the worker's panic payload on the caller
    /// rather than failing with a misleading channel error.
    fn propagate_failure(&self) -> ! {
        // Take the finished handles out under the lock, then join with the
        // lock released: join() can block arbitrarily long, and a worker's
        // panic handler must still be able to reach the pool.
        let finished: Vec<_> = {
            let mut handles = self.handles.lock();
            handles
                .iter_mut()
                .filter(|s| s.as_ref().is_some_and(std::thread::JoinHandle::is_finished))
                .filter_map(Option::take)
                .collect()
        };
        for h in finished {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        // Unreachable while the pool owns the senders: a lane only
        // disconnects when its worker exits, and workers only exit by
        // panicking or by pool shutdown.
        std::panic::resume_unwind(Box::new(String::from(
            "shard worker lane disconnected without a panic",
        )))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect every lane; each worker's recv() then errors and its
        // loop exits.
        self.jobs.clear();
        // Drain under the lock, join outside it: joining with the pool
        // mutex held would stall anyone probing the pool while the last
        // workers wind down.
        let taken: Vec<_> = {
            let mut handles = self.handles.lock();
            handles.iter_mut().filter_map(Option::take).collect()
        };
        for h in taken {
            // A panicked worker already surfaced through the batch
            // path; don't double-panic during unwind.
            let _ = h.join();
        }
    }
}

/// Body of one pooled worker: drain jobs for shard `idx` until the lane
/// disconnects. Per job, locks follow the module's declared order (scene
/// before shard) and the shard's packets run sequentially in batch order —
/// the determinism contract `batch_is_deterministic_for_fixed_shards`
/// asserts.
fn shard_worker(
    idx: usize,
    scene_lock: &RwLock<Scene>,
    shards: &[Mutex<Shard>],
    rx: &Receiver<Job>,
) {
    while let Ok(job) = rx.recv() {
        let scene = scene_lock.read();
        let shard_slot = &shards[idx];
        let mut shard = shard_slot.lock();
        shard.ingested.add(job.pkts.len() as u64);
        let recorder = Arc::clone(&shard.recorder);
        let mut targets = std::mem::take(&mut shard.scratch);
        let mut out = Vec::new();
        for pkt in &job.pkts {
            ingest_on(
                &scene,
                &recorder,
                &mut shard.rng,
                pkt,
                job.received_at,
                &mut targets,
                &mut out,
            );
        }
        shard.scratch = targets;
        drop(shard);
        drop(scene);
        // The batch caller may itself be gone (propagating another
        // shard's failure); a dead reply lane is not this worker's error.
        let _ = job.reply.send((idx, out));
    }
}

/// A sharded emulation pipeline.
pub struct ClusterPipeline {
    scene: Arc<RwLock<Scene>>,
    shards: Arc<Vec<Mutex<Shard>>>,
    /// Shard-assignment strategy, shared with the multi-process cluster
    /// coordinator via `poem_core::partition` so the two sharding modes
    /// cannot drift apart.
    partitioner: Partitioner,
    /// Scene-op log (single writer, so unsharded).
    recorder: Arc<Recorder>,
    mobility_rng: Mutex<EmuRng>,
    registry: Arc<Registry>,
    /// Distribution of `ingest_batch*` call sizes (packets).
    batch_size: Arc<Histogram>,
    /// Shard imbalance of the most recent batch: `100·(max−mean)/mean`
    /// over the per-shard partition sizes (0 = perfectly balanced).
    imbalance_pct: Arc<Gauge>,
    pool: WorkerPool,
}

impl ClusterPipeline {
    /// Builds a cluster over an initial scene and starts its shard
    /// workers.
    pub fn new(scene: Scene, recorder: Arc<Recorder>, config: ClusterConfig) -> Self {
        // Constructor precondition on operator-supplied config, checked once
        // at startup — not reachable from client traffic.
        // poem-lint: allow(panic_safety): startup config validation
        assert!(config.shards >= 1, "a cluster needs at least one shard");
        let registry = Arc::new(Registry::new());
        let mut root = EmuRng::seed(config.seed);
        let shards: Arc<Vec<Mutex<Shard>>> = Arc::new(
            (0..config.shards)
                .map(|i| {
                    Mutex::new(Shard {
                        rng: root.fork(),
                        recorder: Arc::new(Recorder::new()),
                        ingested: registry
                            .counter(&format!("poem_shard_ingest_total{{shard=\"{i}\"}}")),
                        scratch: Vec::new(),
                    })
                })
                .collect(),
        );
        let scene = Arc::new(RwLock::new(scene));
        let pool = WorkerPool::start(Arc::clone(&scene), Arc::clone(&shards));
        ClusterPipeline {
            scene,
            shards,
            partitioner: Partitioner::Modulo { shards: config.shards as u32 },
            recorder,
            mobility_rng: Mutex::new(root.fork()),
            batch_size: registry.histogram("poem_batch_size_packets", BATCH_SIZE_BOUNDS),
            imbalance_pct: registry.gauge("poem_shard_imbalance_pct"),
            registry,
            pool,
        }
    }

    /// The cluster's metric registry.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every cluster metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns a source VMN. Delegates to the shared
    /// [`Partitioner`]; the in-process cluster uses the position-free
    /// modulo strategy, so the position argument is immaterial.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.partitioner.owner_of(node, Point::ORIGIN) as usize
    }

    /// The scene-op recorder (traffic records live in per-shard logs;
    /// see [`ClusterPipeline::traffic_merged`]).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// All shards' traffic records merged into one time-ordered log.
    pub fn traffic_merged(&self) -> Vec<TrafficRecord> {
        let mut all: Vec<TrafficRecord> = Vec::new();
        for shard in self.shards.iter() {
            all.extend(shard.lock().recorder.traffic());
        }
        all.sort_by_key(|r| r.at());
        all
    }

    /// Runs `f` with read access to the scene.
    pub fn with_scene<R>(&self, f: impl FnOnce(&Scene) -> R) -> R {
        f(&self.scene.read())
    }

    /// Applies a scene op (single serialized writer — the centralized
    /// scene-construction path).
    pub fn apply_op(&self, at: EmuTime, op: SceneOp) -> Result<(), SceneError> {
        self.scene.write().apply(at, &op)?;
        self.recorder.record_scene(SceneRecord::new(at, op));
        Ok(())
    }

    /// Integrates mobility up to `to` (serialized writer) and records the
    /// resulting positions of mobile nodes as `MoveNode` ops — the same
    /// contract as [`crate::engine::Pipeline::advance_mobility`], so
    /// cluster runs replay exactly without re-randomization.
    pub fn advance_mobility(&self, to: EmuTime) {
        let mut rng = self.mobility_rng.lock();
        let mut scene = self.scene.write();
        if to <= scene.mobility_horizon() {
            return;
        }
        scene.advance_mobility(to, &mut rng);
        let moved: Vec<(NodeId, Point)> =
            scene.nodes().filter(|v| v.mobility.is_mobile()).map(|v| (v.id, v.pos)).collect();
        drop(scene);
        drop(rng);
        for (id, pos) in moved {
            self.recorder.record_scene(SceneRecord::new(to, SceneOp::MoveNode { id, pos }));
        }
    }

    /// Ingests one packet on its owning shard (steps 2–3).
    ///
    /// Lock order: scene read-lock first, then the shard mutex (see the
    /// module header).
    pub fn ingest(&self, pkt: &EmuPacket, received_at: EmuTime) -> Vec<Delivery> {
        let scene = self.scene.read();
        let shard_slot = &self.shards[self.shard_of(pkt.src)];
        let mut shard = shard_slot.lock();
        let recorder = Arc::clone(&shard.recorder);
        shard.ingested.inc();
        let mut targets = std::mem::take(&mut shard.scratch);
        let mut out = Vec::new();
        ingest_on(&scene, &recorder, &mut shard.rng, pkt, received_at, &mut targets, &mut out);
        shard.scratch = targets;
        out
    }

    /// Ingests a batch in parallel: packets are partitioned by their
    /// owning shard and each shard processes its share on its own worker
    /// thread. Returns all deliveries (ordering: by shard, then by the
    /// batch order within a shard — deterministic for a fixed shard
    /// count).
    pub fn ingest_batch(&self, batch: &[EmuPacket], received_at: EmuTime) -> Vec<Delivery> {
        self.ingest_batch_sharded(batch, received_at).into_iter().flatten().collect()
    }

    /// Like [`ClusterPipeline::ingest_batch`] but returns one delivery
    /// vector per shard, skipping the serial merge — the fast path when
    /// the consumer (e.g. per-shard scanning threads) can work sharded.
    /// Executes on the persistent worker pool.
    pub fn ingest_batch_sharded(
        &self,
        batch: &[EmuPacket],
        received_at: EmuTime,
    ) -> Vec<Vec<Delivery>> {
        let n = self.shards.len();
        let partitions = self.partition(batch);
        let (reply_tx, reply_rx) = channel::unbounded();
        for (idx, pkts) in partitions.into_iter().enumerate() {
            let job = Job { pkts, received_at, reply: reply_tx.clone() };
            if self.pool.jobs[idx].send(job).is_err() {
                self.pool.propagate_failure();
            }
        }
        drop(reply_tx);
        let mut results: Vec<Vec<Delivery>> = (0..n).map(|_| Vec::new()).collect();
        for _ in 0..n {
            match reply_rx.recv() {
                Ok((idx, out)) => results[idx] = out,
                Err(_) => self.pool.propagate_failure(),
            }
        }
        results
    }

    /// The pre-pool batch path: spawns one scoped thread per shard per
    /// batch. Semantically identical to
    /// [`ClusterPipeline::ingest_batch_sharded`]; kept as the baseline
    /// experiment E15 measures the worker pool against.
    pub fn ingest_batch_sharded_spawning(
        &self,
        batch: &[EmuPacket],
        received_at: EmuTime,
    ) -> Vec<Vec<Delivery>> {
        let partitions = self.partition(batch);
        let mut results: Vec<Vec<Delivery>> = Vec::with_capacity(self.shards.len());
        let scope_result = thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    let scene_lock = &self.scene;
                    let shards = &self.shards;
                    scope.spawn(move |_| {
                        let scene = scene_lock.read();
                        let shard_slot = &shards[i];
                        let mut shard = shard_slot.lock();
                        shard.ingested.add(part.len() as u64);
                        let recorder = Arc::clone(&shard.recorder);
                        let mut targets = std::mem::take(&mut shard.scratch);
                        let mut out = Vec::new();
                        for pkt in part {
                            ingest_on(
                                &scene,
                                &recorder,
                                &mut shard.rng,
                                pkt,
                                received_at,
                                &mut targets,
                                &mut out,
                            );
                        }
                        shard.scratch = targets;
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(out) => results.push(out),
                    // A shard worker panicked: re-raise its payload on the
                    // caller rather than aborting with a misleading message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
        results
    }

    /// Splits a batch into per-shard slices (owned: payloads are
    /// refcounted, so the clones are cheap) and refreshes the batch
    /// metrics.
    fn partition(&self, batch: &[EmuPacket]) -> Vec<Vec<EmuPacket>> {
        let mut partitions: Vec<Vec<EmuPacket>> = vec![Vec::new(); self.shards.len()];
        for pkt in batch {
            partitions[self.shard_of(pkt.src)].push(pkt.clone());
        }
        self.batch_size.observe(batch.len() as u64);
        self.imbalance_pct.set(imbalance_pct(&partitions));
        partitions
    }
}

impl std::fmt::Debug for ClusterPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPipeline")
            .field("shards", &self.shards.len())
            .field("nodes", &self.scene.read().len())
            .finish()
    }
}

/// Shard imbalance of one batch partitioning: `100·(max−mean)/mean` over
/// the per-shard sizes, 0 for an empty batch.
fn imbalance_pct(partitions: &[Vec<EmuPacket>]) -> i64 {
    let total: usize = partitions.iter().map(Vec::len).sum();
    if total == 0 || partitions.is_empty() {
        return 0;
    }
    let max = partitions.iter().map(Vec::len).max().unwrap_or(0) as f64;
    let mean = total as f64 / partitions.len() as f64;
    (100.0 * (max - mean) / mean).round() as i64
}

/// The shared per-packet decision logic (identical semantics to
/// [`crate::engine::Pipeline::ingest`] with the baseline models). Drops
/// are stamped with the client's `sent_at` — the same base the forward
/// times use — not the server receipt time. Deliveries are appended to
/// `out`; `targets` is a reused routing buffer, so the steady-state path
/// performs no heap allocation of its own.
fn ingest_on(
    scene: &Scene,
    recorder: &Recorder,
    rng: &mut EmuRng,
    pkt: &EmuPacket,
    received_at: EmuTime,
    targets: &mut Vec<NodeId>,
    out: &mut Vec<Delivery>,
) {
    recorder.record_traffic(TrafficRecord::ingress(pkt, received_at));
    scene.route_into(pkt.src, pkt.channel, pkt.dst, targets);
    if targets.is_empty() {
        if let Destination::Unicast(d) = pkt.dst {
            recorder.record_traffic(TrafficRecord::Drop {
                id: pkt.id,
                to: d,
                at: pkt.sent_at,
                reason: DropReason::NoRoute,
            });
        }
        return;
    }
    out.reserve(targets.len());
    for &to in targets.iter() {
        match scene.decide(pkt.src, to, pkt.channel, pkt.wire_size(), rng) {
            Some(ForwardDecision::ForwardAfter(d)) => {
                out.push(Delivery { to, fire_at: pkt.sent_at + d, packet: pkt.clone() });
            }
            Some(ForwardDecision::Drop) => {
                recorder.record_traffic(TrafficRecord::Drop {
                    id: pkt.id,
                    to,
                    at: pkt.sent_at,
                    reason: DropReason::Loss,
                });
            }
            None => {
                recorder.record_traffic(TrafficRecord::Drop {
                    id: pkt.id,
                    to,
                    at: pkt.sent_at,
                    reason: DropReason::NoRoute,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::packet::HEADER_BYTES;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, PacketId, Point, RadioId};

    fn grid_scene(n: u32) -> Scene {
        let mut s = Scene::new();
        let side = (n as f64).sqrt().ceil() as u32;
        for i in 0..n {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(i),
                    pos: Point::new((i % side) as f64 * 80.0, (i / side) as f64 * 80.0),
                    radios: RadioConfig::single(ChannelId(1), 170.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        }
        s
    }

    fn pkt(id: u64, src: u32) -> EmuPacket {
        EmuPacket::new(
            PacketId(id),
            NodeId(src),
            Destination::Broadcast,
            ChannelId(1),
            RadioId(0),
            EmuTime::from_micros(id),
            vec![0u8; 500 - HEADER_BYTES],
        )
    }

    #[test]
    fn single_shard_matches_pipeline_semantics() {
        let rec_cluster = Arc::new(Recorder::new());
        let cluster = ClusterPipeline::new(
            grid_scene(16),
            Arc::clone(&rec_cluster),
            ClusterConfig { shards: 1, seed: 9 },
        );
        let rec_single = Arc::new(Recorder::new());
        let mut single = crate::engine::Pipeline::new(
            grid_scene(16),
            Arc::clone(&rec_single),
            // The cluster's one shard forks from the root RNG — mirror it.
            {
                let mut root = EmuRng::seed(9);
                root.fork()
            },
        );
        for i in 0..50u64 {
            let p = pkt(i, (i % 16) as u32);
            let a = cluster.ingest(&p, p.sent_at);
            let b = single.ingest(&p, p.sent_at);
            assert_eq!(a, b, "packet {i}");
        }
        // Traffic goes to the shard log; scene ops to the shared one.
        assert_eq!(cluster.traffic_merged().len(), rec_single.traffic().len());
        let _ = rec_cluster;
    }

    #[test]
    fn batch_covers_every_packet_exactly_once() {
        let cluster = ClusterPipeline::new(
            grid_scene(25),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        let batch: Vec<EmuPacket> = (0..200).map(|i| pkt(i, (i % 25) as u32)).collect();
        let _out = cluster.ingest_batch(&batch, EmuTime::from_millis(1));
        let traffic = cluster.traffic_merged();
        let ingress = traffic.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count();
        assert_eq!(ingress, 200);
        // Ideal links: every in-range copy becomes a delivery, none drop.
        let drops = traffic.iter().filter(|r| matches!(r, TrafficRecord::Drop { .. })).count();
        assert_eq!(drops, 0);
        assert!(!_out.is_empty());
        // Each packet fans out to its sender's full neighbor set.
        let expected: usize = batch
            .iter()
            .map(|p| cluster.with_scene(|s| s.route(p.src, p.channel, p.dst).len()))
            .sum();
        assert_eq!(_out.len(), expected);
    }

    #[test]
    fn batch_is_deterministic_for_fixed_shards() {
        let run = || {
            let cluster = ClusterPipeline::new(
                grid_scene(25),
                Arc::new(Recorder::new()),
                ClusterConfig { shards: 4, seed: 7 },
            );
            let batch: Vec<EmuPacket> = (0..100).map(|i| pkt(i, (i % 25) as u32)).collect();
            cluster
                .ingest_batch(&batch, EmuTime::ZERO)
                .into_iter()
                .map(|d| (d.packet.id, d.to, d.fire_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pool_and_spawning_batch_paths_agree() {
        // The worker pool must be bit-identical to the per-batch spawn
        // baseline: same partitioning, same per-shard order, same RNG
        // draws.
        let mk = || {
            ClusterPipeline::new(
                grid_scene(25),
                Arc::new(Recorder::new()),
                ClusterConfig { shards: 4, seed: 7 },
            )
        };
        let batch: Vec<EmuPacket> = (0..150).map(|i| pkt(i, (i % 25) as u32)).collect();
        let pooled = mk().ingest_batch_sharded(&batch, EmuTime::ZERO);
        let spawned = mk().ingest_batch_sharded_spawning(&batch, EmuTime::ZERO);
        assert_eq!(pooled, spawned);
    }

    #[test]
    fn worker_pool_survives_many_batches_and_shuts_down_cleanly() {
        let cluster = ClusterPipeline::new(
            grid_scene(9),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 3, seed: 1 },
        );
        let mut total = 0usize;
        for round in 0..20u64 {
            let batch: Vec<EmuPacket> =
                (0..30).map(|i| pkt(round * 30 + i, ((round * 30 + i) % 9) as u32)).collect();
            total += cluster.ingest_batch(&batch, EmuTime::ZERO).len();
        }
        assert!(total > 0);
        // Dropping the cluster joins its workers (hangs here = leak).
        drop(cluster);
    }

    #[test]
    fn scene_ops_remain_centralized_and_visible_to_all_shards() {
        let cluster = ClusterPipeline::new(
            grid_scene(4),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        // Remove node 1; every shard's next lookup sees it gone.
        cluster.apply_op(EmuTime::from_secs(1), SceneOp::RemoveNode { id: NodeId(1) }).unwrap();
        for src in [0u32, 2, 3] {
            let out = cluster.ingest(&pkt(100 + src as u64, src), EmuTime::from_secs(1));
            assert!(out.iter().all(|d| d.to != NodeId(1)), "shard for {src} saw a ghost");
        }
        assert_eq!(cluster.with_scene(|s| s.len()), 3);
    }

    #[test]
    fn mobility_advances_under_the_cluster() {
        let mut scene = grid_scene(1);
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(99),
                    pos: Point::ORIGIN,
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        let cluster =
            ClusterPipeline::new(scene, Arc::new(Recorder::new()), ClusterConfig::default());
        cluster.advance_mobility(EmuTime::from_secs(3));
        let pos = cluster.with_scene(|s| s.node(NodeId(99)).unwrap().pos);
        assert!((pos.x - 30.0).abs() < 1e-6, "{pos}");
    }

    #[test]
    fn cluster_mobility_records_positions_for_replay() {
        // Mirrors `mobility_advance_records_positions_for_replay` on the
        // single pipeline: cluster runs must replay exactly too.
        let rec = Arc::new(Recorder::new());
        let cluster =
            ClusterPipeline::new(Scene::new(), Arc::clone(&rec), ClusterConfig::default());
        cluster
            .apply_op(
                EmuTime::ZERO,
                SceneOp::AddNode {
                    id: NodeId(1),
                    pos: Point::ORIGIN,
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        cluster.advance_mobility(EmuTime::from_secs(1));
        cluster.advance_mobility(EmuTime::from_secs(2));
        // A repeated horizon is a no-op and must not re-record.
        cluster.advance_mobility(EmuTime::from_secs(2));
        let ops = rec.scene();
        assert_eq!(ops.len(), 3, "AddNode + one MoveNode per advance");
        match &ops[2].op {
            SceneOp::MoveNode { id, pos } => {
                assert_eq!(*id, NodeId(1));
                assert!((pos.x - 20.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        let engine = poem_record::ReplayEngine::new(ops);
        let replayed = engine.scene_at(EmuTime::from_secs(2)).unwrap();
        assert!((replayed.node(NodeId(1)).unwrap().pos.x - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_metrics_cover_shards_and_batches() {
        let cluster = ClusterPipeline::new(
            grid_scene(25),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        // 100 batched + 1 single ingest from source 2 (shard 2).
        let batch: Vec<EmuPacket> = (0..100).map(|i| pkt(i, (i % 25) as u32)).collect();
        cluster.ingest_batch(&batch, EmuTime::ZERO);
        cluster.ingest(&pkt(200, 2), EmuTime::ZERO);
        let snap = cluster.metrics();
        assert!(!snap.is_empty());
        let per_shard: u64 = (0..4)
            .map(|i| snap.counter(&format!("poem_shard_ingest_total{{shard=\"{i}\"}}")).unwrap())
            .sum();
        assert_eq!(per_shard, 101);
        let h = snap.histogram("poem_batch_size_packets").unwrap();
        assert_eq!((h.count, h.sum), (1, 100));
        // 25 sources round-robin over 4 shards: shard 0 owns 7 of them →
        // visibly imbalanced, and the gauge is non-negative by definition.
        assert!(snap.gauge("poem_shard_imbalance_pct").unwrap() >= 0);
    }

    #[test]
    fn cluster_drops_are_stamped_with_the_client_stamp() {
        // A unicast to a non-neighbor records NoRoute at the client stamp.
        let cluster = ClusterPipeline::new(
            grid_scene(4),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 2, seed: 1 },
        );
        let sent = EmuTime::from_micros(55);
        let p = EmuPacket::new(
            PacketId(1),
            NodeId(0),
            Destination::Unicast(NodeId(77)),
            ChannelId(1),
            RadioId(0),
            sent,
            vec![0u8; 64],
        );
        let out = cluster.ingest(&p, EmuTime::from_secs(9)); // late receipt
        assert!(out.is_empty());
        match cluster.traffic_merged()[1] {
            TrafficRecord::Drop { at, reason: DropReason::NoRoute, .. } => assert_eq!(at, sent),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ClusterPipeline::new(
            Scene::new(),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 0, seed: 0 },
        );
    }
}
