//! The parallelized server cluster — §7's future work: "expand the one
//! server to a parallelized cluster to conquer the performance bottleneck
//! so as to support fine-granularity performance evaluations".
//!
//! [`ClusterPipeline`] shards the per-packet work (§3.2 steps 2–3: the
//! neighbor lookup and the drop/forward-time decisions) across worker
//! shards by source VMN. The scene stays **centralized** behind a
//! read-write lock — preserving PoEm's consistency argument: scene
//! construction is still a single serialized writer, only the
//! embarrassingly parallel per-packet decisions fan out. Each shard owns
//! an independent RNG (forked from the cluster seed), so runs are
//! deterministic *per shard assignment*.
//!
//! The cluster path implements the paper's baseline models; the optional
//! MAC collision domain is inherently a global serialization point and is
//! deliberately not offered here (see DESIGN.md).

use crate::engine::Delivery;
use crossbeam::thread;
use parking_lot::{Mutex, RwLock};
use poem_core::linkmodel::ForwardDecision;
use poem_core::packet::Destination;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::{EmuPacket, EmuRng, EmuTime, NodeId};
use poem_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use poem_record::{DropReason, Recorder, SceneRecord, TrafficRecord};
use std::sync::Arc;

/// Bucket bounds (packets) for the per-call batch-size distribution.
const BATCH_SIZE_BOUNDS: &[u64] = &[8, 32, 128, 512, 2_048, 8_192, 32_768];

/// Cluster sizing.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Seed forked into every shard's RNG.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { shards: 4, seed: 0 }
    }
}

struct Shard {
    rng: EmuRng,
    /// Per-shard recorder — shards never contend on the log lock; the
    /// logs are merged (time-ordered) on demand.
    recorder: Arc<Recorder>,
    /// Packets this shard has ingested
    /// (`poem_shard_ingest_total{shard="i"}`).
    ingested: Arc<Counter>,
}

/// A sharded emulation pipeline.
pub struct ClusterPipeline {
    scene: RwLock<Scene>,
    shards: Vec<Mutex<Shard>>,
    /// Scene-op log (single writer, so unsharded).
    recorder: Arc<Recorder>,
    mobility_rng: Mutex<EmuRng>,
    registry: Arc<Registry>,
    /// Distribution of `ingest_batch*` call sizes (packets).
    batch_size: Arc<Histogram>,
    /// Shard imbalance of the most recent batch: `100·(max−mean)/mean`
    /// over the per-shard partition sizes (0 = perfectly balanced).
    imbalance_pct: Arc<Gauge>,
}

impl ClusterPipeline {
    /// Builds a cluster over an initial scene.
    pub fn new(scene: Scene, recorder: Arc<Recorder>, config: ClusterConfig) -> Self {
        // Constructor precondition on operator-supplied config, checked once
        // at startup — not reachable from client traffic.
        // poem-lint: allow(panic_safety): startup config validation
        assert!(config.shards >= 1, "a cluster needs at least one shard");
        let registry = Arc::new(Registry::new());
        let mut root = EmuRng::seed(config.seed);
        let shards = (0..config.shards)
            .map(|i| {
                Mutex::new(Shard {
                    rng: root.fork(),
                    recorder: Arc::new(Recorder::new()),
                    ingested: registry
                        .counter(&format!("poem_shard_ingest_total{{shard=\"{i}\"}}")),
                })
            })
            .collect();
        ClusterPipeline {
            scene: RwLock::new(scene),
            shards,
            recorder,
            mobility_rng: Mutex::new(root.fork()),
            batch_size: registry.histogram("poem_batch_size_packets", BATCH_SIZE_BOUNDS),
            imbalance_pct: registry.gauge("poem_shard_imbalance_pct"),
            registry,
        }
    }

    /// The cluster's metric registry.
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every cluster metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns a source VMN.
    pub fn shard_of(&self, node: NodeId) -> usize {
        node.0 as usize % self.shards.len()
    }

    /// The scene-op recorder (traffic records live in per-shard logs;
    /// see [`ClusterPipeline::traffic_merged`]).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// All shards' traffic records merged into one time-ordered log.
    pub fn traffic_merged(&self) -> Vec<TrafficRecord> {
        let mut all: Vec<TrafficRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().recorder.traffic());
        }
        all.sort_by_key(|r| r.at());
        all
    }

    /// Runs `f` with read access to the scene.
    pub fn with_scene<R>(&self, f: impl FnOnce(&Scene) -> R) -> R {
        f(&self.scene.read())
    }

    /// Applies a scene op (single serialized writer — the centralized
    /// scene-construction path).
    pub fn apply_op(&self, at: EmuTime, op: SceneOp) -> Result<(), SceneError> {
        self.scene.write().apply(at, &op)?;
        self.recorder.record_scene(SceneRecord::new(at, op));
        Ok(())
    }

    /// Integrates mobility up to `to` (serialized writer).
    pub fn advance_mobility(&self, to: EmuTime) {
        let mut rng = self.mobility_rng.lock();
        self.scene.write().advance_mobility(to, &mut rng);
    }

    /// Ingests one packet on its owning shard (steps 2–3).
    pub fn ingest(&self, pkt: &EmuPacket, received_at: EmuTime) -> Vec<Delivery> {
        let shard = &self.shards[self.shard_of(pkt.src)];
        let mut shard = shard.lock();
        let scene = self.scene.read();
        let recorder = Arc::clone(&shard.recorder);
        shard.ingested.inc();
        ingest_on(&scene, &recorder, &mut shard.rng, pkt, received_at)
    }

    /// Ingests a batch in parallel: packets are partitioned by their
    /// owning shard and each shard processes its share on its own worker
    /// thread. Returns all deliveries (ordering: by shard, then by the
    /// batch order within a shard — deterministic for a fixed shard
    /// count).
    pub fn ingest_batch(&self, batch: &[EmuPacket], received_at: EmuTime) -> Vec<Delivery> {
        self.ingest_batch_sharded(batch, received_at).into_iter().flatten().collect()
    }

    /// Like [`ClusterPipeline::ingest_batch`] but returns one delivery
    /// vector per shard, skipping the serial merge — the fast path when
    /// the consumer (e.g. per-shard scanning threads) can work sharded.
    pub fn ingest_batch_sharded(
        &self,
        batch: &[EmuPacket],
        received_at: EmuTime,
    ) -> Vec<Vec<Delivery>> {
        let n = self.shards.len();
        let mut partitions: Vec<Vec<&EmuPacket>> = vec![Vec::new(); n];
        for pkt in batch {
            partitions[self.shard_of(pkt.src)].push(pkt);
        }
        self.batch_size.observe(batch.len() as u64);
        self.imbalance_pct.set(imbalance_pct(&partitions));
        let mut results: Vec<Vec<Delivery>> = Vec::with_capacity(n);
        let scope_result = thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(i, part)| {
                    let shard = &self.shards[i];
                    let scene = &self.scene;
                    scope.spawn(move |_| {
                        let mut shard = shard.lock();
                        let scene = scene.read();
                        let recorder = Arc::clone(&shard.recorder);
                        shard.ingested.add(part.len() as u64);
                        let mut out = Vec::new();
                        for pkt in part {
                            out.extend(ingest_on(
                                &scene,
                                &recorder,
                                &mut shard.rng,
                                pkt,
                                received_at,
                            ));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok(out) => results.push(out),
                    // A shard worker panicked: re-raise its payload on the
                    // caller rather than aborting with a misleading message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
        results
    }
}

impl std::fmt::Debug for ClusterPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPipeline")
            .field("shards", &self.shards.len())
            .field("nodes", &self.scene.read().len())
            .finish()
    }
}

/// Shard imbalance of one batch partitioning: `100·(max−mean)/mean` over
/// the per-shard sizes, 0 for an empty batch.
fn imbalance_pct(partitions: &[Vec<&EmuPacket>]) -> i64 {
    let total: usize = partitions.iter().map(Vec::len).sum();
    if total == 0 || partitions.is_empty() {
        return 0;
    }
    let max = partitions.iter().map(Vec::len).max().unwrap_or(0) as f64;
    let mean = total as f64 / partitions.len() as f64;
    (100.0 * (max - mean) / mean).round() as i64
}

/// The shared per-packet decision logic (identical semantics to
/// [`crate::engine::Pipeline::ingest`] with the baseline models). Drops
/// are stamped with the client's `sent_at` — the same base the forward
/// times use — not the server receipt time.
fn ingest_on(
    scene: &Scene,
    recorder: &Recorder,
    rng: &mut EmuRng,
    pkt: &EmuPacket,
    received_at: EmuTime,
) -> Vec<Delivery> {
    recorder.record_traffic(TrafficRecord::ingress(pkt, received_at));
    let targets = scene.route(pkt.src, pkt.channel, pkt.dst);
    if targets.is_empty() {
        if let Destination::Unicast(d) = pkt.dst {
            recorder.record_traffic(TrafficRecord::Drop {
                id: pkt.id,
                to: d,
                at: pkt.sent_at,
                reason: DropReason::NoRoute,
            });
        }
        return Vec::new();
    }
    let mut out = Vec::with_capacity(targets.len());
    for to in targets {
        match scene.decide(pkt.src, to, pkt.channel, pkt.wire_size(), rng) {
            Some(ForwardDecision::ForwardAfter(d)) => {
                out.push(Delivery { to, fire_at: pkt.sent_at + d, packet: pkt.clone() });
            }
            Some(ForwardDecision::Drop) => {
                recorder.record_traffic(TrafficRecord::Drop {
                    id: pkt.id,
                    to,
                    at: pkt.sent_at,
                    reason: DropReason::Loss,
                });
            }
            None => {
                recorder.record_traffic(TrafficRecord::Drop {
                    id: pkt.id,
                    to,
                    at: pkt.sent_at,
                    reason: DropReason::NoRoute,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::packet::HEADER_BYTES;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, PacketId, Point, RadioId};

    fn grid_scene(n: u32) -> Scene {
        let mut s = Scene::new();
        let side = (n as f64).sqrt().ceil() as u32;
        for i in 0..n {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(i),
                    pos: Point::new((i % side) as f64 * 80.0, (i / side) as f64 * 80.0),
                    radios: RadioConfig::single(ChannelId(1), 170.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        }
        s
    }

    fn pkt(id: u64, src: u32) -> EmuPacket {
        EmuPacket::new(
            PacketId(id),
            NodeId(src),
            Destination::Broadcast,
            ChannelId(1),
            RadioId(0),
            EmuTime::from_micros(id),
            vec![0u8; 500 - HEADER_BYTES],
        )
    }

    #[test]
    fn single_shard_matches_pipeline_semantics() {
        let rec_cluster = Arc::new(Recorder::new());
        let cluster = ClusterPipeline::new(
            grid_scene(16),
            Arc::clone(&rec_cluster),
            ClusterConfig { shards: 1, seed: 9 },
        );
        let rec_single = Arc::new(Recorder::new());
        let mut single = crate::engine::Pipeline::new(
            grid_scene(16),
            Arc::clone(&rec_single),
            // The cluster's one shard forks from the root RNG — mirror it.
            {
                let mut root = EmuRng::seed(9);
                root.fork()
            },
        );
        for i in 0..50u64 {
            let p = pkt(i, (i % 16) as u32);
            let a = cluster.ingest(&p, p.sent_at);
            let b = single.ingest(&p, p.sent_at);
            assert_eq!(a, b, "packet {i}");
        }
        // Traffic goes to the shard log; scene ops to the shared one.
        assert_eq!(cluster.traffic_merged().len(), rec_single.traffic().len());
        let _ = rec_cluster;
    }

    #[test]
    fn batch_covers_every_packet_exactly_once() {
        let cluster = ClusterPipeline::new(
            grid_scene(25),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        let batch: Vec<EmuPacket> = (0..200).map(|i| pkt(i, (i % 25) as u32)).collect();
        let _out = cluster.ingest_batch(&batch, EmuTime::from_millis(1));
        let traffic = cluster.traffic_merged();
        let ingress = traffic.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count();
        assert_eq!(ingress, 200);
        // Ideal links: every in-range copy becomes a delivery, none drop.
        let drops = traffic.iter().filter(|r| matches!(r, TrafficRecord::Drop { .. })).count();
        assert_eq!(drops, 0);
        assert!(!_out.is_empty());
        // Each packet fans out to its sender's full neighbor set.
        let expected: usize = batch
            .iter()
            .map(|p| cluster.with_scene(|s| s.route(p.src, p.channel, p.dst).len()))
            .sum();
        assert_eq!(_out.len(), expected);
    }

    #[test]
    fn batch_is_deterministic_for_fixed_shards() {
        let run = || {
            let cluster = ClusterPipeline::new(
                grid_scene(25),
                Arc::new(Recorder::new()),
                ClusterConfig { shards: 4, seed: 7 },
            );
            let batch: Vec<EmuPacket> = (0..100).map(|i| pkt(i, (i % 25) as u32)).collect();
            cluster
                .ingest_batch(&batch, EmuTime::ZERO)
                .into_iter()
                .map(|d| (d.packet.id, d.to, d.fire_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scene_ops_remain_centralized_and_visible_to_all_shards() {
        let cluster = ClusterPipeline::new(
            grid_scene(4),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        // Remove node 1; every shard's next lookup sees it gone.
        cluster.apply_op(EmuTime::from_secs(1), SceneOp::RemoveNode { id: NodeId(1) }).unwrap();
        for src in [0u32, 2, 3] {
            let out = cluster.ingest(&pkt(100 + src as u64, src), EmuTime::from_secs(1));
            assert!(out.iter().all(|d| d.to != NodeId(1)), "shard for {src} saw a ghost");
        }
        assert_eq!(cluster.with_scene(|s| s.len()), 3);
    }

    #[test]
    fn mobility_advances_under_the_cluster() {
        let mut scene = grid_scene(1);
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(99),
                    pos: Point::ORIGIN,
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        let cluster =
            ClusterPipeline::new(scene, Arc::new(Recorder::new()), ClusterConfig::default());
        cluster.advance_mobility(EmuTime::from_secs(3));
        let pos = cluster.with_scene(|s| s.node(NodeId(99)).unwrap().pos);
        assert!((pos.x - 30.0).abs() < 1e-6, "{pos}");
    }

    #[test]
    fn cluster_metrics_cover_shards_and_batches() {
        let cluster = ClusterPipeline::new(
            grid_scene(25),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 4, seed: 1 },
        );
        // 100 batched + 1 single ingest from source 2 (shard 2).
        let batch: Vec<EmuPacket> = (0..100).map(|i| pkt(i, (i % 25) as u32)).collect();
        cluster.ingest_batch(&batch, EmuTime::ZERO);
        cluster.ingest(&pkt(200, 2), EmuTime::ZERO);
        let snap = cluster.metrics();
        assert!(!snap.is_empty());
        let per_shard: u64 = (0..4)
            .map(|i| snap.counter(&format!("poem_shard_ingest_total{{shard=\"{i}\"}}")).unwrap())
            .sum();
        assert_eq!(per_shard, 101);
        let h = snap.histogram("poem_batch_size_packets").unwrap();
        assert_eq!((h.count, h.sum), (1, 100));
        // 25 sources round-robin over 4 shards: shard 0 owns 7 of them →
        // visibly imbalanced, and the gauge is non-negative by definition.
        assert!(snap.gauge("poem_shard_imbalance_pct").unwrap() >= 0);
    }

    #[test]
    fn cluster_drops_are_stamped_with_the_client_stamp() {
        // A unicast to a non-neighbor records NoRoute at the client stamp.
        let cluster = ClusterPipeline::new(
            grid_scene(4),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 2, seed: 1 },
        );
        let sent = EmuTime::from_micros(55);
        let p = EmuPacket::new(
            PacketId(1),
            NodeId(0),
            Destination::Unicast(NodeId(77)),
            ChannelId(1),
            RadioId(0),
            sent,
            vec![0u8; 64],
        );
        let out = cluster.ingest(&p, EmuTime::from_secs(9)); // late receipt
        assert!(out.is_empty());
        match cluster.traffic_merged()[1] {
            TrafficRecord::Drop { at, reason: DropReason::NoRoute, .. } => assert_eq!(at, sent),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ClusterPipeline::new(
            Scene::new(),
            Arc::new(Recorder::new()),
            ClusterConfig { shards: 0, seed: 0 },
        );
    }
}
