//! Scenario scripts — the paper's future-work item "fine-granularity
//! performance evaluations driven by scenario scripts", and this
//! reproduction's replacement for the GUI's interactive operations.
//!
//! A script is a line-oriented text format; each non-empty, non-comment
//! line is `at <seconds> <command>`:
//!
//! ```text
//! # Fig. 8 proof-of-concept scene
//! at 0  add VMN1 0 0 radio ch1 200
//! at 0  add VMN2 100 0 radio ch1 200
//! at 0  add VMN3 0 150 radio ch1 200
//! at 0  loss VMN1 p0 0.1 p1 0.9 d0 50
//! at 6  range VMN1 radio0 120
//! at 14 retune VMN2 radio0 ch2
//! at 20 move VMN3 50 120
//! at 22 mobility VMN3 walk 1 5 0.5
//! at 25 remove VMN2
//! ```
//!
//! Commands:
//!
//! * `add <node> <x> <y> radio <ch> <range> [radio <ch> <range> ...]`
//! * `remove <node>`
//! * `move <node> <x> <y>` — drag-and-drop
//! * `range <node> radio<k> <range>`
//! * `retune <node> radio<k> <ch>`
//! * `mobility <node> still | linear <deg> <speed> | walk <min> <max> <step> | waypoint <min> <max> <pause>`
//! * `loss <node> p0 <v> p1 <v> d0 <v>` — Table-3-style loss parameters
//! * `bandwidth <node> max <bps> min <bps>`
//! * `arena <width> <height>`
//! * `profile <node> <name>` / `profile <node> none` — bind (or unbind)
//!   an empirical link profile from the scenario's profile library
//!   (`poem-profiles`) to the node's outgoing links. Names are resolved
//!   by [`Script::resolve_profiles`]; an unknown name is a structured
//!   error carrying the binding's line number.
//!
//! Fault-injection commands (`poem-chaos`) schedule entries of the
//! script's [`FaultPlan`] rather than scene ops:
//!
//! * `fault corrupt|truncate|duplicate|reorder <node> <prob>`
//! * `fault disconnect <node>`
//! * `fault stall <node> <secs>`
//! * `fault slowreader <node> <frames> <secs>`
//! * `fault flap <node> radio<k> <factor> <secs>`
//! * `fault crash <node> [restart <secs>]`
//! * `fault jam <channel> <secs>`
//! * `fault skew <node> <secs>` (may be negative)
//! * `fault jitter <node> <secs>`
//!
//! Node names are `VMN<n>` or a bare integer; channels are `ch<n>` or a
//! bare integer. Parsing is strict: any malformed line is an error with
//! its line number.

use poem_chaos::{FaultKind, FaultPlan};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::{Arena, MobilityModel};
use poem_core::radio::{Radio, RadioConfig};
use poem_core::scene::SceneOp;
use poem_core::{ChannelId, EmuDuration, EmuTime, NodeId, RadioId};
use std::fmt;

/// One parsed script entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptEntry {
    /// When the op fires.
    pub at: EmuTime,
    /// The op.
    pub op: SceneOp,
}

/// One `profile <node> <name|none>` line, kept symbolic until a
/// [`poem_profiles::ProfileLibrary`] is available to resolve the name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBinding {
    /// When the binding fires.
    pub at: EmuTime,
    /// The node whose outgoing links switch backend.
    pub node: NodeId,
    /// The profile name, or `None` for `none` (back to analytic models).
    pub name: Option<String>,
    /// 1-based script line, for resolution errors.
    pub line: usize,
}

/// A parsed scenario script, time-ordered. Scene entries, profile
/// bindings, and the fault plan are kept separate: ops drive the scene,
/// bindings resolve against a profile library, faults drive `poem-chaos`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Script {
    entries: Vec<ScriptEntry>,
    bindings: Vec<ProfileBinding>,
    faults: FaultPlan,
}

/// What one script line parsed into.
enum Parsed {
    Scene(ScriptEntry),
    Profile(ProfileBinding),
    Fault(EmuTime, FaultKind),
}

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_node(tok: &str, line: usize) -> Result<NodeId, ParseError> {
    let digits = tok.strip_prefix("VMN").unwrap_or(tok);
    digits
        .parse::<u32>()
        .map(NodeId)
        .map_err(|_| err(line, format!("bad node id `{tok}` (want VMN<n> or <n>)")))
}

fn parse_channel(tok: &str, line: usize) -> Result<ChannelId, ParseError> {
    let digits = tok.strip_prefix("ch").unwrap_or(tok);
    digits
        .parse::<u16>()
        .map(ChannelId)
        .map_err(|_| err(line, format!("bad channel `{tok}` (want ch<n> or <n>)")))
}

fn parse_radio_slot(tok: &str, line: usize) -> Result<RadioId, ParseError> {
    let digits = tok.strip_prefix("radio").unwrap_or(tok);
    digits
        .parse::<u8>()
        .map(RadioId)
        .map_err(|_| err(line, format!("bad radio slot `{tok}` (want radio<k> or <k>)")))
}

fn parse_f64(tok: &str, line: usize, what: &str) -> Result<f64, ParseError> {
    let v: f64 =
        tok.parse().map_err(|_| err(line, format!("bad {what} `{tok}` (want a number)")))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(err(line, format!("{what} must be finite")))
    }
}

impl Script {
    /// Parses a full script text.
    ///
    /// ```
    /// use poem_server::script::Script;
    /// let s = Script::parse("
    ///     at 0 add VMN1 0 0 radio ch1 200
    ///     at 5 move VMN1 50 50   # drag-and-drop
    /// ").unwrap();
    /// assert_eq!(s.len(), 2);
    /// assert_eq!(s.end(), poem_core::EmuTime::from_secs(5));
    /// ```
    pub fn parse(text: &str) -> Result<Script, ParseError> {
        let mut entries = Vec::new();
        let mut bindings = Vec::new();
        let mut faults = FaultPlan::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            match Self::parse_line(line, line_no)? {
                Parsed::Scene(entry) => entries.push(entry),
                Parsed::Profile(binding) => bindings.push(binding),
                Parsed::Fault(at, kind) => {
                    faults.push(at, kind);
                }
            }
        }
        entries.sort_by_key(|e| e.at);
        bindings.sort_by_key(|b| b.at);
        Ok(Script { entries, bindings, faults })
    }

    fn parse_line(line: &str, n: usize) -> Result<Parsed, ParseError> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 3 || toks[0] != "at" {
            return Err(err(n, "expected `at <seconds> <command> ...`"));
        }
        let secs = parse_f64(toks[1], n, "time")?;
        if secs < 0.0 {
            return Err(err(n, "time must be ≥ 0"));
        }
        let at = EmuTime::from_secs_f64(secs);
        let args = &toks[3..];
        if toks[2] == "fault" {
            return Ok(Parsed::Fault(at, Self::parse_fault(args, n)?));
        }
        if toks[2] == "profile" {
            let [node, name] = args else {
                return Err(err(n, "usage: profile <node> <name|none>"));
            };
            let node = parse_node(node, n)?;
            let name = match *name {
                "none" => None,
                tok if !tok.is_empty()
                    && tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') =>
                {
                    Some(tok.to_string())
                }
                tok => {
                    return Err(err(
                        n,
                        format!("bad profile name `{tok}` (want [A-Za-z0-9_-]+ or `none`)"),
                    ))
                }
            };
            return Ok(Parsed::Profile(ProfileBinding { at, node, name, line: n }));
        }
        let op = match toks[2] {
            "add" => Self::parse_add(args, n)?,
            "remove" => {
                let [node] = args else {
                    return Err(err(n, "usage: remove <node>"));
                };
                SceneOp::RemoveNode { id: parse_node(node, n)? }
            }
            "move" => {
                let [node, x, y] = args else {
                    return Err(err(n, "usage: move <node> <x> <y>"));
                };
                SceneOp::MoveNode {
                    id: parse_node(node, n)?,
                    pos: poem_core::Point::new(parse_f64(x, n, "x")?, parse_f64(y, n, "y")?),
                }
            }
            "range" => {
                let [node, slot, range] = args else {
                    return Err(err(n, "usage: range <node> radio<k> <range>"));
                };
                SceneOp::SetRadioRange {
                    id: parse_node(node, n)?,
                    radio: parse_radio_slot(slot, n)?,
                    range: parse_f64(range, n, "range")?,
                }
            }
            "retune" => {
                let [node, slot, ch] = args else {
                    return Err(err(n, "usage: retune <node> radio<k> <channel>"));
                };
                SceneOp::SetRadioChannel {
                    id: parse_node(node, n)?,
                    radio: parse_radio_slot(slot, n)?,
                    channel: parse_channel(ch, n)?,
                }
            }
            "mobility" => Self::parse_mobility(args, n)?,
            "loss" => Self::parse_loss(args, n)?,
            "bandwidth" => Self::parse_bandwidth(args, n)?,
            "arena" => {
                let [w, h] = args else {
                    return Err(err(n, "usage: arena <width> <height>"));
                };
                SceneOp::SetArena {
                    arena: Some(Arena::new(parse_f64(w, n, "width")?, parse_f64(h, n, "height")?)),
                }
            }
            other => return Err(err(n, format!("unknown command `{other}`"))),
        };
        Ok(Parsed::Scene(ScriptEntry { at, op }))
    }

    fn parse_fault(args: &[&str], n: usize) -> Result<FaultKind, ParseError> {
        let usage = "usage: fault corrupt|truncate|duplicate|reorder|disconnect|stall|slowreader|flap|crash|jam|skew|jitter ...";
        let parse_prob = |tok: &str| -> Result<f64, ParseError> {
            let p = parse_f64(tok, n, "probability")?;
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(err(n, "probability must be within [0, 1]"))
            }
        };
        let parse_secs = |tok: &str, what: &str| -> Result<EmuDuration, ParseError> {
            let secs = parse_f64(tok, n, what)?;
            if secs < 0.0 {
                return Err(err(n, format!("{what} must be ≥ 0")));
            }
            Ok(EmuDuration::from_nanos((secs * 1e9) as i64))
        };
        match args {
            ["corrupt", node, prob] => {
                Ok(FaultKind::WireCorrupt { node: parse_node(node, n)?, prob: parse_prob(prob)? })
            }
            ["truncate", node, prob] => {
                Ok(FaultKind::WireTruncate { node: parse_node(node, n)?, prob: parse_prob(prob)? })
            }
            ["duplicate", node, prob] => {
                Ok(FaultKind::WireDuplicate { node: parse_node(node, n)?, prob: parse_prob(prob)? })
            }
            ["reorder", node, prob] => {
                Ok(FaultKind::WireReorder { node: parse_node(node, n)?, prob: parse_prob(prob)? })
            }
            ["disconnect", node] => Ok(FaultKind::Disconnect { node: parse_node(node, n)? }),
            ["stall", node, secs] => Ok(FaultKind::Stall {
                node: parse_node(node, n)?,
                duration: parse_secs(secs, "duration")?,
            }),
            ["slowreader", node, frames, secs] => {
                let buffer: u32 = frames
                    .parse()
                    .map_err(|_| err(n, format!("bad frame count `{frames}` (want an integer)")))?;
                Ok(FaultKind::SlowReader {
                    node: parse_node(node, n)?,
                    buffer,
                    duration: parse_secs(secs, "duration")?,
                })
            }
            ["flap", node, slot, factor, secs] => Ok(FaultKind::LinkFlap {
                node: parse_node(node, n)?,
                radio: parse_radio_slot(slot, n)?,
                factor: parse_f64(factor, n, "range factor")?,
                duration: parse_secs(secs, "duration")?,
            }),
            ["crash", node] => {
                Ok(FaultKind::Crash { node: parse_node(node, n)?, restart_after: None })
            }
            ["crash", node, "restart", secs] => Ok(FaultKind::Crash {
                node: parse_node(node, n)?,
                restart_after: Some(parse_secs(secs, "restart delay")?),
            }),
            ["jam", ch, secs] => Ok(FaultKind::Jam {
                channel: parse_channel(ch, n)?,
                duration: parse_secs(secs, "duration")?,
            }),
            ["skew", node, secs] => {
                // Skew is an offset, not a duration: negative values are
                // meaningful (a clock running behind).
                let offset_secs = parse_f64(secs, n, "skew")?;
                Ok(FaultKind::ClockSkew {
                    node: parse_node(node, n)?,
                    offset: EmuDuration::from_nanos((offset_secs * 1e9) as i64),
                })
            }
            ["jitter", node, secs] => Ok(FaultKind::ClockJitter {
                node: parse_node(node, n)?,
                std_dev: parse_secs(secs, "jitter std-dev")?,
            }),
            _ => Err(err(n, usage)),
        }
    }

    fn parse_add(args: &[&str], n: usize) -> Result<SceneOp, ParseError> {
        if args.len() < 3 {
            return Err(err(n, "usage: add <node> <x> <y> radio <ch> <range> ..."));
        }
        let id = parse_node(args[0], n)?;
        let pos = poem_core::Point::new(parse_f64(args[1], n, "x")?, parse_f64(args[2], n, "y")?);
        let mut radios = Vec::new();
        let mut rest = &args[3..];
        while !rest.is_empty() {
            let ["radio", ch, range, tail @ ..] = rest else {
                return Err(err(
                    n,
                    format!("expected `radio <ch> <range>`, got `{}`", rest.join(" ")),
                ));
            };
            radios.push(Radio::new(parse_channel(ch, n)?, parse_f64(range, n, "range")?));
            rest = tail;
        }
        if radios.is_empty() {
            return Err(err(n, "a node needs at least one `radio <ch> <range>`"));
        }
        Ok(SceneOp::AddNode {
            id,
            pos,
            radios: RadioConfig::from_radios(radios),
            mobility: MobilityModel::Stationary,
            link: LinkParams::default(),
        })
    }

    fn parse_mobility(args: &[&str], n: usize) -> Result<SceneOp, ParseError> {
        let usage = "usage: mobility <node> still | linear <deg> <speed> | walk <min> <max> <step> | waypoint <min> <max> <pause>";
        let (node, spec) = match args {
            [node, rest @ ..] if !rest.is_empty() => (parse_node(node, n)?, rest),
            _ => return Err(err(n, usage)),
        };
        let model = match spec {
            ["still"] => MobilityModel::Stationary,
            ["linear", deg, speed] => MobilityModel::Linear {
                direction_deg: parse_f64(deg, n, "direction")?,
                speed: parse_f64(speed, n, "speed")?,
            },
            ["walk", min, max, step] => MobilityModel::random_walk(
                parse_f64(min, n, "min speed")?,
                parse_f64(max, n, "max speed")?,
                parse_f64(step, n, "time step")?,
            ),
            ["waypoint", min, max, pause] => MobilityModel::RandomWaypoint {
                min_speed: parse_f64(min, n, "min speed")?,
                max_speed: parse_f64(max, n, "max speed")?,
                pause: parse_f64(pause, n, "pause")?,
            },
            _ => return Err(err(n, usage)),
        };
        Ok(SceneOp::SetMobility { id: node, model })
    }

    fn parse_loss(args: &[&str], n: usize) -> Result<SceneOp, ParseError> {
        let ["p0", p0, "p1", p1, "d0", d0] = &args[1..] else {
            return Err(err(n, "usage: loss <node> p0 <v> p1 <v> d0 <v>"));
        };
        let id = parse_node(args[0], n)?;
        Ok(SceneOp::SetLinkParams {
            id,
            params: LinkParams {
                p0: parse_f64(p0, n, "p0")?,
                p1: parse_f64(p1, n, "p1")?,
                d0: parse_f64(d0, n, "d0")?,
                ..LinkParams::default()
            },
        })
    }

    fn parse_bandwidth(args: &[&str], n: usize) -> Result<SceneOp, ParseError> {
        let ["max", max, "min", min] = &args[1..] else {
            return Err(err(n, "usage: bandwidth <node> max <bps> min <bps>"));
        };
        let id = parse_node(args[0], n)?;
        Ok(SceneOp::SetLinkParams {
            id,
            params: LinkParams {
                max_bps: parse_f64(max, n, "max bandwidth")?,
                min_bps: parse_f64(min, n, "min bandwidth")?,
                ..LinkParams::default()
            },
        })
    }

    /// The time-ordered entries.
    pub fn entries(&self) -> &[ScriptEntry] {
        &self.entries
    }

    /// The fault plan parsed from `fault …` lines (empty when none).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The symbolic profile bindings parsed from `profile …` lines,
    /// time-ordered (empty when none).
    pub fn profile_bindings(&self) -> &[ProfileBinding] {
        &self.bindings
    }

    /// Profile-binding count.
    pub fn profile_count(&self) -> usize {
        self.bindings.len()
    }

    /// Resolves every `profile` binding against `lib` into scene ops,
    /// time-ordered. An unknown profile name is a [`ParseError`] carrying
    /// the offending binding's script line, so scenario authors get the
    /// same structured diagnostics as for syntax errors.
    pub fn resolve_profiles(
        &self,
        lib: &poem_profiles::ProfileLibrary,
    ) -> Result<Vec<ScriptEntry>, ParseError> {
        self.bindings
            .iter()
            .map(|b| {
                let profile = match &b.name {
                    None => None,
                    Some(name) => Some(lib.id_of(name).ok_or_else(|| {
                        err(
                            b.line,
                            format!(
                                "unknown profile `{name}` (library has: {})",
                                lib.names().collect::<Vec<_>>().join(", ")
                            ),
                        )
                    })?),
                };
                Ok(ScriptEntry { at: b.at, op: SceneOp::SetLinkProfile { id: b.node, profile } })
            })
            .collect()
    }

    /// Scene-entry count (`fault` lines are counted by [`Self::fault_count`]).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Scheduled fault count.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// True with no entries, no profile bindings, and no faults.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.bindings.is_empty() && self.faults.is_empty()
    }

    /// The last scheduled time — scene op, profile binding, or fault,
    /// whichever is later (useful for picking a run end).
    pub fn end(&self) -> EmuTime {
        let scene_end = self.entries.last().map(|e| e.at).unwrap_or(EmuTime::ZERO);
        let binding_end = self.bindings.last().map(|b| b.at).unwrap_or(EmuTime::ZERO);
        scene_end.max(binding_end).max(self.faults.end())
    }

    /// Installs every entry into a [`crate::sim::SimNet`] as scheduled
    /// ops (entries at t = 0 apply immediately), then installs the fault
    /// plan into the net's chaos engine.
    ///
    /// `profile` bindings are *not* installed here — they need a library
    /// to resolve against; use [`Self::install_with_profiles`].
    pub fn install(&self, net: &mut crate::sim::SimNet) {
        for e in &self.entries {
            if e.at <= net.now() {
                let _ = net.apply_op(e.op.clone());
            } else {
                net.schedule_op(e.at, e.op.clone());
            }
        }
        net.install_faults(&self.faults);
    }

    /// [`Self::install`] plus the empirical side: resolves the script's
    /// `profile` bindings against `lib`, installs the library into the
    /// net (seeded with the net's scenario seed), and schedules the
    /// resulting [`SceneOp::SetLinkProfile`] ops alongside the scene
    /// entries. Fails — touching nothing — when a binding names a
    /// profile `lib` does not have.
    pub fn install_with_profiles(
        &self,
        net: &mut crate::sim::SimNet,
        lib: &poem_profiles::ProfileLibrary,
    ) -> Result<(), ParseError> {
        let resolved = self.resolve_profiles(lib)?;
        net.install_profiles(lib.clone());
        self.install(net);
        for e in resolved {
            if e.at <= net.now() {
                let _ = net.apply_op(e.op.clone());
            } else {
                net.schedule_op(e.at, e.op.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::Point;

    const FIG8: &str = r"
        # Fig. 8 proof-of-concept scene
        at 0  add VMN1 0 0 radio ch1 200
        at 0  add VMN2 100 0 radio ch1 200
        at 0  add VMN3 0 150 radio ch1 200
        at 6  range VMN1 radio0 120
        at 14 retune VMN2 radio0 ch2
    ";

    #[test]
    fn parses_fig8_script() {
        let s = Script::parse(FIG8).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.end(), EmuTime::from_secs(14));
        match &s.entries()[0].op {
            SceneOp::AddNode { id, pos, radios, .. } => {
                assert_eq!(*id, NodeId(1));
                assert_eq!(*pos, Point::new(0.0, 0.0));
                assert_eq!(radios.range_on(ChannelId(1)), Some(200.0));
            }
            other => panic!("{other:?}"),
        }
        match &s.entries()[3].op {
            SceneOp::SetRadioRange { id, radio, range } => {
                assert_eq!(*id, NodeId(1));
                assert_eq!(*radio, RadioId(0));
                assert_eq!(*range, 120.0);
            }
            other => panic!("{other:?}"),
        }
        match &s.entries()[4].op {
            SceneOp::SetRadioChannel { channel, .. } => assert_eq!(*channel, ChannelId(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_radio_add() {
        let s = Script::parse("at 0 add 2 120 0 radio ch1 200 radio ch2 180").unwrap();
        match &s.entries()[0].op {
            SceneOp::AddNode { radios, .. } => {
                assert_eq!(radios.len(), 2);
                assert_eq!(radios.range_on(ChannelId(2)), Some(180.0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mobility_variants() {
        let s = Script::parse(
            "at 1 mobility VMN1 linear 270 10\n\
             at 2 mobility VMN2 walk 1 5 0.5\n\
             at 3 mobility VMN3 waypoint 2 8 1\n\
             at 4 mobility VMN1 still",
        )
        .unwrap();
        let models: Vec<&SceneOp> = s.entries().iter().map(|e| &e.op).collect();
        assert!(matches!(
            models[0],
            SceneOp::SetMobility { model: MobilityModel::Linear { direction_deg, speed }, .. }
                if *direction_deg == 270.0 && *speed == 10.0
        ));
        assert!(matches!(
            models[1],
            SceneOp::SetMobility { model: MobilityModel::FourTuple(_), .. }
        ));
        assert!(matches!(
            models[2],
            SceneOp::SetMobility { model: MobilityModel::RandomWaypoint { .. }, .. }
        ));
        assert!(matches!(models[3], SceneOp::SetMobility { model: MobilityModel::Stationary, .. }));
    }

    #[test]
    fn loss_bandwidth_and_arena() {
        let s = Script::parse(
            "at 0 loss VMN1 p0 0.1 p1 0.9 d0 50\n\
             at 0 bandwidth VMN1 max 11e6 min 1e6\n\
             at 0 arena 500 400",
        )
        .unwrap();
        assert!(matches!(
            &s.entries()[0].op,
            SceneOp::SetLinkParams { params, .. } if params.p1 == 0.9 && params.d0 == 50.0
        ));
        assert!(matches!(
            &s.entries()[1].op,
            SceneOp::SetLinkParams { params, .. } if params.max_bps == 11e6 && params.min_bps == 1e6
        ));
        assert!(matches!(
            &s.entries()[2].op,
            SceneOp::SetArena { arena: Some(a) } if a.width == 500.0 && a.height == 400.0
        ));
    }

    #[test]
    fn entries_are_time_sorted() {
        let s = Script::parse(
            "at 9 remove VMN1\n\
             at 0 add VMN1 0 0 radio ch1 100\n\
             at 4 move VMN1 10 10",
        )
        .unwrap();
        let times: Vec<EmuTime> = s.entries().iter().map(|e| e.at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = Script::parse("\n  # nothing\n\nat 1 remove VMN1 # trailing comment\n").unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("at x remove VMN1", 1),
            ("at 1 remove", 1),
            ("\nat 1 warp VMN1", 2),
            ("at 1 add VMN1 0 0", 1),               // no radios
            ("at 1 add VMN1 0 0 radio chX 100", 1), // bad channel
            ("at -1 remove VMN1", 1),               // negative time
            ("at 1 mobility VMN1 fly 3", 1),        // bad model
            ("at 1 move VMN1 1", 1),                // missing coord
        ];
        for (text, line) in cases {
            let e = Script::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text}: {e}");
        }
    }

    #[test]
    fn script_drives_the_harness() {
        let mut net = crate::sim::SimNet::new(crate::sim::SimConfig::default());
        let s = Script::parse(
            "at 0 add VMN1 0 0 radio ch1 100\n\
             at 0 add VMN2 50 0 radio ch1 100\n\
             at 2 move VMN2 500 0\n\
             at 4 remove VMN1",
        )
        .unwrap();
        s.install(&mut net);
        net.run_until(EmuTime::from_secs(1));
        assert_eq!(net.scene().len(), 2);
        net.run_until(EmuTime::from_secs(3));
        assert_eq!(net.scene().node(NodeId(2)).unwrap().pos, Point::new(500.0, 0.0));
        net.run_until(EmuTime::from_secs(5));
        assert_eq!(net.scene().len(), 1);
        assert!(net.scene().node(NodeId(1)).is_none());
    }

    #[test]
    fn parses_fault_commands_into_a_plan() {
        let s = Script::parse(
            "at 0 add VMN1 0 0 radio ch1 200\n\
             at 1 fault corrupt VMN1 0.25\n\
             at 2 fault stall VMN2 1.5\n\
             at 2.5 fault slowreader VMN2 4 2\n\
             at 3 fault flap VMN1 radio0 0.5 2\n\
             at 4 fault crash VMN3 restart 3\n\
             at 5 fault jam ch1 2\n\
             at 6 fault skew VMN1 -0.5\n\
             at 7 fault jitter VMN2 0.01\n\
             at 8 fault disconnect VMN3",
        )
        .unwrap();
        // `fault` lines do not count as scene entries.
        assert_eq!(s.len(), 1);
        assert_eq!(s.fault_count(), 9);
        assert_eq!(s.end(), EmuTime::from_secs(8));
        let specs = s.faults().specs();
        assert!(matches!(
            specs[0].kind,
            poem_chaos::FaultKind::WireCorrupt { node: NodeId(1), prob } if prob == 0.25
        ));
        assert!(matches!(
            specs[1].kind,
            poem_chaos::FaultKind::Stall { node: NodeId(2), duration }
                if duration == EmuDuration::from_millis(1_500)
        ));
        assert!(matches!(specs[2].kind, poem_chaos::FaultKind::SlowReader { buffer: 4, .. }));
        assert!(matches!(
            specs[4].kind,
            poem_chaos::FaultKind::Crash { node: NodeId(3), restart_after: Some(d) }
                if d == EmuDuration::from_secs(3)
        ));
        assert!(matches!(
            specs[6].kind,
            poem_chaos::FaultKind::ClockSkew { offset, .. }
                if offset == EmuDuration::from_millis(-500)
        ));
    }

    #[test]
    fn fault_errors_carry_line_numbers() {
        let cases = [
            ("at 1 fault", 1),                     // missing subcommand
            ("at 1 fault corrupt VMN1 1.5", 1),    // prob out of range
            ("at 1 fault corrupt VMN1", 1),        // missing prob
            ("\nat 2 fault stall VMN1 -3", 2),     // negative duration
            ("at 1 fault slowreader VMN1 x 2", 1), // bad frame count
            ("at 1 fault crash VMN1 reboot 3", 1), // bad keyword
            ("at 1 fault meltdown VMN1", 1),       // unknown fault
        ];
        for (text, line) in cases {
            let e = Script::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text}: {e}");
        }
    }

    #[test]
    fn faulty_script_drives_the_harness() {
        use bytes::Bytes;
        use poem_client::{ClientApp, Nic};
        use poem_core::packet::Destination;

        /// One broadcast beacon per second.
        struct Chirp;
        impl ClientApp for Chirp {
            fn on_start(&mut self, nic: &mut dyn Nic) -> Option<poem_core::EmuDuration> {
                nic.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"hi"));
                Some(poem_core::EmuDuration::from_secs(1))
            }
            fn on_packet(&mut self, _nic: &mut dyn Nic, _pkt: poem_core::EmuPacket) {}
            fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<poem_core::EmuDuration> {
                nic.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"hi"));
                Some(poem_core::EmuDuration::from_secs(1))
            }
        }

        let mut net = crate::sim::SimNet::new(crate::sim::SimConfig::default());
        for (id, x) in [(1u32, 0.0), (2u32, 50.0)] {
            net.add_node(
                NodeId(id),
                Point::new(x, 0.0),
                RadioConfig::single(ChannelId(1), 100.0),
                MobilityModel::Stationary,
                LinkParams::ideal(8e6),
                Box::new(Chirp),
            )
            .unwrap();
        }
        let s = Script::parse("at 1 fault disconnect VMN2").unwrap();
        assert_eq!(s.fault_count(), 1);
        s.install(&mut net);
        net.run_until(EmuTime::from_secs(4));
        // The disconnect removed VMN2's client but kept its scene node.
        assert_eq!(net.client_count(), 1);
        assert!(net.scene().node(NodeId(2)).is_some());
        let traffic = net.recorder().traffic();
        let counts = poem_record::TrafficQuery::new(&traffic).copy_counts();
        assert!(counts.disconnected > 0, "{counts:?}");
    }

    #[test]
    fn parses_profile_bindings() {
        let s = Script::parse(
            "at 0 add VMN1 0 0 radio ch1 200\n\
             at 0 profile VMN1 canyon_nlos\n\
             at 5 profile VMN1 none",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.profile_count(), 2);
        assert_eq!(s.end(), EmuTime::from_secs(5));
        let b = &s.profile_bindings()[0];
        assert_eq!(b.node, NodeId(1));
        assert_eq!(b.name.as_deref(), Some("canyon_nlos"));
        assert_eq!(b.line, 2);
        assert_eq!(s.profile_bindings()[1].name, None);
    }

    #[test]
    fn profile_errors_carry_line_numbers() {
        let cases = [
            ("at 1 profile", 1),                 // missing args
            ("at 1 profile VMN1", 1),            // missing name
            ("at 1 profile VMN1 a b", 1),        // trailing junk
            ("at 1 profile bogus canyon", 1),    // bad node
            ("\nat 1 profile VMN1 bad/name", 2), // bad name chars
        ];
        for (text, line) in cases {
            let e = Script::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text}: {e}");
        }
    }

    #[test]
    fn resolves_profiles_against_a_library() {
        let lib = poem_profiles::ProfileLibrary::parse(
            "profile canyon_nlos trace\nat 0 loss 0.1 bps 1e6 delay 0.001\nend\n",
        )
        .unwrap();
        let s = Script::parse(
            "at 0 profile VMN1 canyon_nlos\n\
             at 3 profile VMN1 none",
        )
        .unwrap();
        let ops = s.resolve_profiles(&lib).unwrap();
        assert_eq!(ops.len(), 2);
        assert!(matches!(
            ops[0].op,
            SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(p) } if p.index() == 0
        ));
        assert!(matches!(ops[1].op, SceneOp::SetLinkProfile { profile: None, .. }));

        // Unknown names fail with the binding's line and the known set.
        let bad = Script::parse("\nat 0 profile VMN1 nonesuch").unwrap();
        let e = bad.resolve_profiles(&lib).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("nonesuch") && e.message.contains("canyon_nlos"), "{e}");
    }

    #[test]
    fn profile_script_drives_the_harness() {
        let lib = poem_profiles::ProfileLibrary::parse(
            "profile clean trace\nat 0 loss 0 bps 8e6 delay 0.001\nend\n",
        )
        .unwrap();
        let mut net = crate::sim::SimNet::new(crate::sim::SimConfig::default());
        let s = Script::parse(
            "at 0 add VMN1 0 0 radio ch1 100\n\
             at 0 profile VMN1 clean\n\
             at 2 profile VMN1 none",
        )
        .unwrap();
        s.install_with_profiles(&mut net, &lib).unwrap();
        assert_eq!(net.scene().link_profile(NodeId(1)), Some(poem_core::ProfileId(0)));
        net.run_until(EmuTime::from_secs(3));
        assert_eq!(net.scene().link_profile(NodeId(1)), None);

        // A binding the library can't resolve installs nothing.
        let mut net2 = crate::sim::SimNet::new(crate::sim::SimConfig::default());
        let bad = Script::parse("at 0 profile VMN1 nonesuch").unwrap();
        assert!(bad.install_with_profiles(&mut net2, &lib).is_err());
        assert_eq!(net2.scene().len(), 0);
    }

    #[test]
    fn parse_render_roundtrip_through_replay() {
        // A parsed script applied to a scene equals replaying the same ops.
        let s = Script::parse(FIG8).unwrap();
        let recs: Vec<poem_record::SceneRecord> =
            s.entries().iter().map(|e| poem_record::SceneRecord::new(e.at, e.op.clone())).collect();
        let engine = poem_record::ReplayEngine::new(recs);
        let scene = engine.scene_at(EmuTime::from_secs(20)).unwrap();
        assert_eq!(scene.len(), 3);
        assert_eq!(
            scene.node(NodeId(2)).unwrap().radios.channels().into_iter().next(),
            Some(ChannelId(2))
        );
    }
}
