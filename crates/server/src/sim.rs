//! Deterministic in-process emulation harness (virtual time).
//!
//! [`SimNet`] hosts every emulation client in one process: each VMN's
//! protocol code (a [`ClientApp`] over a [`QueueNic`]) runs against the
//! same [`Pipeline`] the real-time TCP server uses, but time is *virtual* —
//! a discrete-event loop pops the forward schedule and jumps the clock, so
//! a 60-second experiment runs in milliseconds and every run with the same
//! seed is bit-identical. This is what makes the paper's experiments
//! CI-reproducible (the TCP frontend exercises the same pipeline in real
//! time).

use crate::engine::{Delivery, Pipeline};
use poem_client::nic::QueueNic;
use poem_client::ClientApp;
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::{EmuDuration, EmuRng, EmuTime, ForwardSchedule, NodeId, Point};
use poem_record::Recorder;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed for every stochastic decision (loss draws, mobility).
    pub seed: u64,
    /// How often mobility is integrated (and positions recorded).
    pub mobility_step: EmuDuration,
    /// Optional model extensions (MAC, power).
    pub models: crate::engine::PipelineConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            mobility_step: EmuDuration::from_millis(100),
            models: crate::engine::PipelineConfig::default(),
        }
    }
}

enum SimEvent {
    /// A scheduled packet forward (§3.2 steps 5–6).
    Deliver(Delivery),
    /// A client app's timer.
    Tick(NodeId),
    /// Periodic mobility integration.
    Mobility,
    /// A scripted scene operation.
    Op(SceneOp),
}

struct SimNode {
    nic: QueueNic,
    app: Box<dyn ClientApp>,
}

/// The single-process deterministic emulation.
pub struct SimNet {
    pipeline: Pipeline,
    schedule: ForwardSchedule<SimEvent>,
    nodes: BTreeMap<NodeId, SimNode>,
    now: EmuTime,
    mobility_step: EmuDuration,
    mobility_armed: bool,
}

impl SimNet {
    /// An empty harness.
    pub fn new(config: SimConfig) -> Self {
        let recorder = Arc::new(Recorder::new());
        SimNet {
            pipeline: Pipeline::with_config(
                Scene::new(),
                recorder,
                EmuRng::seed(config.seed),
                config.models,
            ),
            schedule: ForwardSchedule::new(),
            nodes: BTreeMap::new(),
            now: EmuTime::ZERO,
            mobility_step: config.mobility_step,
            mobility_armed: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> EmuTime {
        self.now
    }

    /// The emulated scene.
    pub fn scene(&self) -> &Scene {
        self.pipeline.scene()
    }

    /// The run's recorder (traffic + scene logs).
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(self.pipeline.recorder())
    }

    /// Number of hosted clients.
    pub fn client_count(&self) -> usize {
        self.nodes.len()
    }

    /// A point-in-time snapshot of the pipeline's metrics (ingest and drop
    /// counters, latency histogram, recorder buffering) — the sim-harness
    /// counterpart of [`crate::ServerHandle::metrics`].
    pub fn metrics(&self) -> poem_obs::MetricsSnapshot {
        self.pipeline.metrics()
    }

    /// Read access to the pipeline (MAC/energy statistics).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable access to the pipeline (battery assignment etc.).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Adds a VMN to the scene and hosts `app` as its client. The app's
    /// `on_start` runs immediately (at the current virtual time).
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        id: NodeId,
        pos: Point,
        radios: RadioConfig,
        mobility: MobilityModel,
        link: LinkParams,
        app: Box<dyn ClientApp>,
    ) -> Result<(), SceneError> {
        self.pipeline.apply_op(
            self.now,
            SceneOp::AddNode { id, pos, radios: radios.clone(), mobility, link },
        )?;
        let mut node = SimNode { nic: QueueNic::new(id, radios), app };
        node.nic.set_now(self.now);
        if let Some(delay) = node.app.on_start(&mut node.nic) {
            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
        }
        self.nodes.insert(id, node);
        self.pump(id);
        if mobility != MobilityModel::Stationary && !self.mobility_armed {
            self.mobility_armed = true;
            self.schedule.schedule(self.now + self.mobility_step, SimEvent::Mobility);
        }
        Ok(())
    }

    /// Applies a scene op right now (the GUI's "real-time scene
    /// construction").
    pub fn apply_op(&mut self, op: SceneOp) -> Result<(), SceneError> {
        let op_clone = op.clone();
        self.pipeline.apply_op(self.now, op)?;
        self.after_op(&op_clone);
        Ok(())
    }

    /// Schedules a scene op for a future virtual time (scenario script).
    pub fn schedule_op(&mut self, at: EmuTime, op: SceneOp) {
        self.schedule.schedule(at, SimEvent::Op(op));
    }

    /// Keeps local NIC state consistent after an op.
    fn after_op(&mut self, op: &SceneOp) {
        match op {
            SceneOp::RemoveNode { id } => {
                self.nodes.remove(id);
            }
            SceneOp::SetRadioChannel { id, .. }
            | SceneOp::SetRadioRange { id, .. }
            | SceneOp::SetRadios { id, .. } => {
                let radios = self.pipeline.scene().node(*id).map(|v| v.radios.clone());
                if let (Some(radios), Some(node)) = (radios, self.nodes.get_mut(id)) {
                    node.nic.set_radios(radios);
                }
            }
            _ => {}
        }
    }

    /// Drains everything the node's protocol just sent and runs it through
    /// the pipeline (steps 1–4).
    fn pump(&mut self, id: NodeId) {
        let Some(node) = self.nodes.get_mut(&id) else { return };
        let outbound = node.nic.drain_outbound();
        for pkt in outbound {
            // In-process transport: the server "receives" instantly.
            for d in self.pipeline.ingest(&pkt, self.now) {
                let at = d.fire_at.max(self.now);
                self.schedule.schedule(at, SimEvent::Deliver(d));
            }
        }
    }

    /// Runs the event loop until virtual time `t_end` (inclusive). Events
    /// scheduled during the run are processed if they fall before the end.
    pub fn run_until(&mut self, t_end: EmuTime) {
        while let Some(due) = self.schedule.next_due() {
            if due > t_end {
                break;
            }
            let Some((at, ev)) = self.schedule.pop_next() else { break };
            self.now = self.now.max(at);
            match ev {
                SimEvent::Deliver(d) => self.fire_delivery(d),
                SimEvent::Tick(id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.nic.set_now(self.now);
                        if let Some(delay) = node.app.on_tick(&mut node.nic) {
                            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
                        }
                        self.pump(id);
                    }
                }
                SimEvent::Mobility => {
                    self.pipeline.advance_mobility(self.now);
                    self.schedule.schedule(self.now + self.mobility_step, SimEvent::Mobility);
                }
                SimEvent::Op(op) => {
                    // Scripted ops were validated by the author; a failure
                    // here (e.g. removing an already-removed node) is
                    // recorded nowhere and simply skipped.
                    if self.pipeline.apply_op(self.now, op.clone()).is_ok() {
                        self.after_op(&op);
                    }
                }
            }
        }
        self.now = self.now.max(t_end);
        if self.mobility_armed {
            self.pipeline.advance_mobility(self.now);
        }
    }

    /// Steps 5–6: hands a due delivery to its client and lets the protocol
    /// react.
    fn fire_delivery(&mut self, d: Delivery) {
        match self.nodes.get_mut(&d.to) {
            Some(node) => {
                self.pipeline.record_forward(&d, self.now);
                node.nic.set_now(self.now);
                node.app.on_packet(&mut node.nic, d.packet.clone());
                self.pump(d.to);
            }
            None => self.pipeline.record_undeliverable(&d, self.now),
        }
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("clients", &self.nodes.len())
            .field("pending_events", &self.schedule.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use poem_client::nic::Nic;
    use poem_core::packet::Destination;
    use poem_core::{ChannelId, EmuPacket};
    use poem_record::TrafficRecord;

    /// Broadcasts one beacon per second; counts everything it hears.
    struct Beacon {
        channel: ChannelId,
        heard: Arc<Mutex<Vec<(NodeId, EmuTime)>>>,
    }

    impl ClientApp for Beacon {
        fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
            nic.send(self.channel, Destination::Broadcast, Bytes::from_static(b"hello"));
            Some(EmuDuration::from_secs(1))
        }
        fn on_packet(&mut self, nic: &mut dyn Nic, pkt: EmuPacket) {
            self.heard.lock().push((pkt.src, nic.now()));
        }
        fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
            nic.send(self.channel, Destination::Broadcast, Bytes::from_static(b"hello"));
            Some(EmuDuration::from_secs(1))
        }
    }

    type HeardLog = Arc<Mutex<Vec<(NodeId, EmuTime)>>>;

    fn beacon_pair() -> (SimNet, HeardLog, HeardLog) {
        let mut net = SimNet::new(SimConfig::default());
        let heard1 = Arc::new(Mutex::new(Vec::new()));
        let heard2 = Arc::new(Mutex::new(Vec::new()));
        for (id, x, heard) in [(1u32, 0.0, &heard1), (2u32, 50.0, &heard2)] {
            net.add_node(
                NodeId(id),
                Point::new(x, 0.0),
                RadioConfig::single(ChannelId(1), 100.0),
                MobilityModel::Stationary,
                LinkParams::ideal(8e6),
                Box::new(Beacon { channel: ChannelId(1), heard: Arc::clone(heard) }),
            )
            .unwrap();
        }
        (net, heard1, heard2)
    }

    #[test]
    fn beacons_cross_between_neighbors() {
        let (mut net, heard1, heard2) = beacon_pair();
        net.run_until(EmuTime::from_secs(10));
        // Node 1 started before node 2 existed, so its very first beacon
        // found no neighbors; thereafter one beacon/second each way.
        let h1 = heard1.lock();
        let h2 = heard2.lock();
        assert!(h1.len() >= 9, "node1 heard {}", h1.len());
        assert!(h2.len() >= 9, "node2 heard {}", h2.len());
        assert!(h1.iter().all(|&(src, _)| src == NodeId(2)));
        assert!(h2.iter().all(|&(src, _)| src == NodeId(1)));
    }

    #[test]
    fn delivery_time_includes_transmission_delay() {
        let (mut net, _h1, heard2) = beacon_pair();
        net.run_until(EmuTime::from_secs(2));
        let h2 = heard2.lock();
        // 33-byte frame at 8 Mbps = 33 µs after the (integer-second) send.
        let (_, at) = h2[0];
        let sub_second = at.as_nanos() % 1_000_000_000;
        assert_eq!(sub_second, 33_000, "{at}");
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let (mut net, _, heard2) = beacon_pair();
            net.run_until(EmuTime::from_secs(30));
            let v = heard2.lock().clone();
            (v, net.recorder().counts())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scheduled_op_fires_at_its_time() {
        let (mut net, _h1, heard2) = beacon_pair();
        // At t=5.5 s, move node 2 out of range.
        net.schedule_op(
            EmuTime::from_millis(5_500),
            SceneOp::MoveNode { id: NodeId(2), pos: Point::new(500.0, 0.0) },
        );
        net.run_until(EmuTime::from_secs(10));
        let h2 = heard2.lock();
        // Node 2 did not exist yet for node 1's start beacon; beacons at
        // 1..=5 s are heard, later ones are lost to the move.
        assert_eq!(h2.len(), 5, "{h2:?}");
        assert!(h2.iter().all(|&(_, at)| at <= EmuTime::from_secs(6)));
    }

    #[test]
    fn removing_node_stops_its_app_and_deliveries() {
        let (mut net, h1, _h2) = beacon_pair();
        net.schedule_op(EmuTime::from_millis(3_500), SceneOp::RemoveNode { id: NodeId(2) });
        net.run_until(EmuTime::from_secs(10));
        assert_eq!(net.client_count(), 1);
        let heard_after: Vec<_> =
            h1.lock().iter().filter(|&&(_, at)| at > EmuTime::from_secs(4)).cloned().collect();
        assert!(heard_after.is_empty(), "{heard_after:?}");
    }

    #[test]
    fn mobility_is_integrated_and_recorded() {
        let mut net = SimNet::new(SimConfig::default());
        net.add_node(
            NodeId(1),
            Point::ORIGIN,
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
            LinkParams::ideal(8e6),
            Box::new(poem_client::app::IdleApp),
        )
        .unwrap();
        net.run_until(EmuTime::from_secs(5));
        let pos = net.scene().node(NodeId(1)).unwrap().pos;
        assert!((pos.x - 50.0).abs() < 1e-6, "{pos}");
        // Scene log: 1 AddNode + 50 mobility MoveNodes (100 ms step).
        let scene_log = net.recorder().scene();
        assert_eq!(scene_log.len(), 51, "{}", scene_log.len());
    }

    #[test]
    fn sim_harness_exposes_pipeline_metrics() {
        let (mut net, _h1, _h2) = beacon_pair();
        net.run_until(EmuTime::from_secs(5));
        let snap = net.metrics();
        assert!(!snap.is_empty());
        // 2 start beacons + 2×5 ticks ingested (see
        // traffic_is_recorded_end_to_end for the tally).
        assert_eq!(snap.counter("poem_ingest_packets_total"), Some(12));
        assert!(snap.counter("poem_ingest_deliveries_total").unwrap_or(0) >= 9);
        assert!(snap.counter("poem_recorder_traffic_records_total").unwrap_or(0) >= 12);
    }

    #[test]
    fn traffic_is_recorded_end_to_end() {
        let (mut net, _h1, _h2) = beacon_pair();
        net.run_until(EmuTime::from_secs(5));
        let rec = net.recorder();
        let traffic = rec.traffic();
        let ingress = traffic.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count();
        let forwards =
            traffic.iter().filter(|r| matches!(r, TrafficRecord::Forward { .. })).count();
        // 2 start beacons + 2×5 ticks = 12 ingress. Forwards: node 1's
        // start beacon found no neighbor yet, and the two t=5 s beacons'
        // deliveries (t=5 s + 33 µs) fall beyond the run end → 9.
        assert_eq!(ingress, 12);
        assert_eq!(forwards, 9);
    }

    #[test]
    fn channel_isolation_in_harness() {
        let mut net = SimNet::new(SimConfig::default());
        let heard = Arc::new(Mutex::new(Vec::new()));
        net.add_node(
            NodeId(1),
            Point::ORIGIN,
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::Stationary,
            LinkParams::ideal(8e6),
            Box::new(Beacon { channel: ChannelId(1), heard: Arc::new(Mutex::new(Vec::new())) }),
        )
        .unwrap();
        // Same spot, different channel: never hears anything.
        net.add_node(
            NodeId(2),
            Point::new(1.0, 0.0),
            RadioConfig::single(ChannelId(2), 100.0),
            MobilityModel::Stationary,
            LinkParams::ideal(8e6),
            Box::new(Beacon { channel: ChannelId(2), heard: Arc::clone(&heard) }),
        )
        .unwrap();
        net.run_until(EmuTime::from_secs(5));
        assert!(heard.lock().is_empty());
    }
}
