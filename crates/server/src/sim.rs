//! Deterministic in-process emulation harness (virtual time).
//!
//! [`SimNet`] hosts every emulation client in one process: each VMN's
//! protocol code (a [`ClientApp`] over a [`QueueNic`]) runs against the
//! same [`Pipeline`] the real-time TCP server uses, but time is *virtual* —
//! a discrete-event loop pops the forward schedule and jumps the clock, so
//! a 60-second experiment runs in milliseconds and every run with the same
//! seed is bit-identical. This is what makes the paper's experiments
//! CI-reproducible (the TCP frontend exercises the same pipeline in real
//! time).

use crate::engine::{Delivery, Pipeline};
use bytes::Bytes;
use poem_chaos::{ChaosMetrics, FaultKind, FaultPlan};
use poem_client::nic::QueueNic;
use poem_client::ClientApp;
use poem_cluster::{ClusterConfig, ClusterError, Coordinator};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::{EmuDuration, EmuPacket, EmuRng, EmuTime, ForwardSchedule, NodeId, Point};
use poem_record::{FaultRecord, Recorder};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Seed for every stochastic decision (loss draws, mobility).
    pub seed: u64,
    /// How often mobility is integrated (and positions recorded).
    pub mobility_step: EmuDuration,
    /// Optional model extensions (MAC, power).
    pub models: crate::engine::PipelineConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            mobility_step: EmuDuration::from_millis(100),
            models: crate::engine::PipelineConfig::default(),
        }
    }
}

enum SimEvent {
    /// A scheduled packet forward (§3.2 steps 5–6).
    Deliver(Delivery),
    /// A client app's timer.
    Tick(NodeId),
    /// Periodic mobility integration.
    Mobility,
    /// A scripted scene operation.
    Op(SceneOp),
    /// A scheduled fault injection from an installed [`FaultPlan`].
    Fault(FaultKind),
    /// A stall/slow-reader expiry: flush the node's held deliveries.
    ChaosRelease(NodeId),
    /// A crash restart: re-add the parked node and its client.
    ChaosRevive(NodeId),
    /// A timed scene fault (flap/jam) ran out; the restore `Op` legs are
    /// scheduled separately — this event only closes the books.
    ChaosExpire(String),
}

struct SimNode {
    nic: QueueNic,
    app: Box<dyn ClientApp>,
}

/// Per-sender wire-fault probabilities (sim-level analogue of
/// `poem_chaos::WireFaults`, applied at the packet rather than byte layer
/// so virtual time stays exact).
#[derive(Debug, Clone, Copy, Default)]
struct WireProbs {
    corrupt: f64,
    truncate: f64,
    duplicate: f64,
    reorder: f64,
}

struct StallState {
    until: EmuTime,
    /// `None` = unbounded stall buffer; `Some(n)` = slow reader holding at
    /// most `n` frames, overflow dropped as disconnected copies.
    capacity: Option<u32>,
    held: Vec<Delivery>,
}

#[derive(Debug, Clone, Copy, Default)]
struct ClockFault {
    skew: EmuDuration,
    jitter_std: EmuDuration,
}

/// What the transport-fault layer decided about a due delivery.
enum Intercept {
    Pass(Delivery),
    Held,
    Dropped(Delivery),
}

/// The sim harness's fault-injection state. Lives behind an `Option` so a
/// chaos-free run is bit-for-bit the run it always was: the chaos RNG is a
/// separate stream (`poem_chaos::chaos_rng`), and nothing here is even
/// allocated until a fault is installed.
struct SimChaos {
    rng: EmuRng,
    metrics: ChaosMetrics,
    recorder: Arc<Recorder>,
    wire: BTreeMap<NodeId, WireProbs>,
    stalls: BTreeMap<NodeId, StallState>,
    clocks: BTreeMap<NodeId, ClockFault>,
    parked: BTreeMap<NodeId, (SimNode, SceneOp)>,
}

impl SimChaos {
    fn note_wire(&mut self, at: EmuTime, node: NodeId, action: &str, pkt: &EmuPacket) {
        self.metrics.injected(action);
        self.recorder.record_fault(FaultRecord::Wire {
            at,
            node,
            action: action.to_string(),
            bytes: pkt.wire_size() as u32,
        });
    }

    /// Runs one outbound packet through the sender's wire and clock
    /// faults. Fixed draw order (clock → corrupt → truncate → duplicate →
    /// reorder) keeps runs reproducible; faults with probability 0 draw
    /// nothing at all. Returns the copies to ingest plus an extra delivery
    /// delay when the frame was reordered.
    fn transform(&mut self, mut pkt: EmuPacket, now: EmuTime) -> (Vec<EmuPacket>, EmuDuration) {
        let node = pkt.src;
        if let Some(cf) = self.clocks.get(&node).copied() {
            let mut stamp = pkt.sent_at + cf.skew;
            let std_ns = cf.jitter_std.as_nanos();
            if std_ns > 0 {
                let j = self.rng.gaussian(0.0, std_ns as f64).abs();
                stamp += EmuDuration::from_nanos(j as i64);
            }
            pkt.sent_at = stamp;
        }
        let Some(probs) = self.wire.get(&node).copied() else {
            return (vec![pkt], EmuDuration::ZERO);
        };
        if self.rng.chance(probs.corrupt) && !pkt.payload.is_empty() {
            let i = self.rng.index(pkt.payload.len());
            let mask = self.rng.range_u64(1, 256) as u8;
            let mut body = pkt.payload.to_vec();
            body[i] ^= mask;
            pkt.payload = Bytes::from(body);
            self.note_wire(now, node, "wire_corrupt", &pkt);
        }
        if self.rng.chance(probs.truncate) && !pkt.payload.is_empty() {
            let keep = self.rng.index(pkt.payload.len());
            let mut body = pkt.payload.to_vec();
            body.truncate(keep);
            pkt.payload = Bytes::from(body);
            self.note_wire(now, node, "wire_truncate", &pkt);
        }
        let copies = if self.rng.chance(probs.duplicate) {
            self.note_wire(now, node, "wire_duplicate", &pkt);
            vec![pkt.clone(), pkt]
        } else {
            vec![pkt]
        };
        let delay = if self.rng.chance(probs.reorder) {
            self.note_wire(now, node, "wire_reorder", &copies[0]);
            EmuDuration::from_nanos(self.rng.range_u64(1_000_000, 50_000_001) as i64)
        } else {
            EmuDuration::ZERO
        };
        (copies, delay)
    }

    fn intercept(&mut self, d: Delivery, now: EmuTime) -> Intercept {
        let Some(st) = self.stalls.get_mut(&d.to) else { return Intercept::Pass(d) };
        if now >= st.until {
            return Intercept::Pass(d);
        }
        match st.capacity {
            Some(cap) if st.held.len() >= cap as usize => Intercept::Dropped(d),
            _ => {
                st.held.push(d);
                Intercept::Held
            }
        }
    }

    /// Ends a stall. `None` when a newer stall superseded the expiry that
    /// scheduled this release (its own release is still pending).
    fn release(&mut self, node: NodeId, now: EmuTime) -> Option<Vec<Delivery>> {
        if self.stalls.get(&node).is_none_or(|st| st.until > now) {
            return None;
        }
        let st = self.stalls.remove(&node)?;
        self.metrics.deactivate();
        self.recorder.record_fault(FaultRecord::Transport {
            at: now,
            node,
            action: "release".to_string(),
        });
        Some(st.held)
    }

    fn unpark(&mut self, node: NodeId, now: EmuTime) -> Option<(SimNode, SceneOp)> {
        let entry = self.parked.remove(&node)?;
        self.metrics.deactivate();
        self.recorder
            .record_fault(FaultRecord::Scene { at: now, action: format!("restore {node}") });
        Some(entry)
    }

    fn expire(&mut self, action: String, now: EmuTime) {
        self.metrics.deactivate();
        self.recorder.record_fault(FaultRecord::Scene { at: now, action });
    }
}

/// Distributed-mode state: the worker fleet plus the first failure, if
/// any. Distributed execution is all-or-nothing — after a cluster error
/// the harness stops producing traffic outcomes rather than silently
/// falling back to local decisions (which would fork the record log).
struct ClusterState {
    coord: Coordinator,
    error: Option<ClusterError>,
}

/// The single-process deterministic emulation.
pub struct SimNet {
    pipeline: Pipeline,
    schedule: ForwardSchedule<SimEvent>,
    nodes: BTreeMap<NodeId, SimNode>,
    now: EmuTime,
    seed: u64,
    mobility_step: EmuDuration,
    mobility_armed: bool,
    chaos: Option<Box<SimChaos>>,
    cluster: Option<Box<ClusterState>>,
}

impl SimNet {
    /// An empty harness.
    pub fn new(config: SimConfig) -> Self {
        let recorder = Arc::new(Recorder::new());
        SimNet {
            pipeline: Pipeline::with_config(
                Scene::new(),
                recorder,
                EmuRng::seed(config.seed),
                config.models,
            ),
            schedule: ForwardSchedule::new(),
            nodes: BTreeMap::new(),
            now: EmuTime::ZERO,
            seed: config.seed,
            mobility_step: config.mobility_step,
            mobility_armed: false,
            chaos: None,
            cluster: None,
        }
    }

    /// Switches the harness to distributed execution: spawns
    /// `config.workers` `poem-shardd` processes, ships them the current
    /// scene, and from here on routes every packet decision through the
    /// cluster. The coordinator inherits the harness seed and the
    /// pipeline's decision base, so the merged record log is
    /// byte-identical to a local run of the same scenario. If empirical
    /// profiles are in play, install the library locally first and pass
    /// the same text in `config.profiles`.
    ///
    /// Only the baseline models distribute: a MAC discipline or power
    /// metering couples every transmission globally and is refused.
    pub fn attach_cluster(&mut self, mut config: ClusterConfig) -> Result<(), ClusterError> {
        if self.pipeline.mac() != poem_core::mac::MacModel::None {
            return Err(ClusterError::Unsupported("MAC models (medium state is global)"));
        }
        if self.pipeline.energy().is_some() {
            return Err(ClusterError::Unsupported("power metering (energy ledger is global)"));
        }
        config.seed = self.seed;
        let coord = Coordinator::launch(
            config,
            self.pipeline.decide_base(),
            self.pipeline.scene(),
            self.pipeline.metrics_registry(),
        )?;
        self.cluster = Some(Box::new(ClusterState { coord, error: None }));
        Ok(())
    }

    /// The first cluster failure, if distributed execution broke down.
    /// Virtual-time drivers should treat `Some` as a failed run.
    pub fn cluster_error(&self) -> Option<&ClusterError> {
        self.cluster.as_ref().and_then(|c| c.error.as_ref())
    }

    /// The cluster coordinator, when distributed execution is attached.
    pub fn cluster(&self) -> Option<&Coordinator> {
        self.cluster.as_ref().map(|c| &c.coord)
    }

    /// Tears the worker fleet down (orderly shutdown, then kill). The
    /// harness reverts to local execution.
    pub fn shutdown_cluster(&mut self) {
        if let Some(mut cl) = self.cluster.take() {
            cl.coord.shutdown();
        }
    }

    /// Mirrors a successfully applied scene op to the worker fleet.
    fn mirror_op(&mut self, op: &SceneOp) {
        let Some(cl) = self.cluster.as_mut() else { return };
        if cl.error.is_some() {
            return;
        }
        if let Err(e) = cl.coord.apply_op(self.now, op, self.pipeline.scene()) {
            cl.error = Some(e);
        }
    }

    /// Rebalances, ships position updates, and runs a lockstep barrier —
    /// the distributed analogue of one scan tick.
    fn cluster_sync(&mut self) {
        let Some(cl) = self.cluster.as_mut() else { return };
        if cl.error.is_some() {
            return;
        }
        if let Err(e) = cl.coord.sync(self.now, self.pipeline.scene()) {
            cl.error = Some(e);
        }
    }

    /// Routes one ingress packet through the cluster and maps the settled
    /// outcomes onto pipeline deliveries.
    fn cluster_ingest(&mut self, pkt: &EmuPacket) -> Vec<Delivery> {
        let Some(cl) = self.cluster.as_mut() else { return Vec::new() };
        if cl.error.is_some() {
            return Vec::new();
        }
        let recorder = self.pipeline.recorder();
        match cl.coord.ingest_batch(std::slice::from_ref(pkt), self.now, recorder) {
            Ok(settled) => settled
                .into_iter()
                .map(|d| Delivery { to: d.to, fire_at: d.fire_at, packet: d.packet })
                .collect(),
            Err(e) => {
                cl.error = Some(e);
                Vec::new()
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> EmuTime {
        self.now
    }

    /// The emulated scene.
    pub fn scene(&self) -> &Scene {
        self.pipeline.scene()
    }

    /// The run's recorder (traffic + scene logs).
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(self.pipeline.recorder())
    }

    /// Number of hosted clients.
    pub fn client_count(&self) -> usize {
        self.nodes.len()
    }

    /// A point-in-time snapshot of the pipeline's metrics (ingest and drop
    /// counters, latency histogram, recorder buffering) — the sim-harness
    /// counterpart of [`crate::ServerHandle::metrics`].
    pub fn metrics(&self) -> poem_obs::MetricsSnapshot {
        self.pipeline.metrics()
    }

    /// Read access to the pipeline (MAC/energy statistics).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// Mutable access to the pipeline (battery assignment etc.).
    pub fn pipeline_mut(&mut self) -> &mut Pipeline {
        &mut self.pipeline
    }

    /// Adds a VMN to the scene and hosts `app` as its client. The app's
    /// `on_start` runs immediately (at the current virtual time).
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        id: NodeId,
        pos: Point,
        radios: RadioConfig,
        mobility: MobilityModel,
        link: LinkParams,
        app: Box<dyn ClientApp>,
    ) -> Result<(), SceneError> {
        let add = SceneOp::AddNode { id, pos, radios: radios.clone(), mobility, link };
        self.pipeline.apply_op(self.now, add.clone())?;
        self.mirror_op(&add);
        let mut node = SimNode { nic: QueueNic::new(id, radios), app };
        node.nic.set_now(self.now);
        if let Some(delay) = node.app.on_start(&mut node.nic) {
            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
        }
        self.nodes.insert(id, node);
        self.pump(id);
        if mobility != MobilityModel::Stationary && !self.mobility_armed {
            self.mobility_armed = true;
            self.schedule.schedule(self.now + self.mobility_step, SimEvent::Mobility);
        }
        Ok(())
    }

    /// Hosts `app` as the client of an *existing* scene node — the
    /// virtual analogue of a TCP client connecting to a server-created
    /// VMN. Lets scenario scripts build the scene (`add` lines) and the
    /// harness attach traffic afterwards. Replaces any previous app on
    /// the node.
    pub fn attach_app(&mut self, id: NodeId, app: Box<dyn ClientApp>) -> Result<(), SceneError> {
        let Some(v) = self.scene().node(id) else {
            return Err(SceneError::UnknownNode(id));
        };
        let radios = v.radios.clone();
        let mut node = SimNode { nic: QueueNic::new(id, radios), app };
        node.nic.set_now(self.now);
        if let Some(delay) = node.app.on_start(&mut node.nic) {
            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
        }
        self.nodes.insert(id, node);
        self.pump(id);
        Ok(())
    }

    /// Applies a scene op right now (the GUI's "real-time scene
    /// construction").
    pub fn apply_op(&mut self, op: SceneOp) -> Result<(), SceneError> {
        let op_clone = op.clone();
        self.pipeline.apply_op(self.now, op)?;
        self.mirror_op(&op_clone);
        self.after_op(&op_clone);
        Ok(())
    }

    /// Schedules a scene op for a future virtual time (scenario script).
    pub fn schedule_op(&mut self, at: EmuTime, op: SceneOp) {
        self.schedule.schedule(at, SimEvent::Op(op));
    }

    /// Installs an empirical profile library, seeded with the scenario
    /// seed so profile-driven regime draws replay deterministically.
    pub fn install_profiles(&mut self, library: poem_profiles::ProfileLibrary) {
        self.pipeline.install_profiles(library, self.seed);
    }

    fn ensure_chaos(&mut self) {
        if self.chaos.is_none() {
            self.chaos = Some(Box::new(SimChaos {
                rng: poem_chaos::chaos_rng(self.seed),
                metrics: ChaosMetrics::register(self.pipeline.metrics_registry()),
                recorder: Arc::clone(self.pipeline.recorder()),
                wire: BTreeMap::new(),
                stalls: BTreeMap::new(),
                clocks: BTreeMap::new(),
                parked: BTreeMap::new(),
            }));
        }
    }

    /// Installs a fault plan: past-due faults apply immediately, the rest
    /// are scheduled at their injection times.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        self.ensure_chaos();
        for spec in plan.specs() {
            if spec.at <= self.now {
                self.apply_fault(spec.kind.clone());
            } else {
                self.schedule.schedule(spec.at, SimEvent::Fault(spec.kind.clone()));
            }
        }
    }

    /// Injects one fault right now.
    pub fn apply_fault(&mut self, kind: FaultKind) {
        self.ensure_chaos();
        let now = self.now;
        let Some(metrics) = self.chaos.as_ref().map(|c| c.metrics.clone()) else { return };
        if let Some(rec) = poem_chaos::engine::injection_record(&kind, now) {
            self.recorder().record_fault(rec);
        }
        // Wire kinds count per occurrence (in `SimChaos::transform`); the
        // rest count here, at injection.
        if kind.layer() != "wire" {
            metrics.injected(kind.name());
        }
        match kind {
            FaultKind::WireCorrupt { node, prob } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.wire.entry(node).or_default().corrupt = prob;
                }
            }
            FaultKind::WireTruncate { node, prob } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.wire.entry(node).or_default().truncate = prob;
                }
            }
            FaultKind::WireDuplicate { node, prob } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.wire.entry(node).or_default().duplicate = prob;
                }
            }
            FaultKind::WireReorder { node, prob } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.wire.entry(node).or_default().reorder = prob;
                }
            }
            FaultKind::Disconnect { node } => {
                // The VMN stays in the scene; copies addressed to it now
                // resolve as disconnected drops, as on the TCP frontend.
                self.nodes.remove(&node);
            }
            FaultKind::Stall { node, duration } => {
                self.begin_stall(node, now + duration, None, &metrics);
            }
            FaultKind::SlowReader { node, buffer, duration } => {
                self.begin_stall(node, now + duration, Some(buffer), &metrics);
            }
            FaultKind::LinkFlap { node, radio, factor, duration } => {
                let legs = poem_chaos::flap_legs(
                    self.pipeline.scene(),
                    now,
                    node,
                    radio,
                    factor,
                    duration,
                );
                if let Some(legs) = legs {
                    self.apply_legs(legs);
                    metrics.activate();
                    self.schedule.schedule(
                        now + duration,
                        SimEvent::ChaosExpire(format!("link_flap {node} restore")),
                    );
                }
            }
            FaultKind::Crash { node, restart_after } => {
                let legs = poem_chaos::crash_legs(self.pipeline.scene(), now, node, restart_after);
                if let Some((remove, restore)) = legs {
                    let parked_node = self.nodes.remove(&node);
                    if self.pipeline.apply_op(now, remove.clone()).is_ok() {
                        self.mirror_op(&remove);
                        if let (Some(sim_node), Some((at, add))) = (parked_node, restore) {
                            if let Some(chaos) = self.chaos.as_mut() {
                                chaos.parked.insert(node, (sim_node, add));
                            }
                            metrics.activate();
                            self.schedule.schedule(at, SimEvent::ChaosRevive(node));
                        }
                    }
                }
            }
            FaultKind::Jam { channel, duration } => {
                let legs = poem_chaos::jam_legs(self.pipeline.scene(), now, channel, duration);
                if !legs.is_empty() {
                    self.apply_legs(legs);
                    metrics.activate();
                    self.schedule.schedule(
                        now + duration,
                        SimEvent::ChaosExpire(format!("jam ch{} restore", channel.0)),
                    );
                }
            }
            FaultKind::ClockSkew { node, offset } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.clocks.entry(node).or_default().skew = offset;
                }
            }
            FaultKind::ClockJitter { node, std_dev } => {
                if let Some(chaos) = self.chaos.as_mut() {
                    chaos.clocks.entry(node).or_default().jitter_std = std_dev;
                }
            }
        }
    }

    fn begin_stall(
        &mut self,
        node: NodeId,
        until: EmuTime,
        capacity: Option<u32>,
        metrics: &ChaosMetrics,
    ) {
        if let Some(chaos) = self.chaos.as_mut() {
            let fresh = chaos
                .stalls
                .insert(node, StallState { until, capacity, held: Vec::new() })
                .is_none();
            if fresh {
                metrics.activate();
            }
            self.schedule.schedule(until, SimEvent::ChaosRelease(node));
        }
    }

    /// Applies due legs now and schedules the rest.
    fn apply_legs(&mut self, legs: Vec<(EmuTime, SceneOp)>) {
        for (at, op) in legs {
            if at <= self.now {
                if self.pipeline.apply_op(self.now, op.clone()).is_ok() {
                    self.mirror_op(&op);
                    self.after_op(&op);
                }
            } else {
                self.schedule.schedule(at, SimEvent::Op(op));
            }
        }
    }

    /// Keeps local NIC state consistent after an op.
    fn after_op(&mut self, op: &SceneOp) {
        match op {
            SceneOp::RemoveNode { id } => {
                self.nodes.remove(id);
            }
            SceneOp::SetRadioChannel { id, .. }
            | SceneOp::SetRadioRange { id, .. }
            | SceneOp::SetRadios { id, .. } => {
                let radios = self.pipeline.scene().node(*id).map(|v| v.radios.clone());
                if let (Some(radios), Some(node)) = (radios, self.nodes.get_mut(id)) {
                    node.nic.set_radios(radios);
                }
            }
            _ => {}
        }
    }

    /// Drains everything the node's protocol just sent and runs it through
    /// the pipeline (steps 1–4).
    fn pump(&mut self, id: NodeId) {
        let Some(node) = self.nodes.get_mut(&id) else { return };
        let outbound = node.nic.drain_outbound();
        for pkt in outbound {
            let (copies, extra_delay) = match self.chaos.as_mut() {
                Some(chaos) => chaos.transform(pkt, self.now),
                None => (vec![pkt], EmuDuration::ZERO),
            };
            for pkt in copies {
                // In-process transport: the server "receives" instantly.
                // Distributed mode fans the decision out to the shard
                // owning the sender instead of deciding locally.
                let deliveries = if self.cluster.is_some() {
                    self.cluster_ingest(&pkt)
                } else {
                    self.pipeline.ingest(&pkt, self.now)
                };
                for d in deliveries {
                    let at = d.fire_at.max(self.now) + extra_delay;
                    self.schedule.schedule(at, SimEvent::Deliver(d));
                }
            }
        }
    }

    /// Runs the event loop until virtual time `t_end` (inclusive). Events
    /// scheduled during the run are processed if they fall before the end.
    pub fn run_until(&mut self, t_end: EmuTime) {
        while let Some(due) = self.schedule.next_due() {
            if due > t_end {
                break;
            }
            let Some((at, ev)) = self.schedule.pop_next() else { break };
            self.now = self.now.max(at);
            match ev {
                SimEvent::Deliver(d) => self.fire_delivery(d),
                SimEvent::Tick(id) => {
                    if let Some(node) = self.nodes.get_mut(&id) {
                        node.nic.set_now(self.now);
                        if let Some(delay) = node.app.on_tick(&mut node.nic) {
                            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
                        }
                        self.pump(id);
                    }
                }
                SimEvent::Mobility => {
                    self.pipeline.advance_mobility(self.now);
                    self.cluster_sync();
                    self.schedule.schedule(self.now + self.mobility_step, SimEvent::Mobility);
                }
                SimEvent::Op(op) => {
                    // Scripted ops were validated by the author; a failure
                    // here (e.g. removing an already-removed node) is
                    // recorded nowhere and simply skipped.
                    if self.pipeline.apply_op(self.now, op.clone()).is_ok() {
                        self.mirror_op(&op);
                        self.after_op(&op);
                    }
                }
                SimEvent::Fault(kind) => self.apply_fault(kind),
                SimEvent::ChaosRelease(node) => {
                    let held = self.chaos.as_mut().and_then(|c| c.release(node, self.now));
                    for d in held.into_iter().flatten() {
                        self.fire_delivery(d);
                    }
                }
                SimEvent::ChaosRevive(node) => self.revive(node),
                SimEvent::ChaosExpire(action) => {
                    if let Some(chaos) = self.chaos.as_mut() {
                        chaos.expire(action, self.now);
                    }
                }
            }
        }
        self.now = self.now.max(t_end);
        if self.mobility_armed {
            self.pipeline.advance_mobility(self.now);
            self.cluster_sync();
        }
    }

    /// Steps 5–6: hands a due delivery to its client and lets the protocol
    /// react.
    fn fire_delivery(&mut self, d: Delivery) {
        let d = match self.chaos.as_mut() {
            Some(chaos) => match chaos.intercept(d, self.now) {
                Intercept::Pass(d) => d,
                Intercept::Held => return,
                Intercept::Dropped(d) => {
                    // Slow-reader overflow: the copy is lost exactly as if
                    // the client were gone, keeping drop accounting whole.
                    self.pipeline.record_undeliverable(&d, self.now);
                    return;
                }
            },
            None => d,
        };
        match self.nodes.get_mut(&d.to) {
            Some(node) => {
                self.pipeline.record_forward(&d, self.now);
                node.nic.set_now(self.now);
                node.app.on_packet(&mut node.nic, d.packet.clone());
                self.pump(d.to);
            }
            None => self.pipeline.record_undeliverable(&d, self.now),
        }
    }

    /// Restarts a crashed node: re-applies its captured `AddNode`, reboots
    /// the parked client app, and pumps whatever it sends on start.
    fn revive(&mut self, id: NodeId) {
        let Some((mut node, add)) = self.chaos.as_mut().and_then(|c| c.unpark(id, self.now)) else {
            return;
        };
        if self.pipeline.apply_op(self.now, add.clone()).is_err() {
            return;
        }
        self.mirror_op(&add);
        if let Some(radios) = self.pipeline.scene().node(id).map(|v| v.radios.clone()) {
            node.nic.set_radios(radios);
        }
        node.nic.set_now(self.now);
        if let Some(delay) = node.app.on_start(&mut node.nic) {
            self.schedule.schedule(self.now + delay, SimEvent::Tick(id));
        }
        self.nodes.insert(id, node);
        self.pump(id);
    }
}

impl std::fmt::Debug for SimNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimNet")
            .field("now", &self.now)
            .field("clients", &self.nodes.len())
            .field("pending_events", &self.schedule.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parking_lot::Mutex;
    use poem_client::nic::Nic;
    use poem_core::packet::Destination;
    use poem_core::{ChannelId, EmuPacket};
    use poem_record::TrafficRecord;

    /// Broadcasts one beacon per second; counts everything it hears.
    struct Beacon {
        channel: ChannelId,
        heard: Arc<Mutex<Vec<(NodeId, EmuTime)>>>,
    }

    impl ClientApp for Beacon {
        fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
            nic.send(self.channel, Destination::Broadcast, Bytes::from_static(b"hello"));
            Some(EmuDuration::from_secs(1))
        }
        fn on_packet(&mut self, nic: &mut dyn Nic, pkt: EmuPacket) {
            self.heard.lock().push((pkt.src, nic.now()));
        }
        fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
            nic.send(self.channel, Destination::Broadcast, Bytes::from_static(b"hello"));
            Some(EmuDuration::from_secs(1))
        }
    }

    type HeardLog = Arc<Mutex<Vec<(NodeId, EmuTime)>>>;

    fn beacon_pair() -> (SimNet, HeardLog, HeardLog) {
        let mut net = SimNet::new(SimConfig::default());
        let heard1 = Arc::new(Mutex::new(Vec::new()));
        let heard2 = Arc::new(Mutex::new(Vec::new()));
        for (id, x, heard) in [(1u32, 0.0, &heard1), (2u32, 50.0, &heard2)] {
            net.add_node(
                NodeId(id),
                Point::new(x, 0.0),
                RadioConfig::single(ChannelId(1), 100.0),
                MobilityModel::Stationary,
                LinkParams::ideal(8e6),
                Box::new(Beacon { channel: ChannelId(1), heard: Arc::clone(heard) }),
            )
            .unwrap();
        }
        (net, heard1, heard2)
    }

    #[test]
    fn beacons_cross_between_neighbors() {
        let (mut net, heard1, heard2) = beacon_pair();
        net.run_until(EmuTime::from_secs(10));
        // Node 1 started before node 2 existed, so its very first beacon
        // found no neighbors; thereafter one beacon/second each way.
        let h1 = heard1.lock();
        let h2 = heard2.lock();
        assert!(h1.len() >= 9, "node1 heard {}", h1.len());
        assert!(h2.len() >= 9, "node2 heard {}", h2.len());
        assert!(h1.iter().all(|&(src, _)| src == NodeId(2)));
        assert!(h2.iter().all(|&(src, _)| src == NodeId(1)));
    }

    #[test]
    fn delivery_time_includes_transmission_delay() {
        let (mut net, _h1, heard2) = beacon_pair();
        net.run_until(EmuTime::from_secs(2));
        let h2 = heard2.lock();
        // 33-byte frame at 8 Mbps = 33 µs after the (integer-second) send.
        let (_, at) = h2[0];
        let sub_second = at.as_nanos() % 1_000_000_000;
        assert_eq!(sub_second, 33_000, "{at}");
    }

    #[test]
    fn run_is_deterministic() {
        let run = || {
            let (mut net, _, heard2) = beacon_pair();
            net.run_until(EmuTime::from_secs(30));
            let v = heard2.lock().clone();
            (v, net.recorder().counts())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scheduled_op_fires_at_its_time() {
        let (mut net, _h1, heard2) = beacon_pair();
        // At t=5.5 s, move node 2 out of range.
        net.schedule_op(
            EmuTime::from_millis(5_500),
            SceneOp::MoveNode { id: NodeId(2), pos: Point::new(500.0, 0.0) },
        );
        net.run_until(EmuTime::from_secs(10));
        let h2 = heard2.lock();
        // Node 2 did not exist yet for node 1's start beacon; beacons at
        // 1..=5 s are heard, later ones are lost to the move.
        assert_eq!(h2.len(), 5, "{h2:?}");
        assert!(h2.iter().all(|&(_, at)| at <= EmuTime::from_secs(6)));
    }

    #[test]
    fn removing_node_stops_its_app_and_deliveries() {
        let (mut net, h1, _h2) = beacon_pair();
        net.schedule_op(EmuTime::from_millis(3_500), SceneOp::RemoveNode { id: NodeId(2) });
        net.run_until(EmuTime::from_secs(10));
        assert_eq!(net.client_count(), 1);
        let heard_after: Vec<_> =
            h1.lock().iter().filter(|&&(_, at)| at > EmuTime::from_secs(4)).cloned().collect();
        assert!(heard_after.is_empty(), "{heard_after:?}");
    }

    #[test]
    fn mobility_is_integrated_and_recorded() {
        let mut net = SimNet::new(SimConfig::default());
        net.add_node(
            NodeId(1),
            Point::ORIGIN,
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
            LinkParams::ideal(8e6),
            Box::new(poem_client::app::IdleApp),
        )
        .unwrap();
        net.run_until(EmuTime::from_secs(5));
        let pos = net.scene().node(NodeId(1)).unwrap().pos;
        assert!((pos.x - 50.0).abs() < 1e-6, "{pos}");
        // Scene log: 1 AddNode + 50 mobility MoveNodes (100 ms step).
        let scene_log = net.recorder().scene();
        assert_eq!(scene_log.len(), 51, "{}", scene_log.len());
    }

    #[test]
    fn sim_harness_exposes_pipeline_metrics() {
        let (mut net, _h1, _h2) = beacon_pair();
        net.run_until(EmuTime::from_secs(5));
        let snap = net.metrics();
        assert!(!snap.is_empty());
        // 2 start beacons + 2×5 ticks ingested (see
        // traffic_is_recorded_end_to_end for the tally).
        assert_eq!(snap.counter("poem_ingest_packets_total"), Some(12));
        assert!(snap.counter("poem_ingest_deliveries_total").unwrap_or(0) >= 9);
        assert!(snap.counter("poem_recorder_traffic_records_total").unwrap_or(0) >= 12);
    }

    #[test]
    fn traffic_is_recorded_end_to_end() {
        let (mut net, _h1, _h2) = beacon_pair();
        net.run_until(EmuTime::from_secs(5));
        let rec = net.recorder();
        let traffic = rec.traffic();
        let ingress = traffic.iter().filter(|r| matches!(r, TrafficRecord::Ingress { .. })).count();
        let forwards =
            traffic.iter().filter(|r| matches!(r, TrafficRecord::Forward { .. })).count();
        // 2 start beacons + 2×5 ticks = 12 ingress. Forwards: node 1's
        // start beacon found no neighbor yet, and the two t=5 s beacons'
        // deliveries (t=5 s + 33 µs) fall beyond the run end → 9.
        assert_eq!(ingress, 12);
        assert_eq!(forwards, 9);
    }

    #[test]
    fn zero_probability_plan_is_a_behavioral_noop() {
        let run = |with_plan: bool| {
            let (mut net, _h1, heard2) = beacon_pair();
            if with_plan {
                let mut plan = FaultPlan::new();
                plan.push(EmuTime::ZERO, FaultKind::WireCorrupt { node: NodeId(1), prob: 0.0 });
                plan.push(EmuTime::ZERO, FaultKind::WireReorder { node: NodeId(2), prob: 0.0 });
                net.install_faults(&plan);
            }
            net.run_until(EmuTime::from_secs(10));
            let out = (heard2.lock().clone(), net.recorder().traffic(), net.recorder().scene());
            out
        };
        // Zero-probability faults draw nothing from the (separate) chaos
        // stream and never perturb the pipeline stream: identical logs.
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn duplicate_fault_doubles_deliveries() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(EmuTime::ZERO, FaultKind::WireDuplicate { node: NodeId(1), prob: 1.0 });
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(5));
        // Beacons from node 1 at 1..4 s (the start beacon found no
        // neighbor; the 5 s one lands past the run end) arrive twice each.
        let h2 = heard2.lock();
        let from1 = h2.iter().filter(|&&(src, _)| src == NodeId(1)).count();
        assert_eq!(from1, 8, "{h2:?}");
        let wire = poem_record::FaultQuery::new(&net.recorder().faults()).counts().wire;
        assert!(wire >= 5, "{wire}");
    }

    #[test]
    fn stall_holds_then_flushes_deliveries() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::from_millis(1_500),
            FaultKind::Stall { node: NodeId(2), duration: EmuDuration::from_secs(3) },
        );
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(8));
        let h2 = heard2.lock();
        // Nothing lands in (1.5 s, 4.5 s); the held beacons flush at 4.5 s.
        assert!(
            h2.iter()
                .all(|&(_, at)| at <= EmuTime::from_millis(1_500)
                    || at >= EmuTime::from_millis(4_500))
        );
        let flushed = h2.iter().filter(|&&(_, at)| at == EmuTime::from_millis(4_500)).count();
        assert_eq!(flushed, 3, "{h2:?}");
        // 7 beacons heard in total (1..7 s): none were lost, only delayed.
        assert_eq!(h2.len(), 7, "{h2:?}");
    }

    #[test]
    fn slow_reader_overflow_drops_are_accounted() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::from_millis(1_500),
            FaultKind::SlowReader {
                node: NodeId(2),
                buffer: 1,
                duration: EmuDuration::from_secs(3),
            },
        );
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(8));
        // Beacons at 2,3,4 s hit the stall; one is held, two overflow.
        let counts =
            poem_record::TrafficQuery::new(&net.recorder().traffic()).to(NodeId(2)).copy_counts();
        assert_eq!(counts.disconnected, 2, "{counts:?}");
        assert_eq!(heard2.lock().len(), 5);
    }

    #[test]
    fn disconnect_turns_copies_into_disconnected_drops() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(EmuTime::from_millis(2_500), FaultKind::Disconnect { node: NodeId(2) });
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(6));
        assert_eq!(net.client_count(), 1);
        // The VMN is still in the scene, so copies route but can't deliver.
        assert!(net.scene().node(NodeId(2)).is_some());
        let counts =
            poem_record::TrafficQuery::new(&net.recorder().traffic()).to(NodeId(2)).copy_counts();
        assert!(counts.disconnected >= 3, "{counts:?}");
        assert!(heard2.lock().iter().all(|&(_, at)| at < EmuTime::from_millis(2_500)));
    }

    #[test]
    fn crash_with_restart_revives_node_and_app() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::from_millis(2_500),
            FaultKind::Crash { node: NodeId(2), restart_after: Some(EmuDuration::from_secs(3)) },
        );
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(9));
        assert_eq!(net.client_count(), 2);
        assert!(net.scene().node(NodeId(2)).is_some());
        let h2 = heard2.lock();
        // Crashed from 2.5 s to 5.5 s; hears again after reviving.
        assert!(h2.iter().any(|&(_, at)| at > EmuTime::from_millis(5_500)), "{h2:?}");
        assert!(h2
            .iter()
            .all(|&(_, at)| at < EmuTime::from_millis(2_500) || at > EmuTime::from_millis(5_500)));
        let faults = net.recorder().faults();
        assert!(faults.iter().any(
            |f| matches!(f, poem_record::FaultRecord::Scene { action, .. } if action.starts_with("restore"))
        ));
    }

    #[test]
    fn jam_silences_the_channel_then_restores() {
        let (mut net, _h1, heard2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::from_millis(1_500),
            FaultKind::Jam {
                channel: poem_core::ChannelId(1),
                duration: EmuDuration::from_secs(3),
            },
        );
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(8));
        let h2 = heard2.lock();
        // Radios dark in (1.5 s, 4.5 s): jammed broadcasts find no
        // neighbors at all, so the window is silent (no copies, not even
        // drops), and beacons resume once the restore legs fire.
        assert!(h2
            .iter()
            .all(|&(_, at)| at < EmuTime::from_millis(1_500) || at > EmuTime::from_millis(4_500)));
        assert!(h2.iter().any(|&(_, at)| at > EmuTime::from_millis(4_500)), "{h2:?}");
        let counts = poem_record::TrafficQuery::new(&net.recorder().traffic()).copy_counts();
        // Baseline at 8 s is 15 forwards; the 6 jammed beacons (3 per
        // node) never became copies.
        assert_eq!(counts.forwarded, 9, "{counts:?}");
        let faults = net.recorder().faults();
        assert!(faults.iter().any(
            |f| matches!(f, poem_record::FaultRecord::Scene { action, .. } if action.contains("restore"))
        ));
    }

    #[test]
    fn clock_skew_shifts_client_stamps() {
        let (mut net, _h1, _h2) = beacon_pair();
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::from_millis(500),
            FaultKind::ClockSkew { node: NodeId(1), offset: EmuDuration::from_secs(2) },
        );
        net.install_faults(&plan);
        net.run_until(EmuTime::from_secs(4));
        let skews: Vec<_> = net
            .recorder()
            .traffic()
            .iter()
            .filter_map(|r| match *r {
                TrafficRecord::Ingress { src: NodeId(1), sent_at, received_at, .. } => {
                    Some(sent_at - received_at)
                }
                _ => None,
            })
            .collect();
        // Beacons after the injection carry stamps 2 s ahead of server time.
        assert!(skews.iter().skip(1).all(|&d| d == EmuDuration::from_secs(2)), "{skews:?}");
        assert_eq!(skews[0], EmuDuration::ZERO);
    }

    #[test]
    fn chaos_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
            let heard = Arc::new(Mutex::new(Vec::new()));
            for (id, x) in [(1u32, 0.0), (2u32, 50.0)] {
                net.add_node(
                    NodeId(id),
                    Point::new(x, 0.0),
                    RadioConfig::single(ChannelId(1), 100.0),
                    MobilityModel::Stationary,
                    LinkParams::ideal(8e6),
                    Box::new(Beacon { channel: ChannelId(1), heard: Arc::clone(&heard) }),
                )
                .unwrap();
            }
            let mut plan = FaultPlan::new();
            plan.push(EmuTime::ZERO, FaultKind::WireCorrupt { node: NodeId(1), prob: 0.4 });
            plan.push(EmuTime::ZERO, FaultKind::WireReorder { node: NodeId(2), prob: 0.4 });
            plan.push(
                EmuTime::from_secs(3),
                FaultKind::ClockJitter { node: NodeId(2), std_dev: EmuDuration::from_millis(2) },
            );
            net.install_faults(&plan);
            net.run_until(EmuTime::from_secs(10));
            let out = (net.recorder().traffic(), net.recorder().faults(), heard.lock().clone());
            out
        };
        assert_eq!(run(11), run(11));
        // And the chaos stream actually depends on the seed.
        assert_ne!(run(11).1, run(12).1);
    }

    #[test]
    fn channel_isolation_in_harness() {
        let mut net = SimNet::new(SimConfig::default());
        let heard = Arc::new(Mutex::new(Vec::new()));
        net.add_node(
            NodeId(1),
            Point::ORIGIN,
            RadioConfig::single(ChannelId(1), 100.0),
            MobilityModel::Stationary,
            LinkParams::ideal(8e6),
            Box::new(Beacon { channel: ChannelId(1), heard: Arc::new(Mutex::new(Vec::new())) }),
        )
        .unwrap();
        // Same spot, different channel: never hears anything.
        net.add_node(
            NodeId(2),
            Point::new(1.0, 0.0),
            RadioConfig::single(ChannelId(2), 100.0),
            MobilityModel::Stationary,
            LinkParams::ideal(8e6),
            Box::new(Beacon { channel: ChannelId(2), heard: Arc::clone(&heard) }),
        )
        .unwrap();
        net.run_until(EmuTime::from_secs(5));
        assert!(heard.lock().is_empty());
    }
}
