//! The real-time TCP emulation server (§3.2).
//!
//! Thread architecture follows the paper's step list, with the receive
//! path run by a readiness reactor instead of a thread per client:
//!
//! * a small set of **poll workers** ([`crate::reactor`]) own the
//!   listener and every client socket (non-blocking), performing steps
//!   1–4 (receive, neighbor lookup, drop/forward-time decision, list
//!   into the schedule) and answering clock-sync requests; each session
//!   is an explicit state machine ([`crate::session`]) — `Handshake →
//!   Legacy` for the classic one-VMN protocol, `Handshake → Mux` for
//!   multiplexed connections carrying many virtual sessions;
//! * one **scanning** thread "keeps watching the schedule and initiates"
//!   the send "once the emulation clock meets the time to forward"
//!   (steps 5–6) — sends never block: frames land in per-connection
//!   output buffers flushed by the owning worker;
//! * one **mobility** thread integrates mobility models in real time;
//! * recording (step 7) happens through the shared, thread-safe
//!   [`Recorder`].
//!
//! Read/idle deadlines are enforced by a per-worker timer wheel
//! ([`crate::timer`]) rather than `SO_RCVTIMEO`; shutdown wakes the
//! workers through explicit [`crate::reactor::Waker`] handles, so no
//! loopback self-connect is needed to unblock an accept call.
//!
//! Scene construction stays centralized: [`ServerHandle::apply_op`] is the
//! programmatic equivalent of the paper's GUI interactions and takes
//! effect immediately for every client — the consistency argument of §2.3.

use crate::engine::{Delivery, Pipeline};
use crate::reactor::{ConnShared, Enqueue, Reactor};
use crate::session::{Conn, PacingConfig, SessionState};
use crate::timer::TimerWheel;
use parking_lot::{Condvar, Mutex};
use poem_chaos::engine::{crash_legs, flap_legs, injection_record, jam_legs};
use poem_chaos::{ChaosMetrics, FaultKind, FaultPlan, WireFaultHub};
use poem_core::clock::Clock;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::sleep::{DutyCycle, GuardBand, SleepPolicy};
use poem_core::{EmuDuration, EmuPacket, EmuRng, EmuTime, ForwardSchedule, NodeId};
use poem_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use poem_proto::encode_frame;
use poem_proto::messages::{ClientMsg, ServerMsg, PROTOCOL_VERSION};
use poem_record::HistogramRow;
use poem_record::{FaultRecord, MetricsRecord, Recorder, TrafficRecord};
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: SocketAddr,
    /// Seed for the pipeline's stochastic decisions.
    pub seed: u64,
    /// Wall-clock interval at which mobility is integrated.
    pub mobility_step: Duration,
    /// Wall-clock interval at which a [`MetricsRecord`] snapshot is
    /// appended to the record log.
    pub metrics_interval: Duration,
    /// Per-client socket read timeout. A blocked `recv` wakes at this
    /// interval to re-check liveness (shutdown, eviction); `None` blocks
    /// forever, restoring the pre-hardening behavior.
    pub read_timeout: Option<Duration>,
    /// Per-client socket write timeout. Bounds how long a delivery send
    /// may block on a consumer that stopped reading; on expiry the client
    /// is evicted instead of wedging the scanning thread.
    pub write_timeout: Option<Duration>,
    /// How the scanning thread waits out the gap to the next forward
    /// deadline. [`SleepPolicy::Hybrid`] (the default) condvar-sleeps
    /// down to a calibrated guard band and spins the remainder; `Naive`
    /// restores the fixed-floor pre-calibration wait; `Spin` busy-waits
    /// whole gaps.
    pub sleep_policy: SleepPolicy,
    /// Scan-lag threshold past which the loop degrades gracefully: every
    /// due delivery is batch-drained per pass (widening the effective
    /// scan interval) instead of per-entry precision firing, and the
    /// `poem_scan_overload` gauge is raised until the loop catches up.
    pub overload_threshold: Duration,
    /// Poll workers in the reactor. Two suffice for the scenarios the
    /// paper sizes (readiness scanning is cheap); raise for many busy
    /// connections on a many-core host.
    pub reactor_workers: usize,
    /// Cap on one connection's pending output bytes. A consumer whose
    /// backlog would exceed it is evicted (`poem_writebuf_evictions_total`).
    pub write_buffer_cap: usize,
    /// Per-session token-bucket send pacing. `None` (the default) ingests
    /// at line rate; `Some` grants each virtual session a sustained rate
    /// plus burst, parking excess packets (`poem_session_paced_total`)
    /// and pausing the connection's reads when the parked queue fills.
    pub pacing: Option<PacingConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            seed: 0,
            mobility_step: Duration::from_millis(100),
            metrics_interval: Duration::from_secs(1),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(2)),
            sleep_policy: SleepPolicy::default(),
            overload_threshold: Duration::from_millis(5),
            reactor_workers: 2,
            write_buffer_cap: 8 * 1024 * 1024,
            pacing: None,
        }
    }
}

/// One attached VMN's routing entry: which connection hosts it and how to
/// frame deliveries towards it.
struct ClientEntry {
    conn: Arc<ConnShared>,
    /// Deliveries travel as `DeliverTo` (mux virtual session) instead of
    /// `Deliver` (legacy whole-socket session).
    mux: bool,
    /// Deliveries sent to this client
    /// (`poem_client_deliveries_total{node="N"}`).
    delivered: Arc<Counter>,
}

/// Bucket bounds (ns) for scan-loop firing lag (`fired_at − fire_at`) and
/// for event lag (`popped_at − due`): 1 µs … 1 s, dense at the low end so
/// the naive/hybrid policy gap stays visible in the quantiles.
const SCAN_LAG_BOUNDS: &[u64] = &[
    1_000,
    5_000,
    20_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    20_000_000,
    100_000_000,
    1_000_000_000,
];

/// Bucket bounds (ns) for condvar wake-up error (how far past the
/// requested instant the OS actually woke the scan thread): 1 µs … 16 ms.
const WAKE_ERROR_BOUNDS: &[u64] =
    &[1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000, 16_000_000];

/// Deadline-miss severity buckets (firing lag past `fire_at`): within
/// 100 µs counts as on time, then minor ≤ 1 ms, major ≤ 10 ms, severe
/// beyond that.
const MISS_ON_TIME_NS: u64 = 100_000;
const MISS_MINOR_NS: u64 = 1_000_000;
const MISS_MAJOR_NS: u64 = 10_000_000;

/// The server threads' handles into the shared registry.
struct ServerMetrics {
    schedule_depth: Arc<Gauge>,
    scan_lag_ns: Arc<Histogram>,
    event_lag_ns: Arc<Histogram>,
    wake_error_ns: Arc<Histogram>,
    overload: Arc<Gauge>,
    batch_drains: Arc<Counter>,
    auto_batch_mode: Arc<Gauge>,
    miss_minor: Arc<Counter>,
    miss_major: Arc<Counter>,
    miss_severe: Arc<Counter>,
    clients_connected: Arc<Gauge>,
    disconnects: Arc<Counter>,
    deliveries_sent: Arc<Counter>,
    drops_disconnected: Arc<Counter>,
    reactor_conns: Arc<Gauge>,
    reactor_wakes: Arc<Counter>,
    reactor_read_bytes: Arc<Counter>,
    reactor_write_bytes: Arc<Counter>,
    session_timeouts: Arc<Counter>,
    session_paced: Arc<Counter>,
    writebuf_evictions: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: &Registry) -> Self {
        ServerMetrics {
            schedule_depth: registry.gauge("poem_schedule_depth"),
            scan_lag_ns: registry.histogram("poem_scan_lag_ns", SCAN_LAG_BOUNDS),
            event_lag_ns: registry.histogram("poem_event_lag_ns", SCAN_LAG_BOUNDS),
            wake_error_ns: registry.histogram("poem_wake_error_ns", WAKE_ERROR_BOUNDS),
            overload: registry.gauge("poem_scan_overload"),
            batch_drains: registry.counter("poem_scan_batch_drains_total"),
            auto_batch_mode: registry.gauge("poem_auto_batch_mode"),
            miss_minor: registry.counter("poem_deadline_miss_total{severity=\"minor\"}"),
            miss_major: registry.counter("poem_deadline_miss_total{severity=\"major\"}"),
            miss_severe: registry.counter("poem_deadline_miss_total{severity=\"severe\"}"),
            clients_connected: registry.gauge("poem_clients_connected"),
            disconnects: registry.counter("poem_client_disconnects_total"),
            deliveries_sent: registry.counter("poem_deliveries_sent_total"),
            // Same instrument the pipeline registered — shared handle.
            drops_disconnected: registry.counter("poem_drops_total{reason=\"disconnected\"}"),
            reactor_conns: registry.gauge("poem_reactor_conns"),
            reactor_wakes: registry.counter("poem_reactor_wakes_total"),
            reactor_read_bytes: registry.counter("poem_reactor_read_bytes_total"),
            reactor_write_bytes: registry.counter("poem_reactor_write_bytes_total"),
            session_timeouts: registry.counter("poem_session_timeouts_total"),
            session_paced: registry.counter("poem_session_paced_total"),
            writebuf_evictions: registry.counter("poem_writebuf_evictions_total"),
        }
    }

    /// Severity-bucketed deadline accounting for one firing lag.
    fn note_lag(&self, lag_ns: u64) {
        self.scan_lag_ns.observe(lag_ns);
        if lag_ns > MISS_ON_TIME_NS {
            if lag_ns <= MISS_MINOR_NS {
                self.miss_minor.inc();
            } else if lag_ns <= MISS_MAJOR_NS {
                self.miss_major.inc();
            } else {
                self.miss_severe.inc();
            }
        }
    }
}

/// A transport fault in force against one client: deliveries are held (up
/// to `capacity`) or dropped until `until`.
struct StallEntry {
    until: EmuTime,
    /// `None` = plain stall (hold everything); `Some(n)` = slow reader
    /// with an `n`-delivery buffer, overflow is dropped.
    capacity: Option<usize>,
    held: Vec<Delivery>,
}

struct Shared {
    pipeline: Mutex<Pipeline>,
    /// The scenario seed (`ServerConfig::seed`), kept so late-installed
    /// profile libraries fork their regime RNG from the same root.
    seed: u64,
    recorder: Arc<Recorder>,
    clock: Arc<dyn Clock>,
    clients: Mutex<HashMap<NodeId, ClientEntry>>,
    schedule: Mutex<ForwardSchedule<Delivery>>,
    schedule_cv: Condvar,
    running: AtomicBool,
    registry: Arc<Registry>,
    metrics: ServerMetrics,
    /// The poll-worker set and its connection registry.
    reactor: Reactor,
    /// Wake total already folded into `poem_reactor_wakes_total`.
    wakes_seen: AtomicU64,
    /// Active transport faults (stall / slow-reader), keyed by victim.
    stalls: Mutex<HashMap<NodeId, StallEntry>>,
    /// Distributed forwarding, when a worker fleet is attached. The
    /// real-time frontend uses it best-effort: any cluster failure logs,
    /// tears the fleet down, and falls back to local forwarding (unlike
    /// the virtual-time harness, which fails the run — real time has no
    /// byte-identity contract to protect).
    cluster: Mutex<Option<Box<poem_cluster::Coordinator>>>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    write_buffer_cap: usize,
    pacing: Option<PacingConfig>,
    /// Paired mutex/condvar the periodic threads (mobility, metrics)
    /// sleep on; `shutdown()` notifies it so a long step interval never
    /// stalls the join and no step runs after `running` flips.
    shutdown_mx: Mutex<()>,
    shutdown_cv: Condvar,
}

/// A running emulation server.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerHandle {
    /// Starts a server emulating `scene` against `clock`.
    pub fn start(
        scene: Scene,
        clock: Arc<dyn Clock>,
        config: ServerConfig,
    ) -> io::Result<Arc<ServerHandle>> {
        let listener = TcpListener::bind(config.addr)?;
        // Non-blocking accept: worker 0 polls it alongside its sockets,
        // so shutdown needs no dummy connection to unblock an accept.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let recorder = Arc::new(Recorder::new());
        let pipeline = Pipeline::new(scene, Arc::clone(&recorder), EmuRng::seed(config.seed));
        pipeline.record_initial_scene(clock.now());
        // One registry for the whole server: the pipeline created it (and
        // registered its own and the recorder's instruments); the server
        // threads add scheduling/session instruments to the same one.
        let registry = Arc::clone(pipeline.metrics_registry());
        let metrics = ServerMetrics::new(&registry);
        let shared = Arc::new(Shared {
            pipeline: Mutex::new(pipeline),
            seed: config.seed,
            recorder,
            clock,
            clients: Mutex::new(HashMap::new()),
            schedule: Mutex::new(ForwardSchedule::new()),
            schedule_cv: Condvar::new(),
            running: AtomicBool::new(true),
            registry,
            metrics,
            reactor: Reactor::new(config.reactor_workers),
            wakes_seen: AtomicU64::new(0),
            stalls: Mutex::new(HashMap::new()),
            cluster: Mutex::new(None),
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            write_buffer_cap: config.write_buffer_cap,
            pacing: config.pacing,
            shutdown_mx: Mutex::new(()),
            shutdown_cv: Condvar::new(),
        });

        let mut threads = Vec::new();
        let mut listener = Some(listener);
        for idx in 0..shared.reactor.workers.len() {
            threads.push(spawn_named(&format!("poem-reactor-{idx}"), {
                let shared = Arc::clone(&shared);
                let listener = listener.take();
                move || reactor_worker_loop(shared, idx, listener)
            })?);
        }
        threads.push(spawn_named("poem-scan", {
            let shared = Arc::clone(&shared);
            let policy = config.sleep_policy;
            let overload = EmuDuration::from_nanos(config.overload_threshold.as_nanos() as i64);
            move || scan_loop(shared, policy, overload)
        })?);
        threads.push(spawn_named("poem-mobility", {
            let shared = Arc::clone(&shared);
            let step = config.mobility_step;
            move || mobility_loop(shared, step)
        })?);
        threads.push(spawn_named("poem-metrics", {
            let shared = Arc::clone(&shared);
            let interval = config.metrics_interval;
            move || metrics_loop(shared, interval)
        })?);

        Ok(Arc::new(ServerHandle { shared, addr, threads: Mutex::new(threads) }))
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The run's recorder.
    pub fn recorder(&self) -> Arc<Recorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// The server's emulation clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.shared.clock)
    }

    /// A point-in-time snapshot of every server metric: pipeline ingest
    /// and drop counters, recorder buffering, schedule depth, scan-loop
    /// firing lag, and per-client delivery counts. Render it with
    /// [`poem_obs::MetricsSnapshot::to_text`] (Prometheus exposition) or
    /// [`crate::viz::render_metrics`] (human table).
    pub fn metrics(&self) -> MetricsSnapshot {
        // Refresh the depth gauge so a snapshot between scan wake-ups
        // still reflects reality.
        self.shared.metrics.schedule_depth.set(self.shared.schedule.lock().len() as i64);
        self.shared.refresh_reactor_metrics();
        self.shared.registry.snapshot()
    }

    /// Switches forwarding to a `poem-shardd` worker fleet. Call before
    /// clients connect; the fleet mirrors the current scene. Real-time
    /// cluster use is best-effort — a cluster failure mid-run falls back
    /// to local forwarding instead of killing the server.
    pub fn attach_cluster(
        &self,
        mut config: poem_cluster::ClusterConfig,
    ) -> Result<(), poem_cluster::ClusterError> {
        let pipeline = self.shared.pipeline.lock();
        if pipeline.mac() != poem_core::mac::MacModel::None {
            return Err(poem_cluster::ClusterError::Unsupported(
                "MAC models (medium state is global)",
            ));
        }
        config.seed = self.shared.seed;
        let coord = poem_cluster::Coordinator::launch(
            config,
            pipeline.decide_base(),
            pipeline.scene(),
            pipeline.metrics_registry(),
        )?;
        *self.shared.cluster.lock() = Some(Box::new(coord));
        Ok(())
    }

    /// Whether a worker fleet is currently attached.
    pub fn cluster_attached(&self) -> bool {
        self.shared.cluster.lock().is_some()
    }

    /// Applies a scene operation right now — the API behind the paper's
    /// GUI drag/configure interactions.
    pub fn apply_op(&self, op: SceneOp) -> Result<(), SceneError> {
        let now = self.shared.clock.now();
        let dead = {
            let mut pipeline = self.shared.pipeline.lock();
            pipeline.apply_op(now, op.clone())?;
            let mut cluster = self.shared.cluster.lock();
            match cluster.as_deref_mut() {
                Some(coord) => {
                    // The coordinator round-trip is the resource this
                    // dedicated mutex serializes: mirror order must match
                    // pipeline apply order, so the RPC cannot move outside
                    // the guards.
                    // poem-lint: allow(blocking_under_lock): the cluster mutex exists to serialize the coordinator wire protocol
                    if let Err(e) = coord.apply_op(now, &op, pipeline.scene()) {
                        eprintln!(
                            "cluster failure on `{op}`, falling back to local forwarding: {e}"
                        );
                        cluster.take()
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        // Teardown blocks on the wire — run it with every lock released.
        if let Some(mut coord) = dead {
            coord.shutdown();
        }
        Ok(())
    }

    /// Runs `f` with read access to the current scene.
    pub fn with_scene<R>(&self, f: impl FnOnce(&Scene) -> R) -> R {
        f(self.shared.pipeline.lock().scene())
    }

    /// Installs an empirical profile library, seeded with the server's
    /// scenario seed so the real-time frontend realizes the same regime
    /// sequences a virtual-time run of the scenario would.
    pub fn install_profiles(&self, library: poem_profiles::ProfileLibrary) {
        self.shared.pipeline.lock().install_profiles(library, self.shared.seed);
    }

    /// Currently connected VMNs.
    pub fn connected(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.shared.clients.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Forcibly drops `node`'s connection (the transport-layer
    /// `Disconnect` fault). Returns `false` when the node was not
    /// connected. The scene node stays; subsequent copies towards it
    /// become `Disconnected` drops until the client reconnects.
    pub fn disconnect(&self, node: NodeId) -> bool {
        self.shared.evict(node)
    }

    /// Spawns a thread that executes `plan` against wall-clock time:
    /// each spec fires once the emulation clock reaches its injection
    /// time, including the restore legs of timed faults (flap, jam,
    /// crash-with-restart, stall release). Wire faults are routed through
    /// `wires` (streams registered there keep mangling until
    /// reconfigured); clock faults are recorded and counted, the actual
    /// skew lives client-side in a `ChaosClock`. The thread exits when
    /// the plan (restores included) is exhausted or the server shuts
    /// down.
    pub fn spawn_fault_driver(
        &self,
        plan: &FaultPlan,
        wires: Option<Arc<WireFaultHub>>,
    ) -> io::Result<JoinHandle<()>> {
        let shared = Arc::clone(&self.shared);
        let plan = plan.clone();
        spawn_named("poem-chaos", move || fault_driver(shared, plan, wires))
    }

    /// Announces shutdown to every client and stops all threads. The
    /// reactor workers are woken through their [`crate::reactor::Waker`]
    /// handles — no loopback self-connect — and perform one bounded final
    /// flush so queued `Shutdown` frames still reach well-behaved peers.
    pub fn shutdown(&self) {
        if !self.shared.running.swap(false, Ordering::AcqRel) {
            return;
        }
        // Queue the goodbye on every live connection (handshake-stage
        // ones included). The direct-write fast path usually puts the
        // frame on the wire right here; leftovers flush in the workers'
        // teardown pass.
        if let Ok(frame) = encode_frame(&ServerMsg::Shutdown) {
            let conns: Vec<_> = self.shared.reactor.conns.lock().values().cloned().collect();
            for conn in conns {
                let _ = conn.enqueue_frame(&frame, self.shared.write_buffer_cap, None);
                conn.close_after_flush();
            }
        }
        self.shared.clients.lock().clear();
        self.shared.metrics.clients_connected.set(0);
        self.shared.schedule_cv.notify_all();
        // Wake the periodic threads mid-interval. The lock round-trip
        // orders the notify after any in-flight `running` check, so a
        // sleeper can't slip into its wait and miss the wake-up.
        {
            let _guard = self.shared.shutdown_mx.lock();
            self.shared.shutdown_cv.notify_all();
        }
        self.shared.reactor.wake_all();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        // Detach first so the (blocking) teardown runs unlocked.
        let dead = self.shared.cluster.lock().take();
        if let Some(mut coord) = dead {
            coord.shutdown();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("connected", &self.connected())
            .finish_non_exhaustive()
    }
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new().name(name.into()).spawn(f)
}

/// Tick interval of each worker's timer wheel: idle-deadline granularity.
const TIMER_TICK: Duration = Duration::from_millis(50);

/// Slots per timer wheel. One revolution covers 64 × 50 ms = 3.2 s;
/// longer read timeouts fire early and lazily re-arm with the remainder.
const TIMER_SLOTS: usize = 64;

/// How long a worker parks when a full pass made no progress. Bounds the
/// latency of any wake the unpark token missed (there are none in theory;
/// this is the liveness backstop).
const PARK_IDLE: Duration = Duration::from_millis(1);

/// Bound on the final output drain a worker performs at shutdown, so
/// queued `Shutdown` frames reach well-behaved peers without a wedged one
/// stalling the join.
const SHUTDOWN_FLUSH: Duration = Duration::from_millis(200);

/// One poll worker (§3.2 steps 1–4 for its share of the connections).
/// Worker 0 additionally owns the (non-blocking) listener. Each pass:
/// accept, register dispatched streams, drain paced packets whose tokens
/// refilled, read + decode + handle every readable socket (accumulating
/// `Data` into one batch stamped with a single `received_at`), ingest the
/// batch, flush pending output (evicting stalled consumers), advance the
/// timer wheel for idle deadlines, reap closed connections, and park
/// briefly if nothing moved.
fn reactor_worker_loop(shared: Arc<Shared>, idx: usize, listener: Option<TcpListener>) {
    let worker = Arc::clone(&shared.reactor.workers[idx]);
    worker.waker.register();
    let mut conns: BTreeMap<u64, Conn> = BTreeMap::new();
    let mut wheel = TimerWheel::new(TIMER_TICK, TIMER_SLOTS, Instant::now());
    let mut fired: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut batch: Vec<EmuPacket> = Vec::new();
    while shared.running.load(Ordering::Acquire) {
        let mut progress = false;
        if let Some(l) = listener.as_ref() {
            loop {
                match l.accept() {
                    Ok((stream, _)) => {
                        shared.reactor.dispatch(stream);
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        let fresh: Vec<TcpStream> = std::mem::take(&mut *worker.incoming.lock());
        for stream in fresh {
            progress = true;
            if let Some(conn) = register_conn(&shared, idx, stream, &mut wheel) {
                conns.insert(conn.shared.id, conn);
            }
        }
        for conn in conns.values_mut() {
            progress |= read_pass(&shared, conn, &mut scratch, &mut batch);
        }
        if !batch.is_empty() {
            // One timestamp for everything this pass received: packets
            // that arrived together are decided together (and, under a
            // cluster, travel as one coordinator round-trip).
            let received_at = shared.clock.now();
            let deliveries = ingest_batch_best_effort(&shared, &batch, received_at);
            batch.clear();
            if !deliveries.is_empty() {
                let mut schedule = shared.schedule.lock();
                for d in deliveries {
                    schedule.schedule(d.fire_at, d);
                }
                shared.metrics.schedule_depth.set(schedule.len() as i64);
                shared.schedule_cv.notify_all();
            }
            progress = true;
        }
        for conn in conns.values() {
            if conn.shared.closed.load(Ordering::Acquire) || conn.shared.backlog() == 0 {
                continue;
            }
            match conn.shared.flush(shared.write_timeout) {
                Ok(0) => {}
                Ok(n) => {
                    progress = true;
                    conn.shared.touch();
                    shared.metrics.reactor_write_bytes.add(n as u64);
                }
                Err(e) => {
                    if e.kind() == io::ErrorKind::TimedOut {
                        shared.metrics.writebuf_evictions.inc();
                    }
                    conn.shared.close();
                    progress = true;
                }
            }
        }
        fired.clear();
        wheel.advance(Instant::now(), &mut fired);
        if let Some(limit) = shared.read_timeout {
            for id in fired.drain(..) {
                let Some(conn) = conns.get(&id) else { continue };
                if conn.shared.closed.load(Ordering::Acquire) {
                    continue;
                }
                let idle = conn.shared.idle_for();
                if idle >= limit {
                    // Fully silent in both directions for the whole
                    // timeout: a half-open carcass. Deliveries count as
                    // activity, so a pure listener is never reaped.
                    shared.metrics.session_timeouts.inc();
                    conn.shared.close();
                    progress = true;
                } else {
                    wheel.arm(id, limit - idle);
                }
            }
        }
        conns.retain(|_, conn| {
            if conn.shared.closed.load(Ordering::Acquire) {
                deregister_conn(&shared, conn);
                progress = true;
                false
            } else {
                true
            }
        });
        if !progress {
            std::thread::park_timeout(PARK_IDLE);
        }
    }
    // Teardown: bounded final flush so the Shutdown frames shutdown()
    // queued still reach peers that are reading.
    let deadline = Instant::now() + SHUTDOWN_FLUSH;
    loop {
        let mut pending = false;
        for conn in conns.values() {
            if conn.shared.closed.load(Ordering::Acquire) {
                continue;
            }
            if conn.shared.flush(None).is_err() {
                conn.shared.close();
            } else if conn.shared.backlog() > 0 {
                pending = true;
            }
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::park_timeout(Duration::from_millis(5));
    }
    for conn in conns.values() {
        conn.shared.close();
        deregister_conn(&shared, conn);
    }
}

/// Sets up one freshly accepted stream: non-blocking, no Nagle, an
/// [`ConnShared`] write half in the reactor registry, and a first timer
/// entry. `None` means the socket died mid-setup (the peer is gone).
fn register_conn(
    shared: &Shared,
    worker: usize,
    stream: TcpStream,
    wheel: &mut TimerWheel,
) -> Option<Conn> {
    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
        return None;
    }
    let write_half = stream.try_clone().ok()?;
    let id = shared.reactor.alloc_id();
    let cs = Arc::new(ConnShared::new(id, write_half, worker));
    shared.reactor.conns.lock().insert(id, Arc::clone(&cs));
    if let Some(limit) = shared.read_timeout {
        wheel.arm(id, limit);
    }
    Some(Conn::new(cs, stream))
}

/// Drains paced packets whose tokens refilled, then reads and handles
/// everything the socket has (unless pacing paused reads). Returns
/// whether any bytes or packets moved.
fn read_pass(
    shared: &Shared,
    conn: &mut Conn,
    scratch: &mut [u8],
    batch: &mut Vec<EmuPacket>,
) -> bool {
    let mut progress = false;
    if let Some(cfg) = shared.pacing {
        let now = Instant::now();
        while let Some(pkt) = conn.paced.front() {
            let src = pkt.src;
            if !conn.take_token(src, &cfg, now) {
                break;
            }
            if let Some(pkt) = conn.paced.pop_front() {
                batch.push(pkt);
                progress = true;
            }
        }
        if conn.paused && conn.paced.len() <= cfg.queue_cap / 2 {
            conn.paused = false;
        }
    }
    if conn.paused || conn.shared.closed.load(Ordering::Acquire) {
        return progress;
    }
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.shared.close();
                return true;
            }
            Ok(n) => {
                progress = true;
                conn.shared.touch();
                shared.metrics.reactor_read_bytes.add(n as u64);
                conn.decoder.feed(&scratch[..n]);
                loop {
                    match conn.decoder.next_msg::<ClientMsg>() {
                        Ok(Some(msg)) => handle_msg(shared, conn, msg, batch),
                        Ok(None) => break,
                        Err(_) => {
                            // Unframeable garbage: the stream cannot
                            // resynchronize, drop the connection.
                            conn.shared.close();
                            return true;
                        }
                    }
                    if conn.shared.closed.load(Ordering::Acquire) {
                        return true;
                    }
                }
                if conn.paused {
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progress,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.shared.close();
                return true;
            }
        }
    }
}

/// The per-message state machine (`Handshake → Legacy | Mux`).
fn handle_msg(shared: &Shared, conn: &mut Conn, msg: ClientMsg, batch: &mut Vec<EmuPacket>) {
    match (conn.state, msg) {
        (SessionState::Handshake, ClientMsg::Hello { version, node }) => {
            match admit(shared, conn, version, Some(node)) {
                Ok(()) => {
                    conn.state = SessionState::Legacy(node);
                    send_conn(
                        shared,
                        &conn.shared,
                        &ServerMsg::Welcome {
                            version: PROTOCOL_VERSION,
                            node,
                            server_time: shared.clock.now(),
                        },
                    );
                }
                Err(reason) => refuse(shared, conn, ServerMsg::Refused { reason }),
            }
        }
        (SessionState::Handshake, ClientMsg::MuxHello { version }) => {
            if version != PROTOCOL_VERSION {
                refuse(
                    shared,
                    conn,
                    ServerMsg::Refused { reason: format!("protocol v{version} unsupported") },
                );
                return;
            }
            conn.state = SessionState::Mux;
            conn.shared.mux.store(true, Ordering::Release);
            send_conn(
                shared,
                &conn.shared,
                &ServerMsg::MuxWelcome {
                    version: PROTOCOL_VERSION,
                    server_time: shared.clock.now(),
                },
            );
        }
        (SessionState::Mux, ClientMsg::Attach { node }) => {
            match admit(shared, conn, PROTOCOL_VERSION, Some(node)) {
                Ok(()) => send_conn(
                    shared,
                    &conn.shared,
                    &ServerMsg::Attached { node, server_time: shared.clock.now() },
                ),
                Err(reason) => {
                    send_conn(shared, &conn.shared, &ServerMsg::AttachRefused { node, reason })
                }
            }
        }
        (SessionState::Mux, ClientMsg::Detach { node }) => {
            let owned = {
                let mut clients = shared.clients.lock();
                match clients.get(&node) {
                    Some(e) if Arc::ptr_eq(&e.conn, &conn.shared) => {
                        clients.remove(&node);
                        true
                    }
                    _ => false,
                }
            };
            if owned {
                conn.shared.nodes.lock().remove(&node);
                shared.metrics.clients_connected.sub(1);
                shared.metrics.disconnects.inc();
            }
            send_conn(
                shared,
                &conn.shared,
                &ServerMsg::Detached { node, reason: "detached".into() },
            );
        }
        // Anything else before a handshake is a protocol-order violation,
        // answered exactly like the thread-per-client server did.
        (SessionState::Handshake, other) => {
            refuse(
                shared,
                conn,
                ServerMsg::Refused { reason: format!("expected Hello, got {other:?}") },
            );
        }
        (_, ClientMsg::Data(pkt)) => {
            if !conn.owns(pkt.src) {
                // A client may only originate traffic as an identity it
                // registered; anything else is silently ignored, like the
                // thread-per-client server did.
                return;
            }
            if let Some(cfg) = shared.pacing {
                if !conn.take_token(pkt.src, &cfg, Instant::now()) {
                    shared.metrics.session_paced.inc();
                    conn.paced.push_back(pkt);
                    if conn.paced.len() >= cfg.queue_cap {
                        // Transport backpressure: stop reading until the
                        // parked queue half-drains.
                        conn.paused = true;
                    }
                    return;
                }
            }
            batch.push(pkt);
        }
        (_, ClientMsg::SyncRequest { t_c1 }) => {
            let t_s2 = shared.clock.now();
            let t_s3 = shared.clock.now();
            send_conn(shared, &conn.shared, &ServerMsg::sync_reply(t_c1, t_s2, t_s3));
        }
        (_, ClientMsg::Bye) => {
            conn.shared.close_after_flush();
        }
        // Duplicate or out-of-place control traffic: ignore, exactly as
        // the old receive loop ignored duplicate Hellos.
        (_, ClientMsg::Hello { .. })
        | (_, ClientMsg::MuxHello { .. })
        | (_, ClientMsg::Attach { .. })
        | (_, ClientMsg::Detach { .. }) => {}
    }
}

/// Validates an identity claim and, on success, registers the node on
/// this connection (entry in the client map + the conn's attached set).
/// Registration happens before the acceptance message goes out, so the
/// moment the client sees the handshake complete the server already
/// routes to it.
fn admit(shared: &Shared, conn: &Conn, version: u16, node: Option<NodeId>) -> Result<(), String> {
    if version != PROTOCOL_VERSION {
        return Err(format!("protocol v{version} unsupported"));
    }
    let Some(node) = node else {
        return Err("no identity claimed".into());
    };
    if shared.pipeline.lock().scene().node(node).is_none() {
        return Err(format!("{node} is not part of the emulated scene"));
    }
    let mux = conn.state == SessionState::Mux;
    let mut clients = shared.clients.lock();
    if clients.contains_key(&node) {
        return Err(format!("{node} is already connected"));
    }
    clients.insert(
        node,
        ClientEntry {
            conn: Arc::clone(&conn.shared),
            mux,
            delivered: shared
                .registry
                .counter(&format!("poem_client_deliveries_total{{node=\"{}\"}}", node.0)),
        },
    );
    drop(clients);
    conn.shared.nodes.lock().insert(node);
    shared.metrics.clients_connected.add(1);
    Ok(())
}

/// Sends a refusal and closes the connection once it flushed.
fn refuse(shared: &Shared, conn: &mut Conn, msg: ServerMsg) {
    send_conn(shared, &conn.shared, &msg);
    conn.shared.close_after_flush();
}

/// Encodes and enqueues one control/delivery message on a connection,
/// closing it when the consumer is stalled or its buffer overflows. The
/// worker-side counterpart of [`deliver`]'s scan-thread sends.
fn send_conn(shared: &Shared, conn: &ConnShared, msg: &ServerMsg) {
    let Ok(frame) = encode_frame(msg) else {
        return;
    };
    match conn.enqueue_frame(&frame, shared.write_buffer_cap, shared.write_timeout) {
        Enqueue::Sent => {
            conn.touch();
            shared.metrics.reactor_write_bytes.add(frame.len() as u64);
            if conn.backlog() > 0 {
                shared.reactor.wake_owner(conn);
            }
        }
        Enqueue::Stalled | Enqueue::Overflow => {
            shared.metrics.writebuf_evictions.inc();
            conn.close();
            shared.reactor.wake_owner(conn);
        }
        Enqueue::Closed => {}
    }
}

/// Tears down one reaped connection: every VMN still attached to it is
/// deregistered (guarded by identity, so a node that already re-registered
/// on a fresh connection is left alone) and the conn leaves the registry.
fn deregister_conn(shared: &Shared, conn: &Conn) {
    let nodes: Vec<NodeId> = std::mem::take(&mut *conn.shared.nodes.lock()).into_iter().collect();
    for node in nodes {
        let mut clients = shared.clients.lock();
        if clients.get(&node).is_some_and(|e| Arc::ptr_eq(&e.conn, &conn.shared)) {
            clients.remove(&node);
            drop(clients);
            shared.metrics.clients_connected.sub(1);
            shared.metrics.disconnects.inc();
        }
    }
    shared.reactor.conns.lock().remove(&conn.shared.id);
}

/// Longest single condvar wait: bounds how stale the loop's view of
/// `running` and of the schedule head can get.
const MAX_WAIT: Duration = Duration::from_millis(50);

/// Longest single spin stretch: a spinning scan thread re-checks the
/// schedule head at least this often, so a newly scheduled *earlier*
/// deadline is never ignored for longer than this.
const MAX_SPIN: EmuDuration = EmuDuration::from_nanos(5_000_000);

/// The scanning thread (§3.2 steps 5–6).
///
/// Firing precision comes from how the gap to the next deadline is waited
/// out, selected by [`SleepPolicy`]:
///
/// * **Naive** — one condvar wait floored at 50 µs; the OS wake-up error
///   lands directly in the firing lag. Kept as the E16 baseline.
/// * **Hybrid** — condvar-sleep down to `deadline − guard`, then spin the
///   rest; `guard` is recalibrated online by a [`GuardBand`] fed with the
///   wake-up error of every timed-out wait, so the spin phase is exactly
///   as wide as this host's timers are sloppy.
/// * **Spin** — busy-wait whole gaps (one core pinned), condvar-sleeping
///   only while the schedule is empty.
/// * **Auto** — Hybrid while the loop keeps up; once the overload duty
///   cycle over a sliding [`DutyCycle`] window crosses its engage
///   threshold, every due entry is batch-drained per pass and waits fall
///   back to coarse Naive sleeps (`poem_auto_batch_mode` = 1) until the
///   duty cycle decays below the disengage threshold.
///
/// Load adaptation: when the head of the schedule has fallen further
/// behind than the overload threshold, precision is pointless — the loop
/// batch-drains everything due in one pass (`poem_scan_batch_drains_total`)
/// and raises `poem_scan_overload` until it catches up, degrading
/// throughput-first instead of falling behind silently.
fn scan_loop(shared: Arc<Shared>, policy: SleepPolicy, overload_threshold: EmuDuration) {
    let mut guard = GuardBand::standard();
    let mut duty = DutyCycle::standard();
    let mut schedule = shared.schedule.lock();
    while shared.running.load(Ordering::Acquire) {
        let now = shared.clock.now();
        if let Some(due) = schedule.next_due() {
            let lag_overload = due <= now && now.since(due) >= overload_threshold;
            // In engaged auto mode even on-time heads drain as a batch:
            // throughput over precision until the window cools off.
            let auto_batch = policy == SleepPolicy::Auto && duty.engaged() && due <= now;
            if lag_overload || auto_batch {
                let batch = schedule.drain_due(now);
                shared.metrics.schedule_depth.set(schedule.len() as i64);
                shared.metrics.overload.set(lag_overload as i64);
                shared.metrics.batch_drains.inc();
                if policy == SleepPolicy::Auto {
                    let engaged = duty.observe(lag_overload);
                    shared.metrics.auto_batch_mode.set(engaged as i64);
                }
                drop(schedule);
                for (batch_due, d) in batch {
                    let t = shared.clock.now();
                    shared
                        .metrics
                        .event_lag_ns
                        .observe(t.since(batch_due).as_nanos().max(0) as u64);
                    fire(&shared, d, t);
                }
                schedule = shared.schedule.lock();
                continue;
            }
        }
        if let Some((due, d)) = schedule.pop_due(now) {
            shared.metrics.schedule_depth.set(schedule.len() as i64);
            shared.metrics.event_lag_ns.observe(now.since(due).as_nanos().max(0) as u64);
            // Send outside the schedule lock so receivers keep scheduling.
            drop(schedule);
            fire(&shared, d, now);
            schedule = shared.schedule.lock();
            continue;
        }
        shared.metrics.overload.set(0);
        // Caught-up pass: decay the auto-mode duty cycle and resolve
        // which wait strategy this iteration uses.
        let effective = if policy == SleepPolicy::Auto {
            let engaged = duty.observe(false);
            shared.metrics.auto_batch_mode.set(engaged as i64);
            if engaged {
                SleepPolicy::Naive
            } else {
                SleepPolicy::Hybrid
            }
        } else {
            policy
        };
        match (effective, schedule.next_due()) {
            (SleepPolicy::Naive, Some(due)) => {
                let wait = (due - now).to_std().max(Duration::from_micros(50));
                timed_wait(&shared, &mut schedule, wait.min(MAX_WAIT), &mut guard);
            }
            (SleepPolicy::Hybrid, Some(due)) => {
                let gap_ns = due.since(now).as_nanos().max(0) as u64;
                let guard_ns = guard.current_ns();
                if gap_ns > guard_ns {
                    // Coarse phase: sleep to the guard-band edge.
                    let wait = Duration::from_nanos(gap_ns - guard_ns).min(MAX_WAIT);
                    timed_wait(&shared, &mut schedule, wait, &mut guard);
                } else {
                    // Precision phase: spin out the last guard-band span.
                    drop(schedule);
                    spin_until(&shared, due);
                    schedule = shared.schedule.lock();
                }
            }
            (SleepPolicy::Spin, Some(due)) => {
                drop(schedule);
                spin_until(&shared, due);
                schedule = shared.schedule.lock();
            }
            (SleepPolicy::Auto, Some(due)) => {
                // Unreachable in practice — Auto resolves to Naive or
                // Hybrid above — but a coarse wait keeps the match total
                // without a panic path on the hostile-input surface.
                let wait = (due - now).to_std().max(Duration::from_micros(50));
                timed_wait(&shared, &mut schedule, wait.min(MAX_WAIT), &mut guard);
            }
            // Empty schedule: block until a receiver schedules something
            // (the timeout is only a liveness backstop). The timed-out
            // wake still calibrates the guard band, so sparse traffic
            // keeps the estimate fresh.
            (_, None) => timed_wait(&shared, &mut schedule, MAX_WAIT, &mut guard),
        }
    }
}

/// One condvar wait on the schedule, measuring the wake-up error (how far
/// past the requested instant the OS actually delivered the timeout) into
/// the histogram and the guard-band calibrator. Notified (non-timeout)
/// wakes carry no timer-error signal and are skipped.
fn timed_wait(
    shared: &Shared,
    schedule: &mut parking_lot::MutexGuard<'_, ForwardSchedule<Delivery>>,
    wait: Duration,
    guard: &mut GuardBand,
) {
    let start = shared.clock.now();
    let result = shared.schedule_cv.wait_for(schedule, wait);
    if result.timed_out() {
        let target = start + EmuDuration::from_nanos(wait.as_nanos() as i64);
        let err_ns = shared.clock.now().since(target).as_nanos().max(0) as u64;
        shared.metrics.wake_error_ns.observe(err_ns);
        guard.observe(err_ns);
    }
}

/// Busy-waits (yielding periodically) until `due`, shutdown, or the
/// [`MAX_SPIN`] re-check bound, whichever comes first. Runs *without* the
/// schedule lock so receiver threads keep scheduling while we spin.
fn spin_until(shared: &Shared, due: EmuTime) {
    let cap = shared.clock.now() + MAX_SPIN;
    let deadline = if due <= cap { due } else { cap };
    let mut spins = 0u32;
    while shared.clock.now() < deadline {
        if !shared.running.load(Ordering::Acquire) {
            return;
        }
        spins = spins.wrapping_add(1);
        if spins.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Step 6: the send itself, plus step-7 recording. Transport faults
/// intercept before the socket: a stalled client's copies are parked (or,
/// past its buffer, dropped) without blocking the scanning thread. A
/// stall whose deadline has already passed is released right here, on the
/// first post-expiry fire — held deliveries flush first, in their
/// original fire order — so a tardy (or dead) fault-driver `Release` step
/// can no longer let later packets overtake parked ones.
fn fire(shared: &Shared, d: Delivery, now: EmuTime) {
    let flushed = {
        let mut stalls = shared.stalls.lock();
        match stalls.get_mut(&d.to) {
            Some(st) if now < st.until => {
                match st.capacity {
                    Some(cap) if st.held.len() >= cap => {
                        drop(stalls);
                        // Slow-reader overflow: the copy is lost exactly
                        // as if the client were gone.
                        shared.record_disconnected(&d, now);
                    }
                    _ => st.held.push(d),
                }
                return;
            }
            Some(_) => stalls.remove(&d.to).map(|st| st.held),
            None => None,
        }
    };
    if let Some(held) = flushed {
        // Whoever removes the entry owns the release bookkeeping; the
        // driver's own `Release` then finds nothing and does nothing.
        ChaosMetrics::register(&shared.registry).deactivate();
        shared.recorder.record_fault(FaultRecord::Transport {
            at: now,
            node: d.to,
            action: "release".into(),
        });
        for h in held {
            deliver(shared, h, now);
        }
    }
    deliver(shared, d, now);
}

/// The socket send for one delivery, with deadline accounting: the firing
/// lag (`sent_at − fire_at`) feeds `poem_scan_lag_ns` and, past the
/// 100 µs on-time budget, the severity-bucketed `poem_deadline_miss_total`
/// counters. Deliveries released from a stall count here too — they *are*
/// late, usually severely; that is what the fault injected.
fn deliver(shared: &Shared, d: Delivery, now: EmuTime) {
    shared.metrics.note_lag(now.since(d.fire_at).as_nanos().max(0) as u64);
    let target = {
        let clients = shared.clients.lock();
        clients.get(&d.to).map(|e| (Arc::clone(&e.conn), e.mux, Arc::clone(&e.delivered)))
    };
    let Some((conn, mux, delivered)) = target else {
        shared.record_disconnected(&d, now);
        return;
    };
    let msg = if mux {
        ServerMsg::DeliverTo { to: d.to, packet: d.packet.clone(), forwarded_at: now }
    } else {
        ServerMsg::Deliver { packet: d.packet.clone(), forwarded_at: now }
    };
    let Ok(frame) = encode_frame(&msg) else {
        shared.record_disconnected(&d, now);
        return;
    };
    match conn.enqueue_frame(&frame, shared.write_buffer_cap, shared.write_timeout) {
        Enqueue::Sent => {
            conn.touch();
            shared.metrics.deliveries_sent.inc();
            shared.metrics.reactor_write_bytes.add(frame.len() as u64);
            delivered.inc();
            shared.recorder.record_traffic(TrafficRecord::Forward {
                id: d.packet.id,
                to: d.to,
                at: now,
            });
            if conn.backlog() > 0 {
                // Part of the frame is buffered: the owning worker
                // finishes it. The enqueue itself never blocked, so a
                // wedged client costs the scan thread nothing.
                shared.reactor.wake_owner(&conn);
            }
        }
        Enqueue::Stalled | Enqueue::Overflow => {
            // The consumer stalled past the write timeout or its backlog
            // hit the cap: evict so it can't absorb buffer memory and
            // scan-thread time again and again.
            shared.metrics.writebuf_evictions.inc();
            conn.close();
            shared.reactor.wake_owner(&conn);
            shared.record_disconnected(&d, now);
        }
        Enqueue::Closed => shared.record_disconnected(&d, now),
    }
}

impl Shared {
    fn record_disconnected(&self, d: &Delivery, now: EmuTime) {
        self.metrics.drops_disconnected.inc();
        self.recorder.record_traffic(TrafficRecord::Drop {
            id: d.packet.id,
            to: d.to,
            at: now,
            reason: poem_record::DropReason::Disconnected,
        });
    }

    /// Sleeps for `d` or until shutdown wakes the periodic threads,
    /// whichever comes first. Returns `true` while the server is still
    /// running, so `while shared.interruptible_sleep(step) { … }` never
    /// runs a step after `running` flips.
    fn interruptible_sleep(&self, d: Duration) -> bool {
        let mut guard = self.shutdown_mx.lock();
        if !self.running.load(Ordering::Acquire) {
            return false;
        }
        self.shutdown_cv.wait_for(&mut guard, d);
        self.running.load(Ordering::Acquire)
    }

    /// Deregisters `node`. A legacy session loses its whole connection; a
    /// mux virtual session is detached (with a `Detached` notice) while
    /// the socket and its sibling sessions stay up. Returns `false` when
    /// the node was not connected.
    fn evict(&self, node: NodeId) -> bool {
        let Some(entry) = self.clients.lock().remove(&node) else {
            return false;
        };
        self.metrics.clients_connected.sub(1);
        self.metrics.disconnects.inc();
        if entry.mux {
            entry.conn.nodes.lock().remove(&node);
            if let Ok(frame) = encode_frame(&ServerMsg::Detached { node, reason: "evicted".into() })
            {
                let _ = entry.conn.enqueue_frame(&frame, self.write_buffer_cap, None);
            }
        } else {
            entry.conn.close();
        }
        self.reactor.wake_owner(&entry.conn);
        true
    }

    /// Folds reactor-side state into the metrics registry: the live-conn
    /// gauge and the (monotonic) wake total.
    fn refresh_reactor_metrics(&self) {
        self.metrics.reactor_conns.set(self.reactor.conns.lock().len() as i64);
        let total = self.reactor.total_wakes();
        let seen = self.wakes_seen.swap(total, Ordering::Relaxed);
        if total > seen {
            self.metrics.reactor_wakes.add(total - seen);
        }
    }
}

fn mobility_loop(shared: Arc<Shared>, step: Duration) {
    // Shutdown-aware sleep: a plain `thread::sleep(step)` here used to
    // stall shutdown join for up to a step *and* integrate mobility once
    // more after `running` flipped.
    while shared.interruptible_sleep(step) {
        let now = shared.clock.now();
        let mut dead = None;
        {
            let mut pipeline = shared.pipeline.lock();
            let had_mobile = pipeline.scene().nodes().any(|v| v.mobility.is_mobile());
            if had_mobile {
                pipeline.advance_mobility(now);
                let mut cluster = shared.cluster.lock();
                if let Some(coord) = cluster.as_deref_mut() {
                    // The sync must see the freshly-advanced scene under
                    // the same pipeline guard, and the cluster mutex
                    // serializes the coordinator wire protocol.
                    // poem-lint: allow(blocking_under_lock): epoch sync must run against the scene state it barriers
                    if let Err(e) = coord.sync(now, pipeline.scene()) {
                        eprintln!("cluster sync failed, falling back to local forwarding: {e}");
                        dead = cluster.take();
                    }
                }
            }
        }
        // Teardown blocks on the wire — run it with every lock released.
        if let Some(mut coord) = dead {
            coord.shutdown();
        }
    }
}

/// Real-time ingest of one pass's packet batch: through the attached
/// worker fleet when one exists (a single coordinator round-trip for the
/// whole batch — everything a pass read together travels as one
/// `IngestBatch`), else the local pipeline under one lock acquisition.
/// Best-effort: any cluster failure logs, tears the fleet down, and the
/// batch (plus all later ones) is decided locally.
fn ingest_batch_best_effort(
    shared: &Shared,
    pkts: &[EmuPacket],
    received_at: EmuTime,
) -> Vec<Delivery> {
    let mut dead = None;
    {
        let mut cluster = shared.cluster.lock();
        if let Some(coord) = cluster.as_deref_mut() {
            // The batch round-trip is the resource the cluster mutex
            // serializes; concurrent workers must not interleave frames.
            // poem-lint: allow(blocking_under_lock): the cluster mutex exists to serialize the coordinator wire protocol
            match coord.ingest_batch(pkts, received_at, &shared.recorder) {
                Ok(settled) => {
                    return settled
                        .into_iter()
                        .map(|d| Delivery { to: d.to, fire_at: d.fire_at, packet: d.packet })
                        .collect();
                }
                Err(e) => {
                    eprintln!("cluster failure, falling back to local forwarding: {e}");
                    dead = cluster.take();
                }
            }
        }
    }
    // Teardown blocks on the wire — run it with every lock released.
    if let Some(mut coord) = dead {
        coord.shutdown();
    }
    let mut pipeline = shared.pipeline.lock();
    let mut out = Vec::new();
    for pkt in pkts {
        out.extend(pipeline.ingest(pkt, received_at));
    }
    out
}

/// Step-7 companion: periodically appends a [`MetricsRecord`] snapshot of
/// every counter, gauge and histogram to the record log, so
/// post-emulation replay can plot pipeline health — deadline misses and
/// lag distributions included — over the run.
fn metrics_loop(shared: Arc<Shared>, interval: Duration) {
    while shared.interruptible_sleep(interval) {
        shared.metrics.schedule_depth.set(shared.schedule.lock().len() as i64);
        let snap = shared.registry.snapshot();
        shared.recorder.record_metrics(MetricsRecord {
            at: shared.clock.now(),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap
                .histograms
                .into_iter()
                .map(|(name, h)| (name, HistogramRow::from(&h)))
                .collect(),
        });
    }
}

/// One pending action on the fault driver's timeline: the injection
/// itself, a scheduled restore leg, a stall release, or a bookkeeping
/// expiry (gauge + record).
enum DriverStep {
    Inject(FaultKind),
    Op(SceneOp),
    Release(NodeId),
    Expire(String),
}

/// Executes a [`FaultPlan`] against wall-clock time (the real-time
/// counterpart of `SimNet::install_faults`).
fn fault_driver(shared: Arc<Shared>, plan: FaultPlan, wires: Option<Arc<WireFaultHub>>) {
    let metrics = ChaosMetrics::register(&shared.registry);
    let mut timeline: ForwardSchedule<DriverStep> = ForwardSchedule::new();
    for spec in plan.specs() {
        timeline.schedule(spec.at, DriverStep::Inject(spec.kind.clone()));
    }
    while shared.running.load(Ordering::Acquire) && !timeline.is_empty() {
        let now = shared.clock.now();
        if let Some((_, step)) = timeline.pop_due(now) {
            drive_step(&shared, &metrics, &mut timeline, step, now, wires.as_deref());
            continue;
        }
        let wait = timeline
            .next_due()
            .map(|due| (due - now).to_std())
            .unwrap_or(Duration::from_millis(20));
        std::thread::sleep(wait.clamp(Duration::from_millis(1), Duration::from_millis(20)));
    }
}

fn drive_step(
    shared: &Arc<Shared>,
    metrics: &ChaosMetrics,
    timeline: &mut ForwardSchedule<DriverStep>,
    step: DriverStep,
    now: EmuTime,
    wires: Option<&WireFaultHub>,
) {
    match step {
        DriverStep::Inject(kind) => {
            if let Some(rec) = injection_record(&kind, now) {
                shared.recorder.record_fault(rec);
            }
            // Wire kinds count per occurrence (inside the stream's
            // `WireFaults`); the rest count here, at injection.
            if kind.layer() != "wire" {
                metrics.injected(kind.name());
            }
            inject(shared, metrics, timeline, kind, now, wires);
        }
        DriverStep::Op(op) => {
            let t = shared.clock.now();
            let _ = shared.pipeline.lock().apply_op(t, op);
        }
        DriverStep::Release(node) => {
            let entry = {
                let mut stalls = shared.stalls.lock();
                // An extension superseded this release; a later one is on
                // the timeline.
                match stalls.get(&node) {
                    Some(st) if st.until > now => None,
                    _ => stalls.remove(&node),
                }
            };
            if let Some(st) = entry {
                metrics.deactivate();
                shared.recorder.record_fault(FaultRecord::Transport {
                    at: now,
                    node,
                    action: "release".into(),
                });
                if !st.held.is_empty() {
                    let mut schedule = shared.schedule.lock();
                    for d in st.held {
                        schedule.schedule(now, d);
                    }
                    shared.schedule_cv.notify_all();
                }
            }
        }
        DriverStep::Expire(action) => {
            metrics.deactivate();
            shared.recorder.record_fault(FaultRecord::Scene { at: now, action });
        }
    }
}

fn inject(
    shared: &Arc<Shared>,
    metrics: &ChaosMetrics,
    timeline: &mut ForwardSchedule<DriverStep>,
    kind: FaultKind,
    now: EmuTime,
    wires: Option<&WireFaultHub>,
) {
    match kind {
        FaultKind::WireCorrupt { .. }
        | FaultKind::WireTruncate { .. }
        | FaultKind::WireDuplicate { .. }
        | FaultKind::WireReorder { .. } => {
            if let Some(hub) = wires {
                hub.configure(&kind);
            }
        }
        FaultKind::Disconnect { node } => {
            shared.evict(node);
        }
        FaultKind::Stall { node, duration } => {
            begin_stall(shared, metrics, timeline, node, now + duration, None);
        }
        FaultKind::SlowReader { node, buffer, duration } => {
            begin_stall(shared, metrics, timeline, node, now + duration, Some(buffer as usize));
        }
        FaultKind::LinkFlap { node, radio, factor, duration } => {
            let legs =
                flap_legs(shared.pipeline.lock().scene(), now, node, radio, factor, duration);
            if let Some(legs) = legs {
                metrics.activate();
                apply_legs(shared, timeline, legs, now);
                timeline.schedule(
                    now + duration,
                    DriverStep::Expire(format!("link_flap {node} restore")),
                );
            }
        }
        FaultKind::Crash { node, restart_after } => {
            let legs = crash_legs(shared.pipeline.lock().scene(), now, node, restart_after);
            if let Some((remove, restore)) = legs {
                // A crashed VMN loses its process *and* its radios.
                shared.evict(node);
                shared.pipeline.lock().apply_op(now, remove).ok();
                if let Some((t, add)) = restore {
                    metrics.activate();
                    timeline.schedule(t, DriverStep::Op(add));
                    timeline.schedule(t, DriverStep::Expire(format!("restore {node}")));
                }
            }
        }
        FaultKind::Jam { channel, duration } => {
            let legs = jam_legs(shared.pipeline.lock().scene(), now, channel, duration);
            if !legs.is_empty() {
                metrics.activate();
                apply_legs(shared, timeline, legs, now);
                timeline.schedule(
                    now + duration,
                    DriverStep::Expire(format!("jam ch{} restore", channel.0)),
                );
            }
        }
        // The real skew/jitter lives client-side in a `ChaosClock`;
        // server-side the injection is recorded and counted above.
        FaultKind::ClockSkew { .. } | FaultKind::ClockJitter { .. } => {}
    }
}

fn begin_stall(
    shared: &Arc<Shared>,
    metrics: &ChaosMetrics,
    timeline: &mut ForwardSchedule<DriverStep>,
    node: NodeId,
    until: EmuTime,
    capacity: Option<usize>,
) {
    let fresh = {
        let mut stalls = shared.stalls.lock();
        let fresh = !stalls.contains_key(&node);
        let st =
            stalls.entry(node).or_insert_with(|| StallEntry { until, capacity, held: Vec::new() });
        st.until = st.until.max(until);
        st.capacity = capacity;
        fresh
    };
    if fresh {
        metrics.activate();
    }
    timeline.schedule(until, DriverStep::Release(node));
}

fn apply_legs(
    shared: &Arc<Shared>,
    timeline: &mut ForwardSchedule<DriverStep>,
    legs: Vec<(EmuTime, SceneOp)>,
    now: EmuTime,
) {
    for (at, op) in legs {
        if at <= now {
            let _ = shared.pipeline.lock().apply_op(now, op);
        } else {
            timeline.schedule(at, DriverStep::Op(op));
        }
    }
}

/// Convenience: the emulation duration a `bytes`-sized payload needs on an
/// ideal `bps` link — used by examples to pace real-time sends.
pub fn pacing_interval(bytes: usize, bps: f64) -> EmuDuration {
    EmuDuration::from_secs_f64(bytes as f64 * 8.0 / bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use poem_client::EmuClient;
    use poem_core::clock::WallClock;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::packet::Destination;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, Point};
    use poem_proto::{MsgReader, MsgWriter};

    fn test_scene() -> Scene {
        let mut s = Scene::new();
        for (id, x) in [(1u32, 0.0), (2u32, 60.0), (3u32, 120.0)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(x, 0.0),
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        }
        s
    }

    fn start_server() -> Arc<ServerHandle> {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        ServerHandle::start(test_scene(), clock, ServerConfig::default()).unwrap()
    }

    fn connect(server: &ServerHandle, id: u32) -> EmuClient {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        EmuClient::connect_tcp(
            server.addr(),
            NodeId(id),
            RadioConfig::single(ChannelId(1), 100.0),
            clock,
        )
        .unwrap()
    }

    #[test]
    fn clients_register_and_exchange_traffic() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        c1.sync_clock(3).unwrap();
        c2.sync_clock(3).unwrap();

        c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"ping"))
            .unwrap()
            .expect("tuned radio");
        let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(pkt.src, NodeId(1));
        assert_eq!(&pkt.payload[..], b"ping");

        c1.close().unwrap();
        c2.close().unwrap();
        server.shutdown();
    }

    #[test]
    fn out_of_range_node_hears_nothing() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c3 = connect(&server, 3); // at x=120, range 100 from node 1
        c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"x")).unwrap().unwrap();
        assert!(c3.recv_timeout(Duration::from_millis(300)).is_err());
        drop((c1, c3));
        server.shutdown();
    }

    #[test]
    fn unknown_vmn_is_refused() {
        let server = start_server();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let err = EmuClient::connect_tcp(server.addr(), NodeId(99), RadioConfig::none(), clock)
            .unwrap_err();
        assert!(matches!(err, poem_client::ClientError::Refused(_)), "{err}");
        server.shutdown();
    }

    #[test]
    fn duplicate_vmn_is_refused() {
        let server = start_server();
        let _c1 = connect(&server, 1);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let err = EmuClient::connect_tcp(
            server.addr(),
            NodeId(1),
            RadioConfig::single(ChannelId(1), 100.0),
            clock,
        )
        .unwrap_err();
        assert!(matches!(err, poem_client::ClientError::Refused(_)), "{err}");
        server.shutdown();
    }

    #[test]
    fn scene_op_takes_effect_for_subsequent_traffic() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        // Retune node 2 away: broadcast no longer reaches it.
        server
            .apply_op(SceneOp::SetRadioChannel {
                id: NodeId(2),
                radio: poem_core::RadioId(0),
                channel: ChannelId(7),
            })
            .unwrap();
        c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"y")).unwrap().unwrap();
        assert!(c2.recv_timeout(Duration::from_millis(300)).is_err());
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn traffic_is_recorded_with_client_stamps() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        c1.sync_clock(2).unwrap();
        c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"z"))
            .unwrap()
            .unwrap();
        let _ = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        // Give the recorder a beat.
        std::thread::sleep(Duration::from_millis(50));
        let traffic = server.recorder().traffic();
        assert!(traffic.iter().any(|r| matches!(r, TrafficRecord::Ingress { .. })));
        assert!(traffic.iter().any(|r| matches!(r, TrafficRecord::Forward { .. })));
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let server = start_server();
        server.shutdown();
        server.shutdown();
    }

    #[test]
    fn server_metrics_cover_ingest_drops_schedule_and_scan_lag() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let config =
            ServerConfig { metrics_interval: Duration::from_millis(20), ..ServerConfig::default() };
        let server = ServerHandle::start(test_scene(), clock, config).unwrap();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"m")).unwrap().unwrap();
        let _ = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        // Unicast towards the out-of-range node 3 → a NoRoute drop.
        c1.send(ChannelId(1), Destination::Unicast(NodeId(3)), Bytes::from_static(b"n"))
            .unwrap()
            .unwrap();
        // Let the metrics thread take at least one periodic snapshot.
        std::thread::sleep(Duration::from_millis(120));

        let snap = server.metrics();
        assert!(!snap.is_empty());
        assert!(snap.counter("poem_ingest_packets_total").unwrap_or(0) >= 2);
        assert!(snap.counter("poem_deliveries_sent_total").unwrap_or(0) >= 1);
        assert!(snap.counter_family("poem_drops_total") >= 1);
        assert_eq!(snap.gauge("poem_clients_connected"), Some(2));
        // The delivery fired, so the scan thread observed its lag and the
        // depth gauge has been written (possibly back to zero).
        let lag = snap.histogram("poem_scan_lag_ns").expect("scan lag histogram");
        assert!(lag.count >= 1);
        assert!(snap.gauge("poem_schedule_depth").is_some());
        assert!(snap.counter("poem_client_deliveries_total{node=\"2\"}").unwrap_or(0) >= 1);

        let metrics_log = server.recorder().metrics();
        assert!(!metrics_log.is_empty(), "periodic MetricsRecord snapshots");
        let last = metrics_log.last().unwrap().clone();
        assert!(last.counter("poem_ingest_packets_total").unwrap_or(0) >= 1);

        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn fault_driver_runs_a_scripted_plan_over_tcp() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let _c2 = connect(&server, 2);
        let script = crate::script::Script::parse(
            "at 0.1 fault disconnect VMN2\n\
             at 0.1 fault skew VMN1 0.25",
        )
        .unwrap();
        let driver = server.spawn_fault_driver(script.faults(), None).unwrap();
        driver.join().unwrap();
        // The plan ran to completion: node 2 was kicked, node 1 kept.
        assert_eq!(server.connected(), vec![NodeId(1)]);
        let faults = server.recorder().faults();
        assert!(
            faults.iter().any(|f| matches!(
                f,
                FaultRecord::Transport { node: NodeId(2), action, .. } if action == "disconnect"
            )),
            "{faults:?}"
        );
        assert!(faults.iter().any(|f| matches!(f, FaultRecord::Clock { node: NodeId(1), .. })));
        let snap = server.metrics();
        assert_eq!(snap.counter("poem_faults_injected_total{kind=\"disconnect\"}"), Some(1));
        drop(c1);
        server.shutdown();
    }

    #[test]
    fn stalled_client_hears_nothing_until_release() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        let mut plan = FaultPlan::new();
        plan.push(
            EmuTime::ZERO,
            FaultKind::Stall { node: NodeId(2), duration: EmuDuration::from_millis(700) },
        );
        let driver = server.spawn_fault_driver(&plan, None).unwrap();
        // Give the driver a beat to install the stall, then send into it.
        std::thread::sleep(Duration::from_millis(100));
        c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"held"))
            .unwrap()
            .unwrap();
        assert!(
            c2.recv_timeout(Duration::from_millis(250)).is_err(),
            "delivery leaked through the stall"
        );
        // After release the parked copy goes out.
        let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"held");
        driver.join().unwrap();
        let faults = server.recorder().faults();
        assert!(
            faults.iter().any(|f| matches!(
                f,
                FaultRecord::Transport { node: NodeId(2), action, .. } if action == "release"
            )),
            "{faults:?}"
        );
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn slow_consumer_is_evicted_on_write_timeout() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let config = ServerConfig {
            write_timeout: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        };
        let server = ServerHandle::start(test_scene(), clock, config).unwrap();
        let c1 = connect(&server, 1);
        // A hand-rolled node-2 client that registers and then never reads:
        // its socket buffers fill and the bounded delivery write times out.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut w = MsgWriter::new(stream.try_clone().unwrap());
        let mut r = MsgReader::new(stream.try_clone().unwrap());
        w.send(&ClientMsg::hello(NodeId(2))).unwrap();
        assert!(matches!(r.recv::<ServerMsg>().unwrap(), ServerMsg::Welcome { .. }));

        let payload = Bytes::from(vec![0u8; 64 * 1024]);
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), payload.clone())
                .unwrap()
                .unwrap();
            std::thread::sleep(Duration::from_millis(50));
            if server.connected() == vec![NodeId(1)] {
                break; // evicted
            }
            assert!(std::time::Instant::now() < deadline, "slow consumer never evicted");
        }
        assert!(server.metrics().counter("poem_client_disconnects_total").unwrap_or(0) >= 1);
        drop((c1, stream));
        server.shutdown();
    }

    #[test]
    fn disconnected_client_reconnects_with_backoff() {
        let server = start_server();
        let c2 = connect(&server, 2);
        assert!(server.disconnect(NodeId(2)));
        assert!(!server.disconnect(NodeId(2)), "second disconnect finds nothing");
        // The eviction freed the identity synchronously, so the retrying
        // reconnect succeeds (and resets its backoff budget).
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let mut backoff = poem_client::Backoff::standard(EmuRng::seed(9));
        let c2b = EmuClient::connect_tcp_with_retry(
            server.addr(),
            NodeId(2),
            RadioConfig::single(ChannelId(1), 100.0),
            clock,
            &mut backoff,
        )
        .unwrap();
        assert_eq!(backoff.attempt(), 0);
        assert!(server.connected().contains(&NodeId(2)));
        // Against a dead port the same path exhausts its budget with Io.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let mut tiny = poem_client::Backoff::new(
            EmuDuration::from_millis(1),
            EmuDuration::from_millis(4),
            2,
            EmuRng::seed(10),
        );
        let err = EmuClient::connect_tcp_with_retry(
            "127.0.0.1:1",
            NodeId(2),
            RadioConfig::none(),
            clock,
            &mut tiny,
        )
        .unwrap_err();
        assert!(matches!(err, poem_client::ClientError::Io(_)), "{err}");
        assert_eq!(tiny.attempt(), 2);
        drop((c2, c2b));
        server.shutdown();
    }

    #[test]
    fn expired_stall_flushes_held_in_order_before_later_packets() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        // Install the transport stall directly, with no fault driver: its
        // Release leg will never run, which is exactly the regression —
        // the held copies used to stay parked forever and later packets
        // overtook them.
        let until = server.clock().now() + EmuDuration::from_millis(300);
        server
            .shared
            .stalls
            .lock()
            .insert(NodeId(2), StallEntry { until, capacity: None, held: Vec::new() });
        for payload in [&b"one"[..], b"two", b"three"] {
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::copy_from_slice(payload))
                .unwrap()
                .unwrap();
            // Distinct fire_at stamps, so order through the park path is
            // meaningful.
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(c2.recv_timeout(Duration::from_millis(100)).is_err(), "stall leaked a delivery");
        // Let the stall expire, then send one more packet: it must flush
        // the parked copies ahead of itself instead of overtaking them.
        std::thread::sleep(Duration::from_millis(300));
        c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"four"))
            .unwrap()
            .unwrap();
        let mut got = Vec::new();
        for _ in 0..4 {
            let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push(pkt.payload.clone());
        }
        let want = [&b"one"[..], b"two", b"three", b"four"].map(Bytes::from_static);
        assert_eq!(got, want);
        assert!(server.shared.stalls.lock().is_empty(), "expired entry must be dropped");
        // The inline release is recorded like a driver-run one.
        let faults = server.recorder().faults();
        assert!(
            faults.iter().any(|f| matches!(
                f,
                FaultRecord::Transport { node: NodeId(2), action, .. } if action == "release"
            )),
            "{faults:?}"
        );
        // Deadline accounting saw the deliberately late deadlines: the
        // three parked copies fired ≥ 300 ms past fire_at → severe misses.
        let snap = server.metrics();
        assert!(
            snap.counter("poem_deadline_miss_total{severity=\"severe\"}").unwrap_or(0) >= 3,
            "{snap:?}"
        );
        // And the idle condvar timeouts along the way calibrated the
        // wake-up-error histogram.
        assert!(snap.histogram("poem_wake_error_ns").map(|h| h.count).unwrap_or(0) >= 1);
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn rapid_deliveries_preserve_order_under_hybrid_scan() {
        // Same source, same size → nondecreasing fire_at; equal deadlines
        // must come out FIFO through pop and batch-drain alike.
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        for i in 0..20u8 {
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from(vec![i]))
                .unwrap()
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
            got.push(pkt.payload[0]);
        }
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn all_sleep_policies_deliver_traffic() {
        for policy in [SleepPolicy::Naive, SleepPolicy::Hybrid, SleepPolicy::Spin] {
            let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
            let config = ServerConfig { sleep_policy: policy, ..ServerConfig::default() };
            let server = ServerHandle::start(test_scene(), clock, config).unwrap();
            let c1 = connect(&server, 1);
            let c2 = connect(&server, 2);
            c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"p"))
                .unwrap()
                .unwrap();
            let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(&pkt.payload[..], b"p", "policy {policy}");
            drop((c1, c2));
            server.shutdown();
        }
    }

    #[test]
    fn overloaded_schedule_batch_drains() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        // Wedge the schedule: the receiver thread ingests (stamping
        // fire_at) and then blocks scheduling until we let go, so the
        // head of the schedule is far past the overload threshold the
        // moment it becomes visible.
        {
            let _wedge = server.shared.schedule.lock();
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"late"))
                .unwrap()
                .unwrap();
            std::thread::sleep(Duration::from_millis(60));
        }
        let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"late");
        let snap = server.metrics();
        assert!(snap.counter("poem_scan_batch_drains_total").unwrap_or(0) >= 1, "{snap:?}");
        // 60 ms behind its deadline → counted as a severe miss.
        assert!(snap.counter("poem_deadline_miss_total{severity=\"severe\"}").unwrap_or(0) >= 1);
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn auto_policy_batch_drains_under_load_and_still_delivers() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let config = ServerConfig { sleep_policy: SleepPolicy::Auto, ..ServerConfig::default() };
        let server = ServerHandle::start(test_scene(), clock, config).unwrap();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        // Same wedge as `overloaded_schedule_batch_drains`: hold the
        // schedule lock across a send so the head is already far past the
        // overload threshold when the scan loop sees it.
        {
            let _wedge = server.shared.schedule.lock();
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"late"))
                .unwrap()
                .unwrap();
            std::thread::sleep(Duration::from_millis(60));
        }
        let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"late");
        let snap = server.metrics();
        // Auto keeps the overload batch-drain path live…
        assert!(snap.counter("poem_scan_batch_drains_total").unwrap_or(0) >= 1, "{snap:?}");
        // …and registers its mode gauge (0 here: one lagged pass out of a
        // 64-pass window is nowhere near the 50 % engage threshold).
        assert!(snap.gauge("poem_auto_batch_mode").is_some(), "{snap:?}");
        // Normal traffic still flows once the backlog is drained.
        c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from_static(b"after"))
            .unwrap()
            .unwrap();
        let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(&pkt.payload[..], b"after");
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn shutdown_interrupts_long_periodic_sleeps() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let config = ServerConfig {
            mobility_step: Duration::from_secs(30),
            metrics_interval: Duration::from_secs(30),
            ..ServerConfig::default()
        };
        let mut scene = test_scene();
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(4),
                    pos: Point::new(500.0, 0.0),
                    radios: RadioConfig::single(ChannelId(1), 50.0),
                    mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 100.0 },
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        let server = ServerHandle::start(scene, clock, config).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let begun = std::time::Instant::now();
        server.shutdown();
        // The periodic threads used to sleep out their full intervals
        // (30 s here) before noticing `running` had flipped.
        assert!(begun.elapsed() < Duration::from_secs(5), "shutdown took {:?}", begun.elapsed());
        // And the interrupted mobility sleep must NOT integrate one last
        // step after shutdown.
        let pos = server.with_scene(|s| s.node(NodeId(4)).unwrap().pos);
        assert_eq!((pos.x, pos.y), (500.0, 0.0));
    }

    #[test]
    fn pacing_parks_bursts_and_still_delivers_everything_in_order() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let config = ServerConfig {
            pacing: Some(PacingConfig { rate_pps: 200.0, burst: 4, queue_cap: 64 }),
            ..ServerConfig::default()
        };
        let server = ServerHandle::start(test_scene(), clock, config).unwrap();
        let c1 = connect(&server, 1);
        let c2 = connect(&server, 2);
        // 20 back-to-back sends against a 4-token burst: the tail parks in
        // the paced queue and trickles out at the sustained rate.
        for i in 0..20u8 {
            c1.send(ChannelId(1), Destination::Unicast(NodeId(2)), Bytes::from(vec![i]))
                .unwrap()
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            let (pkt, _) = c2.recv_timeout(Duration::from_secs(10)).unwrap();
            got.push(pkt.payload[0]);
        }
        // The paced queue is FIFO, so pacing never reorders a session.
        assert_eq!(got, (0..20).collect::<Vec<u8>>());
        let snap = server.metrics();
        assert!(snap.counter("poem_session_paced_total").unwrap_or(0) >= 1, "{snap:?}");
        drop((c1, c2));
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_every_session_and_empties_the_registry() {
        let server = start_server();
        let c1 = connect(&server, 1);
        let _c2 = connect(&server, 2);
        // One client leaves cleanly, one stays connected through shutdown.
        c1.close().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        // The workers joined (shutdown returned), reaping every
        // connection out of the reactor registry on the way down.
        assert!(server.shared.reactor.conns.lock().is_empty());
        assert_eq!(server.connected(), vec![]);
    }
}
