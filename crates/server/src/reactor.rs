//! The readiness reactor under the TCP server: a small fixed set of poll
//! workers replacing the thread-per-client receive path.
//!
//! The thread-per-client design costs one OS thread (stack, scheduler
//! slot, context switches) per session, which caps how many emulated
//! nodes one server hosts. The reactor inverts it: every socket is
//! non-blocking, each of a handful of workers owns a share of the
//! connections and level-triggers over them — read what is readable,
//! flush what is writable, park briefly when a pass makes no progress.
//! Built on `std::net` only (no epoll binding, no extra dependency): the
//! wake mechanism is `std::thread::park_timeout` plus unpark tokens, and
//! readiness is discovered by attempting the non-blocking syscall.
//!
//! Cross-thread handoff points:
//!
//! * **Dispatch** — worker 0 owns the (non-blocking) listener and deals
//!   accepted streams round-robin into per-worker incoming queues.
//! * **Delivery** — the scan thread encodes a frame and appends it to the
//!   connection's shared [`OutBuf`] (writing through the socket directly
//!   when the buffer is empty), then wakes the owning worker to flush the
//!   remainder.
//! * **Shutdown** — every worker holds a [`Waker`]; `shutdown()` flips
//!   `running` and wakes them all. No loopback self-connect needed.

use parking_lot::Mutex;
use poem_core::NodeId;
use std::collections::BTreeSet;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Explicit wake handle for one poll worker: the worker registers its
/// thread on startup; producers unpark it. `std::thread` unpark tokens
/// make this race-free — an unpark delivered while the worker is mid-pass
/// is banked and its next `park_timeout` returns immediately.
#[derive(Debug, Default)]
pub(crate) struct Waker {
    thread: OnceLock<Thread>,
    /// Wakes delivered (fed to `poem_reactor_wakes_total`).
    wakes: AtomicU64,
}

impl Waker {
    /// Called by the owning worker before its first pass.
    pub fn register(&self) {
        let _ = self.thread.set(std::thread::current());
    }

    /// Unparks the owning worker (no-op until it registered).
    pub fn wake(&self) {
        self.wakes.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = self.thread.get() {
            t.unpark();
        }
    }

    /// Total wakes delivered so far.
    pub fn wakes(&self) -> u64 {
        self.wakes.load(Ordering::Relaxed)
    }
}

/// Write-side buffer of one connection: frames the socket could not take
/// yet, plus staleness bookkeeping for slow-consumer eviction.
#[derive(Debug, Default)]
pub(crate) struct OutBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    start: usize,
    /// Last instant write progress was made while bytes were pending;
    /// `None` while the buffer is empty. A stalled consumer is one whose
    /// buffer has pending bytes and no progress for `write_timeout`.
    stalled_since: Option<Instant>,
    /// Close the socket once the buffer drains (refusals, shutdown).
    close_after_flush: bool,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Outcome of an [`ConnShared::enqueue_frame`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Enqueue {
    /// The frame left through the socket (possibly partially buffered).
    Sent,
    /// The consumer is stalled: pending bytes made no progress for longer
    /// than the write timeout. Caller evicts.
    Stalled,
    /// Buffering the frame would exceed the cap. Caller evicts.
    Overflow,
    /// The connection is already closed.
    Closed,
}

/// The cross-thread half of one connection. The owning worker keeps the
/// read state ([`crate::session::Conn`]) private; everything another
/// thread may touch — the write buffer, the attached-session set, the
/// close flag — lives here behind its own short-lived locks.
pub(crate) struct ConnShared {
    /// Reactor-wide connection id (timer-wheel key).
    pub id: u64,
    /// The socket (non-blocking). Used for direct writes under the `out`
    /// lock and for `shutdown()` on close.
    pub stream: TcpStream,
    /// Pending output frames.
    pub out: Mutex<OutBuf>,
    /// VMNs attached to this connection: a singleton for a legacy
    /// session, any number for a mux session. Shared so `evict(node)` can
    /// detach without bouncing through the worker.
    pub nodes: Mutex<BTreeSet<NodeId>>,
    /// Whether the connection completed a mux handshake.
    pub mux: AtomicBool,
    /// Set once; the owning worker reaps the connection on its next pass.
    pub closed: AtomicBool,
    /// Index of the owning worker (wake target).
    pub worker: usize,
    /// Instant the connection registered — the zero point `activity_ms`
    /// is measured from.
    born: Instant,
    /// Milliseconds since `born` at the last byte movement in either
    /// direction, stamped by whichever thread moved them. The idle
    /// timeout compares against this, so a pure listener that only
    /// *receives* deliveries still counts as alive.
    activity_ms: AtomicU64,
}

impl ConnShared {
    pub fn new(id: u64, stream: TcpStream, worker: usize) -> Self {
        ConnShared {
            id,
            stream,
            out: Mutex::new(OutBuf::default()),
            nodes: Mutex::new(BTreeSet::new()),
            mux: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            worker,
            born: Instant::now(),
            activity_ms: AtomicU64::new(0),
        }
    }

    /// Records byte movement now (read progress, write progress, or a
    /// direct delivery write) for the idle-timeout clock.
    pub fn touch(&self) {
        self.activity_ms.store(self.born.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// How long the connection has moved no bytes in either direction.
    pub fn idle_for(&self) -> Duration {
        let last = Duration::from_millis(self.activity_ms.load(Ordering::Relaxed));
        self.born.elapsed().saturating_sub(last)
    }

    /// Appends one encoded frame, writing through the socket immediately
    /// when nothing is queued ahead of it. Never blocks: the socket is
    /// non-blocking and leftovers are buffered up to `cap` bytes.
    pub fn enqueue_frame(
        &self,
        frame: &[u8],
        cap: usize,
        write_timeout: Option<Duration>,
    ) -> Enqueue {
        if self.closed.load(Ordering::Acquire) {
            return Enqueue::Closed;
        }
        let mut out = self.out.lock();
        if out.pending() == 0 {
            // Fast path: the common case is an idle socket that takes the
            // whole frame in one write.
            let mut offset = 0;
            loop {
                match (&self.stream).write(&frame[offset..]) {
                    Ok(0) => return self.close_locked(),
                    Ok(n) => {
                        offset += n;
                        if offset == frame.len() {
                            return Enqueue::Sent;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return self.close_locked(),
                }
            }
            out.buf.extend_from_slice(&frame[offset..]);
            out.stalled_since = Some(Instant::now());
            return Enqueue::Sent;
        }
        if let (Some(limit), Some(since)) = (write_timeout, out.stalled_since) {
            if since.elapsed() > limit {
                return Enqueue::Stalled;
            }
        }
        if out.pending() + frame.len() > cap {
            return Enqueue::Overflow;
        }
        out.buf.extend_from_slice(frame);
        Enqueue::Sent
    }

    /// Flushes as much pending output as the socket takes. Returns
    /// `Ok(bytes_written)`; `Err` means the consumer stalled past
    /// `write_timeout` or the socket died, and the caller evicts.
    pub fn flush(&self, write_timeout: Option<Duration>) -> io::Result<usize> {
        let mut out = self.out.lock();
        let mut written = 0usize;
        while out.pending() > 0 {
            match (&self.stream).write(&out.buf[out.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    out.start += n;
                    written += n;
                    out.stalled_since = Some(Instant::now());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        out.compact();
        if out.pending() == 0 {
            out.stalled_since = None;
            if out.close_after_flush {
                drop(out);
                self.close();
            }
            return Ok(written);
        }
        if let (Some(limit), Some(since)) = (write_timeout, out.stalled_since) {
            if written == 0 && since.elapsed() > limit {
                return Err(io::ErrorKind::TimedOut.into());
            }
        }
        Ok(written)
    }

    /// Bytes currently queued behind the socket.
    pub fn backlog(&self) -> usize {
        self.out.lock().pending()
    }

    /// Requests a close once everything queued so far has flushed.
    pub fn close_after_flush(&self) {
        let should_close_now = {
            let mut out = self.out.lock();
            out.close_after_flush = true;
            out.pending() == 0
        };
        if should_close_now {
            self.close();
        }
    }

    /// Marks the connection closed and shuts the socket down. Safe from
    /// any thread; the owning worker reaps the carcass on its next pass.
    pub fn close(&self) {
        if !self.closed.swap(true, Ordering::AcqRel) {
            let _ = self.stream.shutdown(std::net::Shutdown::Both);
        }
    }

    fn close_locked(&self) -> Enqueue {
        // `out` is held by the caller; `close` only touches `closed` and
        // the socket, so no re-entry.
        self.close();
        Enqueue::Closed
    }
}

impl std::fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnShared")
            .field("id", &self.id)
            .field("worker", &self.worker)
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Per-worker handoff state.
#[derive(Debug, Default)]
pub(crate) struct WorkerShared {
    /// Freshly accepted streams awaiting registration by the worker.
    pub incoming: Mutex<Vec<TcpStream>>,
    /// The worker's wake handle.
    pub waker: Waker,
}

/// The reactor: worker handles plus the global connection registry.
#[derive(Debug)]
pub(crate) struct Reactor {
    pub workers: Vec<Arc<WorkerShared>>,
    /// Every live connection, keyed by id — the shutdown broadcast set.
    pub conns: Mutex<std::collections::BTreeMap<u64, Arc<ConnShared>>>,
    next_worker: AtomicUsize,
    next_id: AtomicU64,
}

impl Reactor {
    pub fn new(workers: usize) -> Self {
        Reactor {
            workers: (0..workers.max(1)).map(|_| Arc::new(WorkerShared::default())).collect(),
            conns: Mutex::new(std::collections::BTreeMap::new()),
            next_worker: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Queues an accepted stream to the next worker, round-robin.
    pub fn dispatch(&self, stream: TcpStream) {
        let idx = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.workers[idx].incoming.lock().push(stream);
        self.workers[idx].waker.wake();
    }

    /// A fresh connection id.
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Wakes the worker owning `conn`.
    pub fn wake_owner(&self, conn: &ConnShared) {
        self.workers[conn.worker].waker.wake();
    }

    /// Wakes every worker (shutdown, broadcast flush).
    pub fn wake_all(&self) {
        for w in &self.workers {
            w.waker.wake();
        }
    }

    /// Total wakes delivered across all workers.
    pub fn total_wakes(&self) -> u64 {
        self.workers.iter().map(|w| w.waker.wakes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn enqueue_writes_through_an_idle_socket() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let conn = ConnShared::new(1, a, 0);
        assert_eq!(conn.enqueue_frame(b"hello", 1024, None), Enqueue::Sent);
        assert_eq!(conn.backlog(), 0, "frame left through the socket directly");
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn full_socket_buffers_then_flushes() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let conn = ConnShared::new(1, a, 0);
        // Stuff the socket until the kernel buffer rejects more: the
        // remainder lands in the OutBuf.
        let chunk = vec![0xABu8; 256 * 1024];
        let cap = 64 * 1024 * 1024;
        while conn.backlog() == 0 {
            assert_eq!(conn.enqueue_frame(&chunk, cap, None), Enqueue::Sent);
        }
        let backlog = conn.backlog();
        assert!(backlog > 0);
        // Drain the peer; flush makes progress.
        let mut sink = vec![0u8; 1024 * 1024];
        let mut flushed_total = 0usize;
        for _ in 0..1000 {
            let _ = b.read(&mut sink).unwrap();
            flushed_total += conn.flush(None).unwrap();
            if conn.backlog() == 0 {
                break;
            }
        }
        assert_eq!(conn.backlog(), 0, "backlog drained");
        assert_eq!(flushed_total, backlog);
    }

    #[test]
    fn stalled_consumer_is_reported_on_enqueue_and_flush() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let conn = ConnShared::new(1, a, 0);
        let chunk = vec![0u8; 256 * 1024];
        let cap = 64 * 1024 * 1024;
        let timeout = Some(Duration::from_millis(30));
        // `_b` never reads, but in-flight TCP keeps freeing send-buffer
        // space until the peer's receive buffer fills too — so keep the
        // backlog topped up until a whole timeout passes with zero flush
        // progress. That is the stall.
        loop {
            while conn.backlog() == 0 {
                conn.enqueue_frame(&chunk, cap, None);
            }
            std::thread::sleep(Duration::from_millis(60));
            match conn.flush(timeout) {
                Ok(_) => continue,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::TimedOut);
                    break;
                }
            }
        }
        // The same stall surfaces on the enqueue side.
        assert_eq!(conn.enqueue_frame(b"x", cap, timeout), Enqueue::Stalled);
    }

    #[test]
    fn overflow_is_reported_at_the_cap() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let conn = ConnShared::new(1, a, 0);
        let chunk = vec![0u8; 64 * 1024];
        let cap = 512 * 1024;
        let mut saw_overflow = false;
        for _ in 0..1000 {
            match conn.enqueue_frame(&chunk, cap, None) {
                Enqueue::Sent => {}
                Enqueue::Overflow => {
                    saw_overflow = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_overflow, "cap never enforced");
        assert!(conn.backlog() <= cap);
    }

    #[test]
    fn close_after_flush_closes_once_drained() {
        let (a, mut b) = pair();
        a.set_nonblocking(true).unwrap();
        let conn = ConnShared::new(1, a, 0);
        conn.enqueue_frame(b"bye", 1024, None);
        conn.close_after_flush();
        assert!(conn.closed.load(Ordering::Acquire), "empty backlog closes immediately");
        let mut buf = [0u8; 3];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"bye");
    }

    #[test]
    fn dispatch_round_robins_and_wakes() {
        let reactor = Reactor::new(2);
        let (a, _a2) = pair();
        let (b, _b2) = pair();
        let (c, _c2) = pair();
        reactor.dispatch(a);
        reactor.dispatch(b);
        reactor.dispatch(c);
        assert_eq!(reactor.workers[0].incoming.lock().len(), 2);
        assert_eq!(reactor.workers[1].incoming.lock().len(), 1);
        assert!(reactor.total_wakes() >= 3);
    }
}
