//! Per-connection session state for the reactor: the explicit state
//! machine that replaced the straight-line thread-per-client receive
//! loop, plus per-session send pacing.
//!
//! A connection advances `Handshake → Legacy` (one VMN per socket, the
//! original protocol) or `Handshake → Mux` (a [`poem_client::MuxClient`]
//! hosting many VMNs as virtual sessions over one socket). All transitions
//! run on the owning poll worker; the cross-thread write half lives in
//! [`crate::reactor::ConnShared`].

use crate::reactor::ConnShared;
use poem_core::{EmuPacket, NodeId};
use poem_proto::FrameDecoder;
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

/// Where a connection stands in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SessionState {
    /// Connected, no `Hello`/`MuxHello` yet. Data here is a protocol
    /// violation answered with `Refused`.
    Handshake,
    /// A classic one-VMN session.
    Legacy(NodeId),
    /// A multiplexed connection; the attached set lives in
    /// [`ConnShared::nodes`].
    Mux,
}

/// Token-bucket send pacing applied per virtual session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacingConfig {
    /// Sustained ingest rate granted to each session, packets/second.
    pub rate_pps: f64,
    /// Burst allowance, packets.
    pub burst: u32,
    /// Per-connection cap on packets parked awaiting tokens; past it the
    /// connection's reads pause (transport backpressure) until the queue
    /// drains below half.
    pub queue_cap: usize,
}

impl Default for PacingConfig {
    fn default() -> Self {
        PacingConfig { rate_pps: 10_000.0, burst: 64, queue_cap: 1024 }
    }
}

/// One session's token bucket.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    pub fn new(cfg: &PacingConfig, now: Instant) -> Self {
        TokenBucket { tokens: cfg.burst as f64, last: now }
    }

    /// Refills by elapsed wall time and tries to take one token.
    pub fn try_take(&mut self, cfg: &PacingConfig, now: Instant) -> bool {
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * cfg.rate_pps).min(cfg.burst as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The worker-owned read half of one connection.
pub(crate) struct Conn {
    /// The cross-thread half (write buffer, attached set, close flag).
    pub shared: Arc<ConnShared>,
    /// Read handle onto the (non-blocking) socket.
    pub stream: TcpStream,
    /// Stream reassembly.
    pub decoder: FrameDecoder,
    /// Lifecycle state.
    pub state: SessionState,
    /// Per-session pacing buckets (mux: one per attached VMN).
    pub buckets: BTreeMap<NodeId, TokenBucket>,
    /// Packets parked awaiting pacing tokens, FIFO per connection so
    /// paced traffic keeps its arrival order.
    pub paced: VecDeque<EmuPacket>,
    /// Reads paused by pacing backpressure (paced queue past its cap).
    pub paused: bool,
}

impl Conn {
    pub fn new(shared: Arc<ConnShared>, stream: TcpStream) -> Self {
        Conn {
            shared,
            stream,
            decoder: FrameDecoder::new(),
            state: SessionState::Handshake,
            buckets: BTreeMap::new(),
            paced: VecDeque::new(),
            paused: false,
        }
    }

    /// Whether `src` may originate traffic on this connection.
    pub fn owns(&self, src: NodeId) -> bool {
        match self.state {
            SessionState::Handshake => false,
            SessionState::Legacy(node) => node == src,
            SessionState::Mux => self.shared.nodes.lock().contains(&src),
        }
    }

    /// Takes a pacing token for `src`, creating the bucket on first use.
    pub fn take_token(&mut self, src: NodeId, cfg: &PacingConfig, now: Instant) -> bool {
        self.buckets.entry(src).or_insert_with(|| TokenBucket::new(cfg, now)).try_take(cfg, now)
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("id", &self.shared.id)
            .field("state", &self.state)
            .field("paced", &self.paced.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_bucket_grants_burst_then_rates() {
        let cfg = PacingConfig { rate_pps: 1000.0, burst: 4, queue_cap: 16 };
        let t0 = Instant::now();
        let mut b = TokenBucket::new(&cfg, t0);
        for _ in 0..4 {
            assert!(b.try_take(&cfg, t0), "burst tokens available up front");
        }
        assert!(!b.try_take(&cfg, t0), "burst exhausted");
        // 2 ms at 1000 pps refills two tokens.
        let t1 = t0 + Duration::from_millis(2);
        assert!(b.try_take(&cfg, t1));
        assert!(b.try_take(&cfg, t1));
        assert!(!b.try_take(&cfg, t1));
    }

    #[test]
    fn refill_is_capped_at_burst() {
        let cfg = PacingConfig { rate_pps: 1000.0, burst: 2, queue_cap: 16 };
        let t0 = Instant::now();
        let mut b = TokenBucket::new(&cfg, t0);
        assert!(b.try_take(&cfg, t0));
        assert!(b.try_take(&cfg, t0));
        // A long idle gap refills to the burst cap, not beyond.
        let t1 = t0 + Duration::from_secs(10);
        assert!(b.try_take(&cfg, t1));
        assert!(b.try_take(&cfg, t1));
        assert!(!b.try_take(&cfg, t1));
    }
}
