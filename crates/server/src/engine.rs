//! The transport-independent emulation pipeline (§3.2 steps 2–4, 7).
//!
//! Both server frontends — the real-time TCP server and the deterministic
//! in-process harness — drive the same [`Pipeline`]: it owns the scene,
//! makes the per-packet routing and drop/forward-time decisions, and
//! records everything (traffic and scene) for statistics and replay. The
//! frontends differ only in where packets come from and how the resulting
//! deliveries are clocked out (wall-clock scanning thread vs. virtual-time
//! event loop).

use poem_core::energy::{EnergyBook, PowerProfile};
use poem_core::linkmodel::ForwardDecision;
use poem_core::mac::{CollisionDomain, MacModel, Transmission};
use poem_core::packet::Destination;
use poem_core::scene::{Scene, SceneError, SceneOp};
use poem_core::{EmuDuration, EmuPacket, EmuRng, EmuTime, NodeId};
use poem_obs::{Counter, Histogram, Registry};
use poem_profiles::{ProfileBook, ProfileLibrary};
use poem_record::{DropReason, Recorder, SceneRecord, TrafficRecord};
use std::sync::Arc;

/// Ingest-latency samples are timed once every this many packets: two
/// monotonic clock reads cost tens of nanoseconds, a visible fraction of a
/// sub-microsecond ingest, so the histogram is populated by sampling while
/// the counters (one relaxed `fetch_add` each) count every packet.
const LATENCY_SAMPLE_EVERY: u32 = 64;

/// Bucket bounds (ns) for per-ingest latency: 250 ns … 1 ms.
const INGEST_LATENCY_BOUNDS: &[u64] =
    &[250, 500, 1_000, 2_000, 4_000, 8_000, 16_000, 64_000, 256_000, 1_000_000];

/// The pipeline's handles into its [`Registry`] (see DESIGN.md "Metrics").
#[derive(Debug)]
struct PipelineMetrics {
    ingest_packets: Arc<Counter>,
    deliveries: Arc<Counter>,
    drops_loss: Arc<Counter>,
    drops_noroute: Arc<Counter>,
    drops_collision: Arc<Counter>,
    drops_disconnected: Arc<Counter>,
    csma_deferrals: Arc<Counter>,
    profile_decides: Arc<Counter>,
    ingest_latency_ns: Arc<Histogram>,
}

impl PipelineMetrics {
    fn new(registry: &Registry) -> Self {
        PipelineMetrics {
            ingest_packets: registry.counter("poem_ingest_packets_total"),
            deliveries: registry.counter("poem_ingest_deliveries_total"),
            drops_loss: registry.counter("poem_drops_total{reason=\"loss\"}"),
            drops_noroute: registry.counter("poem_drops_total{reason=\"noroute\"}"),
            drops_collision: registry.counter("poem_drops_total{reason=\"collision\"}"),
            drops_disconnected: registry.counter("poem_drops_total{reason=\"disconnected\"}"),
            csma_deferrals: registry.counter("poem_csma_deferrals_total"),
            profile_decides: registry.counter("poem_profile_decides_total"),
            ingest_latency_ns: registry.histogram("poem_ingest_latency_ns", INGEST_LATENCY_BOUNDS),
        }
    }
}

/// Optional model extensions applied by the pipeline (the §7 future-work
/// models; both default to off, matching the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// MAC discipline per channel.
    pub mac: MacModel,
    /// Power metering; `None` disables the energy ledger.
    pub power: Option<PowerProfile>,
}

/// One delivery produced by ingesting a packet: forward a copy to `to`
/// when the emulation clock reaches `fire_at`.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// Receiving VMN.
    pub to: NodeId,
    /// Forward time: `t_receipt + size/bandwidth + delay`, where
    /// `t_receipt` is the **client's** parallel timestamp (§3.2 step 3:
    /// "from the receipt time that is stamped by clients").
    pub fire_at: EmuTime,
    /// The packet (payload shared, not copied).
    pub packet: EmuPacket,
}

/// The emulation engine shared by every server frontend.
#[derive(Debug)]
pub struct Pipeline {
    scene: Scene,
    recorder: Arc<Recorder>,
    /// Mobility stream: field sampling and waypoint draws. Forwarding
    /// decisions do NOT draw from here — see `decide_base`.
    rng: EmuRng,
    /// Base of the per-packet decision stream: every loss / bandwidth /
    /// delay draw for a packet comes from
    /// [`poem_core::rng::decide_rng`]`(decide_base, pkt.id)`, making the
    /// decisions a pure function of `(seed, packet id)` — the property
    /// that lets a distributed cluster run reproduce this pipeline byte
    /// for byte regardless of which worker decides which packet.
    decide_base: u64,
    mac: MacModel,
    collisions: CollisionDomain,
    energy: Option<EnergyBook>,
    collision_drops: u64,
    csma_deferrals: u64,
    registry: Arc<Registry>,
    metrics: PipelineMetrics,
    /// Empirical link profiles, when the scenario installed a library.
    profiles: Option<ProfileBook>,
    latency_sample_tick: u32,
    /// Reused routing buffer: steady-state ingest allocates nothing
    /// beyond the delivery vector it returns.
    route_scratch: Vec<NodeId>,
}

impl Pipeline {
    /// Builds a pipeline over an initial scene with the baseline models
    /// (no MAC, no energy metering).
    pub fn new(scene: Scene, recorder: Arc<Recorder>, rng: EmuRng) -> Self {
        Self::with_config(scene, recorder, rng, PipelineConfig::default())
    }

    /// Builds a pipeline with explicit model extensions.
    pub fn with_config(
        scene: Scene,
        recorder: Arc<Recorder>,
        mut rng: EmuRng,
        config: PipelineConfig,
    ) -> Self {
        // One draw splits the seed stream in two: the remainder drives
        // mobility, the drawn value bases the per-packet decision streams.
        let decide_base = rng.next_u64();
        let energy = config.power.map(|p| {
            let mut book = EnergyBook::new(p);
            for v in scene.nodes() {
                book.open(v.id, EmuTime::ZERO, None);
            }
            book
        });
        let registry = Arc::new(Registry::new());
        let metrics = PipelineMetrics::new(&registry);
        recorder.register_metrics(&registry);
        Pipeline {
            scene,
            recorder,
            rng,
            decide_base,
            mac: config.mac,
            collisions: CollisionDomain::new(),
            energy,
            collision_drops: 0,
            csma_deferrals: 0,
            registry,
            metrics,
            profiles: None,
            latency_sample_tick: 0,
            route_scratch: Vec::new(),
        }
    }

    /// The pipeline's metric registry. Frontends share it: the TCP server
    /// registers its scheduling/session instruments here so one snapshot
    /// covers the whole emulation ([`crate::ServerHandle::metrics`]).
    pub fn metrics_registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A point-in-time snapshot of every pipeline metric.
    pub fn metrics(&self) -> poem_obs::MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Copies destroyed by MAC collisions so far.
    pub fn collision_drops(&self) -> u64 {
        self.collision_drops
    }

    /// Transmissions deferred by CSMA carrier sensing so far.
    pub fn csma_deferrals(&self) -> u64 {
        self.csma_deferrals
    }

    /// The energy ledger, when power metering is on.
    pub fn energy(&self) -> Option<&EnergyBook> {
        self.energy.as_ref()
    }

    /// Mutable access to the energy ledger (battery assignment etc.).
    pub fn energy_mut(&mut self) -> Option<&mut EnergyBook> {
        self.energy.as_mut()
    }

    /// Read access to the scene.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Base of the per-packet decision RNG stream. A cluster coordinator
    /// hands this to its shard workers so their decisions reproduce this
    /// pipeline's exactly.
    pub fn decide_base(&self) -> u64 {
        self.decide_base
    }

    /// The configured MAC discipline.
    pub fn mac(&self) -> MacModel {
        self.mac
    }

    /// Records the current scene's nodes as `AddNode` ops at `at`, so a
    /// replay of the scene log reconstructs runs whose initial scene was
    /// built *before* the pipeline existed (the TCP server is handed a
    /// ready-made scene).
    pub fn record_initial_scene(&self, at: EmuTime) {
        for v in self.scene.nodes() {
            self.recorder.record_scene(SceneRecord::new(
                at,
                SceneOp::AddNode {
                    id: v.id,
                    pos: v.pos,
                    radios: v.radios.clone(),
                    mobility: v.mobility,
                    link: v.link,
                },
            ));
        }
    }

    /// The shared recorder.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// Installs an empirical profile library. `seed` must be the scenario
    /// seed; regime chains draw from `seed ^ PROFILE_STREAM` (mixed per
    /// link), so profile randomness never perturbs the packet RNG stream
    /// and replay under a fixed seed stays byte-identical.
    pub fn install_profiles(&mut self, library: ProfileLibrary, seed: u64) {
        self.profiles = Some(ProfileBook::new(library, seed));
    }

    /// The installed profile book, if any.
    pub fn profile_book(&self) -> Option<&ProfileBook> {
        self.profiles.as_ref()
    }

    /// Applies a scene operation at `at`, recording it on success — the
    /// server-side effect of every GUI/script action.
    pub fn apply_op(&mut self, at: EmuTime, op: SceneOp) -> Result<(), SceneError> {
        self.scene.apply(at, &op)?;
        if let Some(book) = self.energy.as_mut() {
            match &op {
                SceneOp::AddNode { id, .. } => book.open(*id, at, None),
                SceneOp::RemoveNode { id } => book.close(*id),
                _ => {}
            }
        }
        self.recorder.record_scene(SceneRecord::new(at, op));
        Ok(())
    }

    /// Integrates mobility up to `to` and records the resulting positions
    /// of mobile nodes as `MoveNode` ops, so replay is exact without
    /// re-randomization.
    pub fn advance_mobility(&mut self, to: EmuTime) {
        if to <= self.scene.mobility_horizon() {
            return;
        }
        self.scene.advance_mobility(to, &mut self.rng);
        let moved: Vec<(NodeId, poem_core::Point)> =
            self.scene.nodes().filter(|v| v.mobility.is_mobile()).map(|v| (v.id, v.pos)).collect();
        for (id, pos) in moved {
            self.recorder.record_scene(SceneRecord::new(to, SceneOp::MoveNode { id, pos }));
        }
    }

    /// Steps 2–3 for one received packet: records the ingress, routes it,
    /// draws the loss decisions, records the drops, and returns the
    /// surviving deliveries for the frontend to schedule (step 4).
    ///
    /// `received_at` is the server's receipt time (recorded so the
    /// difference to the client stamp — the serialization error a purely
    /// centralized recorder would suffer — is itself measurable).
    pub fn ingest(&mut self, pkt: &EmuPacket, received_at: EmuTime) -> Vec<Delivery> {
        self.latency_sample_tick = self.latency_sample_tick.wrapping_add(1);
        // The sampled wall-clock duration feeds a latency histogram and
        // never influences a pipeline decision, so replay is unaffected.
        // poem-lint: allow(determinism_taint): observability-only latency sample
        let timer = self
            .latency_sample_tick
            .is_multiple_of(LATENCY_SAMPLE_EVERY)
            .then(std::time::Instant::now);
        self.metrics.ingest_packets.inc();
        self.recorder.record_traffic(TrafficRecord::ingress(pkt, received_at));
        let mut targets = std::mem::take(&mut self.route_scratch);
        self.scene.route_into(pkt.src, pkt.channel, pkt.dst, &mut targets);
        // Sender-side MAC/energy bookkeeping: the transmission occupies
        // the medium around the sender for its airtime.
        let tx = self.sender_transmission(pkt);
        if let (Some(book), Some(tx)) = (self.energy.as_mut(), tx.as_ref()) {
            book.meter_tx(pkt.src, tx.end - tx.start);
        }
        // Drop records are stamped off the same client-stamp base the
        // forward times use (§3.2 step 3), not the server receipt time —
        // both legs of a packet's fate must sit on the same time axis.
        let base = tx.as_ref().map(|t| t.start).unwrap_or(pkt.sent_at);
        // A unicast whose target is not a neighbor is a routing failure
        // worth recording (the protocol under test believed it had a link).
        if targets.is_empty() {
            if let Destination::Unicast(d) = pkt.dst {
                self.metrics.drops_noroute.inc();
                self.recorder.record_traffic(TrafficRecord::Drop {
                    id: pkt.id,
                    to: d,
                    at: base,
                    reason: DropReason::NoRoute,
                });
            }
            // The transmission still happened (and can still interfere).
            if let Some(tx) = tx {
                if self.mac != MacModel::None {
                    self.collisions.register(pkt.channel, tx);
                }
            }
            if let Some(t0) = timer {
                self.metrics.ingest_latency_ns.observe(t0.elapsed().as_nanos() as u64);
            }
            self.route_scratch = targets;
            return Vec::new();
        }
        let mut out = Vec::with_capacity(targets.len());
        // When the sender is bound to an empirical profile (and a library
        // is installed), link quality comes from the profile's snapshot at
        // the transmission instant instead of the analytic distance ramps.
        // Either backend draws from the packet's own decision stream —
        // exactly one draw per reachable target, in canonical (ascending
        // id) target order — so the decisions are a pure function of
        // `(seed, packet id)`: a scenario replays byte-identically
        // whichever backend decides, and whichever process (this pipeline
        // or a cluster shard worker) does the deciding.
        let mut decide = poem_core::rng::decide_rng(self.decide_base, pkt.id);
        let sender_profile = self.scene.link_profile(pkt.src);
        for &to in &targets {
            let profiled = match (sender_profile, self.profiles.as_mut()) {
                (Some(pid), Some(book)) => self
                    .scene
                    .link_gate(pkt.src, to, pkt.channel)
                    .and_then(|_| book.snapshot(pid, pkt.src, to, base))
                    .map(|snap| {
                        self.metrics.profile_decides.inc();
                        snap.decide(pkt.wire_size(), &mut decide)
                    }),
                // No profile bound (or no library / unknown id): fall back
                // to the analytic models below.
                _ => None,
            };
            let decision = match profiled {
                Some(d) => Some(d),
                None => self.scene.decide(pkt.src, to, pkt.channel, pkt.wire_size(), &mut decide),
            };
            match decision {
                Some(ForwardDecision::ForwardAfter(d)) => {
                    // MAC collision test at the receiver.
                    if let Some(tx) = tx.as_ref() {
                        if self.mac != MacModel::None {
                            let dst_pos = self.scene.node(to).map(|v| v.pos);
                            if dst_pos.is_some_and(|p| self.collisions.collides(pkt.channel, p, tx))
                            {
                                self.collision_drops += 1;
                                self.metrics.drops_collision.inc();
                                self.recorder.record_traffic(TrafficRecord::Drop {
                                    id: pkt.id,
                                    to,
                                    at: base,
                                    reason: DropReason::Collision,
                                });
                                continue;
                            }
                        }
                    }
                    if let (Some(book), Some(tx)) = (self.energy.as_mut(), tx.as_ref()) {
                        book.meter_rx(to, tx.end - tx.start);
                    }
                    out.push(Delivery { to, fire_at: base + d, packet: pkt.clone() });
                }
                Some(ForwardDecision::Drop) => {
                    self.metrics.drops_loss.inc();
                    self.recorder.record_traffic(TrafficRecord::Drop {
                        id: pkt.id,
                        to,
                        at: base,
                        reason: DropReason::Loss,
                    });
                }
                None => {
                    self.metrics.drops_noroute.inc();
                    self.recorder.record_traffic(TrafficRecord::Drop {
                        id: pkt.id,
                        to,
                        at: base,
                        reason: DropReason::NoRoute,
                    });
                }
            }
        }
        if let Some(tx) = tx {
            if self.mac != MacModel::None {
                self.collisions.register(pkt.channel, tx);
            }
        }
        self.metrics.deliveries.add(out.len() as u64);
        if let Some(t0) = timer {
            self.metrics.ingest_latency_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        self.route_scratch = targets;
        out
    }

    /// Builds the sender-side [`Transmission`] for a packet: position,
    /// range and airtime, with the start deferred under CSMA.
    fn sender_transmission(&mut self, pkt: &EmuPacket) -> Option<Transmission> {
        let sender = self.scene.node(pkt.src)?;
        let range = sender.radios.range_on(pkt.channel)?;
        let link = sender.link.with_range(range);
        let airtime = link.bandwidth.transmission_time(pkt.wire_size(), 0.0);
        let pos = sender.pos;
        let start = match self.mac {
            MacModel::Csma => {
                self.collisions.prune(pkt.sent_at);
                let deferred = self.collisions.medium_free_at(pkt.channel, pos, pkt.sent_at);
                if deferred > pkt.sent_at {
                    self.csma_deferrals += 1;
                    self.metrics.csma_deferrals.inc();
                }
                deferred
            }
            _ => {
                self.collisions.prune(pkt.sent_at);
                pkt.sent_at
            }
        };
        Some(Transmission {
            sender: pkt.src,
            pos,
            range,
            start,
            end: start + airtime.max(EmuDuration::from_nanos(1)),
        })
    }

    /// Step 6 bookkeeping: records that a delivery fired at `at`.
    pub fn record_forward(&self, delivery: &Delivery, at: EmuTime) {
        self.recorder.record_traffic(TrafficRecord::Forward {
            id: delivery.packet.id,
            to: delivery.to,
            at,
        });
    }

    /// Records that a delivery could not be handed to its client (gone
    /// between scheduling and firing).
    pub fn record_undeliverable(&self, delivery: &Delivery, at: EmuTime) {
        self.metrics.drops_disconnected.inc();
        self.recorder.record_traffic(TrafficRecord::Drop {
            id: delivery.packet.id,
            to: delivery.to,
            at,
            reason: DropReason::Disconnected,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::packet::HEADER_BYTES;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, EmuDuration, PacketId, Point, RadioId};

    fn scene_two_nodes(link: LinkParams) -> Scene {
        let mut s = Scene::new();
        for (id, x) in [(1u32, 0.0), (2u32, 60.0)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(x, 0.0),
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Stationary,
                    link,
                },
            )
            .unwrap();
        }
        s
    }

    fn pkt(id: u64, dst: Destination, sent_at: EmuTime) -> EmuPacket {
        EmuPacket::new(
            PacketId(id),
            NodeId(1),
            dst,
            ChannelId(1),
            RadioId(0),
            sent_at,
            vec![0u8; 1000 - HEADER_BYTES],
        )
    }

    #[test]
    fn ingest_schedules_forward_at_client_stamp_plus_model_delay() {
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::new(Recorder::new()),
            EmuRng::seed(1),
        );
        let sent = EmuTime::from_millis(100);
        let out = p.ingest(&pkt(1, Destination::Broadcast, sent), EmuTime::from_millis(103));
        assert_eq!(out.len(), 1);
        // 1000 B at 8 Mbps = 1 ms after the CLIENT stamp, not the server
        // receipt.
        assert_eq!(out[0].fire_at, sent + EmuDuration::from_millis(1));
        assert_eq!(out[0].to, NodeId(2));
    }

    #[test]
    fn ingest_records_ingress_and_forward() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::clone(&rec),
            EmuRng::seed(1),
        );
        let out = p.ingest(&pkt(7, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        p.record_forward(&out[0], out[0].fire_at);
        let traffic = rec.traffic();
        assert_eq!(traffic.len(), 2);
        assert!(matches!(traffic[0], TrafficRecord::Ingress { id: PacketId(7), .. }));
        assert!(matches!(
            traffic[1],
            TrafficRecord::Forward { id: PacketId(7), to: NodeId(2), .. }
        ));
    }

    #[test]
    fn unicast_to_unreachable_records_noroute() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::clone(&rec),
            EmuRng::seed(1),
        );
        let out = p.ingest(&pkt(1, Destination::Unicast(NodeId(9)), EmuTime::ZERO), EmuTime::ZERO);
        assert!(out.is_empty());
        let traffic = rec.traffic();
        assert!(matches!(
            traffic[1],
            TrafficRecord::Drop { reason: DropReason::NoRoute, to: NodeId(9), .. }
        ));
    }

    #[test]
    fn lossy_link_records_loss_drops() {
        let rec = Arc::new(Recorder::new());
        // Constant 100 % loss.
        let link = LinkParams { p0: 1.0, p1: 1.0, d0: 0.0, ..LinkParams::ideal(8e6) };
        let mut p = Pipeline::new(scene_two_nodes(link), Arc::clone(&rec), EmuRng::seed(1));
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        assert!(out.is_empty());
        assert!(matches!(rec.traffic()[1], TrafficRecord::Drop { reason: DropReason::Loss, .. }));
    }

    fn lib_one_trace(name: &str, loss: f64, bps: f64, delay_s: f64) -> ProfileLibrary {
        ProfileLibrary::parse(&format!(
            "profile {name} trace\nat 0 loss {loss} bps {bps} delay {delay_s}\nend\n"
        ))
        .unwrap()
    }

    #[test]
    fn profile_snapshot_overrides_the_analytic_models() {
        // Analytic params say 100 % loss; the bound profile says 0 % at
        // 8 Mbps + 2 ms. The profile must win for the bound sender.
        let link = LinkParams { p0: 1.0, p1: 1.0, d0: 0.0, ..LinkParams::ideal(1e6) };
        let mut scene = scene_two_nodes(link);
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(poem_core::ProfileId(0)) },
            )
            .unwrap();
        let mut p = Pipeline::new(scene, Arc::new(Recorder::new()), EmuRng::seed(1));
        p.install_profiles(lib_one_trace("clean", 0.0, 8e6, 0.002), 1);
        let sent = EmuTime::from_millis(100);
        let out = p.ingest(&pkt(1, Destination::Broadcast, sent), sent);
        assert_eq!(out.len(), 1);
        // 1000 B at 8 Mbps = 1 ms serialization + 2 ms profile delay.
        assert_eq!(out[0].fire_at, sent + EmuDuration::from_millis(3));
        assert_eq!(p.metrics_registry().snapshot().counter("poem_profile_decides_total"), Some(1));
    }

    #[test]
    fn profile_outage_drops_what_analytic_models_would_forward() {
        let mut scene = scene_two_nodes(LinkParams::ideal(8e6));
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(poem_core::ProfileId(0)) },
            )
            .unwrap();
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(scene, Arc::clone(&rec), EmuRng::seed(1));
        p.install_profiles(lib_one_trace("outage", 1.0, 8e6, 0.0), 1);
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        assert!(out.is_empty());
        assert!(matches!(rec.traffic()[1], TrafficRecord::Drop { reason: DropReason::Loss, .. }));
    }

    #[test]
    fn unbound_or_unknown_profile_falls_back_to_analytic_models() {
        // A library is installed but the sender is not bound: analytic
        // ideal link forwards at its own 1 ms serialization time.
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::new(Recorder::new()),
            EmuRng::seed(1),
        );
        p.install_profiles(lib_one_trace("outage", 1.0, 8e6, 0.0), 1);
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fire_at, EmuTime::from_millis(1));

        // Bound to an id the library does not have: same fallback.
        let mut scene = scene_two_nodes(LinkParams::ideal(8e6));
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(poem_core::ProfileId(9)) },
            )
            .unwrap();
        let mut p = Pipeline::new(scene, Arc::new(Recorder::new()), EmuRng::seed(1));
        p.install_profiles(lib_one_trace("outage", 1.0, 8e6, 0.0), 1);
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        assert_eq!(out.len(), 1, "unknown profile id must fall back, not drop");
        assert_eq!(p.metrics_registry().snapshot().counter("poem_profile_decides_total"), Some(0));
    }

    #[test]
    fn profile_decides_preserve_reachability_gating() {
        // The bound profile says the link is perfect, but the peer is out
        // of radio range: the gate (reachability) still rules, exactly as
        // for the analytic models, so binding a profile can never create
        // links the scene does not have.
        let mut scene = scene_two_nodes(LinkParams::ideal(8e6));
        scene
            .apply(EmuTime::ZERO, &SceneOp::MoveNode { id: NodeId(2), pos: Point::new(500.0, 0.0) })
            .unwrap();
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(poem_core::ProfileId(0)) },
            )
            .unwrap();
        let mut p = Pipeline::new(scene, Arc::new(Recorder::new()), EmuRng::seed(1));
        p.install_profiles(lib_one_trace("clean", 0.0, 8e6, 0.0), 1);
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        assert!(out.is_empty());
    }

    #[test]
    fn drop_records_are_stamped_from_the_client_base_not_server_receipt() {
        // Regression: drops used to be stamped with the server's receipt
        // time while forwards used the client stamp, putting the two legs
        // of a packet's fate on different time axes.
        let rec = Arc::new(Recorder::new());
        let link = LinkParams { p0: 1.0, p1: 1.0, d0: 0.0, ..LinkParams::ideal(8e6) };
        let mut p = Pipeline::new(scene_two_nodes(link), Arc::clone(&rec), EmuRng::seed(1));
        let sent = EmuTime::from_millis(100);
        let received = EmuTime::from_millis(137); // skewed transport
        let out = p.ingest(&pkt(1, Destination::Broadcast, sent), received);
        assert!(out.is_empty());
        match rec.traffic()[1] {
            TrafficRecord::Drop { at, reason: DropReason::Loss, .. } => {
                assert_eq!(at, sent, "loss drop must carry the client-stamp base");
            }
            ref other => panic!("{other:?}"),
        }
        // Same for a unicast routing failure.
        let out = p.ingest(&pkt(2, Destination::Unicast(NodeId(9)), sent), received);
        assert!(out.is_empty());
        match rec.traffic()[3] {
            TrafficRecord::Drop { at, reason: DropReason::NoRoute, .. } => {
                assert_eq!(at, sent, "noroute drop must carry the client-stamp base");
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipeline_metrics_cover_ingest_and_drops() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::clone(&rec),
            EmuRng::seed(1),
        );
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        p.ingest(&pkt(2, Destination::Unicast(NodeId(9)), EmuTime::ZERO), EmuTime::ZERO);
        p.record_undeliverable(&out[0], EmuTime::from_millis(5));
        let snap = p.metrics();
        assert_eq!(snap.counter("poem_ingest_packets_total"), Some(2));
        assert_eq!(snap.counter("poem_ingest_deliveries_total"), Some(1));
        assert_eq!(snap.counter("poem_drops_total{reason=\"noroute\"}"), Some(1));
        assert_eq!(snap.counter("poem_drops_total{reason=\"disconnected\"}"), Some(1));
        // The shared recorder's own instruments ride in the same registry.
        assert_eq!(
            snap.counter("poem_recorder_traffic_records_total"),
            Some(rec.counts().0 as u64)
        );
        // The text exposition renders the same numbers.
        assert!(snap.to_text().contains("poem_ingest_packets_total 2"));
    }

    #[test]
    fn ingest_latency_histogram_fills_under_sampling() {
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::new(Recorder::new()),
            EmuRng::seed(1),
        );
        for i in 0..(LATENCY_SAMPLE_EVERY as u64 * 3) {
            p.ingest(&pkt(i, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        }
        let snap = p.metrics();
        let h = snap.histogram("poem_ingest_latency_ns").expect("registered");
        assert_eq!(h.count, 3, "one sample per {LATENCY_SAMPLE_EVERY} packets");
    }

    #[test]
    fn apply_op_records_scene() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(Scene::new(), Arc::clone(&rec), EmuRng::seed(1));
        p.apply_op(
            EmuTime::from_secs(1),
            SceneOp::AddNode {
                id: NodeId(1),
                pos: Point::ORIGIN,
                radios: RadioConfig::single(ChannelId(1), 50.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::default(),
            },
        )
        .unwrap();
        assert_eq!(rec.scene().len(), 1);
        // A rejected op is not recorded.
        assert!(p.apply_op(EmuTime::from_secs(2), SceneOp::RemoveNode { id: NodeId(9) }).is_err());
        assert_eq!(rec.scene().len(), 1);
    }

    #[test]
    fn mobility_advance_records_positions_for_replay() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(Scene::new(), Arc::clone(&rec), EmuRng::seed(1));
        p.apply_op(
            EmuTime::ZERO,
            SceneOp::AddNode {
                id: NodeId(1),
                pos: Point::ORIGIN,
                radios: RadioConfig::single(ChannelId(1), 100.0),
                mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                link: LinkParams::default(),
            },
        )
        .unwrap();
        p.advance_mobility(EmuTime::from_secs(1));
        p.advance_mobility(EmuTime::from_secs(2));
        let ops = rec.scene();
        assert_eq!(ops.len(), 3); // AddNode + 2 MoveNode
        match &ops[2].op {
            SceneOp::MoveNode { id, pos } => {
                assert_eq!(*id, NodeId(1));
                assert!((pos.x - 20.0).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
        // Replaying the log reproduces the final position exactly.
        let engine = poem_record::ReplayEngine::new(ops);
        let replayed = engine.scene_at(EmuTime::from_secs(2)).unwrap();
        assert!((replayed.node(NodeId(1)).unwrap().pos.x - 20.0).abs() < 1e-9);
    }

    #[test]
    fn undeliverable_records_disconnected() {
        let rec = Arc::new(Recorder::new());
        let mut p = Pipeline::new(
            scene_two_nodes(LinkParams::ideal(8e6)),
            Arc::clone(&rec),
            EmuRng::seed(1),
        );
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        p.record_undeliverable(&out[0], EmuTime::from_millis(5));
        assert!(matches!(
            rec.traffic()[1],
            TrafficRecord::Drop { reason: DropReason::Disconnected, .. }
        ));
    }

    #[test]
    fn broadcast_fans_out_to_all_neighbors() {
        let mut scene = scene_two_nodes(LinkParams::ideal(8e6));
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(3),
                    pos: Point::new(0.0, 50.0),
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        let mut p = Pipeline::new(scene, Arc::new(Recorder::new()), EmuRng::seed(1));
        let out = p.ingest(&pkt(1, Destination::Broadcast, EmuTime::ZERO), EmuTime::ZERO);
        let mut tos: Vec<NodeId> = out.iter().map(|d| d.to).collect();
        tos.sort_unstable();
        assert_eq!(tos, vec![NodeId(2), NodeId(3)]);
        // Payload buffers are shared across the fan-out.
        assert_eq!(out[0].packet.payload.as_ptr(), out[1].packet.payload.as_ptr());
    }
}

#[cfg(test)]
mod model_ext_tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::packet::HEADER_BYTES;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, PacketId, Point, RadioId};

    /// Dense single-channel scene: everyone hears everyone.
    fn dense_scene(n: u32) -> Scene {
        let mut s = Scene::new();
        for i in 1..=n {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(i),
                    pos: Point::new(i as f64 * 10.0, 0.0),
                    radios: RadioConfig::single(ChannelId(1), 500.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        }
        s
    }

    fn pipeline(mac: MacModel, power: Option<PowerProfile>, n: u32) -> Pipeline {
        Pipeline::with_config(
            dense_scene(n),
            Arc::new(Recorder::new()),
            EmuRng::seed(1),
            PipelineConfig { mac, power },
        )
    }

    fn pkt(id: u64, src: u32, sent_at: EmuTime) -> EmuPacket {
        EmuPacket::new(
            PacketId(id),
            NodeId(src),
            Destination::Broadcast,
            ChannelId(1),
            RadioId(0),
            sent_at,
            vec![0u8; 1000 - HEADER_BYTES],
        )
    }

    #[test]
    fn aloha_collides_simultaneous_transmissions() {
        let mut p = pipeline(MacModel::Aloha, None, 3);
        let t = EmuTime::from_millis(10);
        // First transmission registers cleanly and is delivered.
        let out1 = p.ingest(&pkt(1, 1, t), t);
        assert_eq!(out1.len(), 2);
        // Simultaneous second transmission: receptions collide (the first
        // is audible everywhere in this dense scene).
        let out2 = p.ingest(&pkt(2, 2, t), t);
        assert!(out2.is_empty(), "{out2:?}");
        assert_eq!(p.collision_drops(), 2);
        let drops = p
            .recorder()
            .traffic()
            .iter()
            .filter(|r| matches!(r, TrafficRecord::Drop { reason: DropReason::Collision, .. }))
            .count();
        assert_eq!(drops, 2);
    }

    #[test]
    fn aloha_spaced_transmissions_do_not_collide() {
        let mut p = pipeline(MacModel::Aloha, None, 3);
        // 1000 B at 8 Mbps = 1 ms airtime; space sends 2 ms apart.
        let out1 = p.ingest(&pkt(1, 1, EmuTime::from_millis(10)), EmuTime::from_millis(10));
        let out2 = p.ingest(&pkt(2, 2, EmuTime::from_millis(12)), EmuTime::from_millis(12));
        assert_eq!(out1.len(), 2);
        assert_eq!(out2.len(), 2);
        assert_eq!(p.collision_drops(), 0);
    }

    #[test]
    fn csma_defers_instead_of_colliding() {
        let mut p = pipeline(MacModel::Csma, None, 3);
        let t = EmuTime::from_millis(10);
        let out1 = p.ingest(&pkt(1, 1, t), t);
        let out2 = p.ingest(&pkt(2, 2, t), t);
        // CSMA: the second sender hears the first and defers by one
        // airtime (1 ms) instead of colliding.
        assert_eq!(out1.len(), 2);
        assert_eq!(out2.len(), 2);
        assert_eq!(p.collision_drops(), 0);
        assert_eq!(p.csma_deferrals(), 1);
        let fire1 = out1[0].fire_at;
        let fire2 = out2[0].fire_at;
        assert_eq!(fire2 - fire1, EmuDuration::from_millis(1), "{fire1} vs {fire2}");
    }

    #[test]
    fn csma_hidden_terminal_still_collides() {
        // Senders A (x=0) and C (x=300) cannot hear each other (range
        // 180) but both reach B (x=150): the hidden-terminal case.
        let mut s = Scene::new();
        for (id, x) in [(1u32, 0.0), (2u32, 150.0), (3u32, 300.0)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(x, 0.0),
                    radios: RadioConfig::single(ChannelId(1), 180.0),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
        }
        let mut p = Pipeline::with_config(
            s,
            Arc::new(Recorder::new()),
            EmuRng::seed(1),
            PipelineConfig { mac: MacModel::Csma, power: None },
        );
        let t = EmuTime::from_millis(5);
        let out1 = p.ingest(&pkt(1, 1, t), t);
        assert_eq!(out1.len(), 1, "A reaches only B");
        let out3 = p.ingest(&pkt(2, 3, t), t);
        // C did not defer (A inaudible at C) and its reception at B
        // collides with A's ongoing transmission.
        assert_eq!(p.csma_deferrals(), 0);
        assert!(out3.is_empty());
        assert_eq!(p.collision_drops(), 1);
    }

    #[test]
    fn no_mac_never_collides() {
        let mut p = pipeline(MacModel::None, None, 5);
        let t = EmuTime::from_millis(1);
        for i in 0..10u64 {
            let src = (i % 5 + 1) as u32;
            p.ingest(&pkt(i, src, t), t);
        }
        assert_eq!(p.collision_drops(), 0);
    }

    #[test]
    fn energy_meters_tx_and_rx_airtime() {
        let profile = PowerProfile { tx_w: 2.0, rx_w: 1.5, idle_w: 1.0 };
        let mut p = pipeline(MacModel::None, Some(profile), 3);
        let t = EmuTime::from_millis(10);
        // One broadcast from node 1: 1 ms tx at node 1, 1 ms rx at 2 and 3.
        let out = p.ingest(&pkt(1, 1, t), t);
        assert_eq!(out.len(), 2);
        let book = p.energy().unwrap();
        let a1 = book.account(NodeId(1)).unwrap();
        assert_eq!(a1.tx_time, EmuDuration::from_millis(1));
        assert_eq!(a1.tx_packets, 1);
        let a2 = book.account(NodeId(2)).unwrap();
        assert_eq!(a2.rx_time, EmuDuration::from_millis(1));
        assert_eq!(a2.rx_packets, 1);
        // Energy at t = 1 s: node 1 idles 1 s (1 J) + 1 ms × (2−1) W.
        let consumed = a1.consumed_j(profile, EmuTime::from_secs(1));
        assert!((consumed - 1.001).abs() < 1e-9, "{consumed}");
    }

    #[test]
    fn energy_accounts_follow_scene_ops() {
        let mut p = pipeline(MacModel::None, Some(PowerProfile::wifi_11b()), 2);
        p.apply_op(
            EmuTime::from_secs(5),
            SceneOp::AddNode {
                id: NodeId(9),
                pos: Point::new(500.0, 500.0),
                radios: RadioConfig::single(ChannelId(1), 10.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::default(),
            },
        )
        .unwrap();
        assert!(p.energy().unwrap().account(NodeId(9)).is_some());
        p.apply_op(EmuTime::from_secs(6), SceneOp::RemoveNode { id: NodeId(9) }).unwrap();
        assert!(p.energy().unwrap().account(NodeId(9)).is_none());
    }

    #[test]
    fn battery_depletion_is_reportable() {
        let profile = PowerProfile { tx_w: 2.0, rx_w: 1.5, idle_w: 1.0 };
        let mut p = pipeline(MacModel::None, Some(profile), 2);
        p.energy_mut().unwrap().set_battery(NodeId(1), Some(3.0));
        assert!(p.energy().unwrap().depleted(EmuTime::from_secs(2)).is_empty());
        assert_eq!(p.energy().unwrap().depleted(EmuTime::from_secs(4)), vec![NodeId(1)]);
    }
}
