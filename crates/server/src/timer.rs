//! A hashed timer wheel for reactor session timeouts.
//!
//! The thread-per-client server leaned on `SO_RCVTIMEO` to wake blocked
//! reads; the reactor's sockets are non-blocking, so idle/read deadlines
//! need their own clock. Each poll worker owns one wheel: `slots` buckets
//! of connection ids, a cursor advancing one bucket per `tick` of wall
//! time. Arming is O(1) (push into the bucket `ticks` ahead); expiry is
//! amortized O(1) per armed entry (drain every bucket the cursor passes).
//!
//! Deadlines longer than one wheel revolution are handled by **lazy
//! re-arm**: an entry fires early, the caller compares the session's
//! `last_activity` against its real deadline and re-arms with the
//! remainder when it has not actually expired. Activity therefore never
//! needs to *move* an entry — stale firings are cheap no-ops.

use std::time::{Duration, Instant};

/// A fixed-slot timer wheel over `u64` connection ids.
#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    cursor: usize,
    /// Wall-clock instant at which the cursor's current slot began.
    epoch: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets advancing every `tick`.
    pub fn new(tick: Duration, slots: usize, now: Instant) -> Self {
        let slots = slots.max(2);
        TimerWheel { slots: (0..slots).map(|_| Vec::new()).collect(), tick, cursor: 0, epoch: now }
    }

    /// Arms `id` to fire after roughly `after` (rounded up to a tick,
    /// capped at one revolution — longer deadlines fire early and are
    /// lazily re-armed by the caller).
    pub fn arm(&mut self, id: u64, after: Duration) {
        let ticks = after.as_nanos().div_ceil(self.tick.as_nanos().max(1)) as usize;
        let ticks = ticks.clamp(1, self.slots.len() - 1);
        let slot = (self.cursor + ticks) % self.slots.len();
        self.slots[slot].push(id);
    }

    /// Advances the cursor to `now`, appending every fired id to `out`.
    /// A pause longer than one revolution drains each slot at most once.
    pub fn advance(&mut self, now: Instant, out: &mut Vec<u64>) {
        let mut steps = 0;
        while now.duration_since(self.epoch) >= self.tick {
            self.epoch += self.tick;
            if steps < self.slots.len() {
                self.cursor = (self.cursor + 1) % self.slots.len();
                out.append(&mut self.slots[self.cursor]);
                steps += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_fire_in_deadline_order() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, 16, t0);
        wheel.arm(1, Duration::from_millis(10));
        wheel.arm(2, Duration::from_millis(40));
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(15), &mut fired);
        assert_eq!(fired, vec![1]);
        wheel.advance(t0 + Duration::from_millis(39), &mut fired);
        assert_eq!(fired, vec![1], "entry 2 not due yet");
        wheel.advance(t0 + Duration::from_millis(41), &mut fired);
        assert_eq!(fired, vec![1, 2]);
    }

    #[test]
    fn deadlines_past_one_revolution_fire_early_for_lazy_rearm() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 8, t0);
        // 1 s with an 80 ms horizon: capped to the last slot.
        wheel.arm(7, Duration::from_secs(1));
        let mut fired = Vec::new();
        wheel.advance(t0 + Duration::from_millis(80), &mut fired);
        assert_eq!(fired, vec![7], "caller re-arms after checking the real deadline");
    }

    #[test]
    fn long_pause_drains_each_slot_once() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 4, t0);
        for id in 0..4u64 {
            wheel.arm(id, Duration::from_millis(id + 1));
        }
        let mut fired = Vec::new();
        // 10 revolutions late: every armed entry fires exactly once.
        wheel.advance(t0 + Duration::from_millis(40), &mut fired);
        fired.sort_unstable();
        assert_eq!(fired, vec![0, 1, 2, 3]);
    }
}
