//! Reactor-era hostile-client coverage: the readiness-based server core
//! must survive peers that *stay connected but never speak* (half-open),
//! peers that *stop reading* what the server sends (stalled consumers),
//! and peers that vanish mid-handshake — all without wedging a poll
//! worker or leaking a session, because every connection is now a state
//! machine owned by a worker rather than a dedicated thread.
//!
//! The thread-per-client robustness suite (`tests/tcp_hostile.rs` at the
//! workspace root) keeps running unchanged; this file adds the failure
//! modes only a reactor can express.

use bytes::Bytes;
use poem_client::EmuClient;
use poem_core::clock::{Clock, WallClock};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_server::{ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn two_node_scene() -> Scene {
    let mut s = Scene::new();
    for (id, x) in [(1u32, 0.0), (2u32, 50.0)] {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(id),
                pos: Point::new(x, 0.0),
                radios: RadioConfig::single(ChannelId(1), 200.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::ideal(11.0e6),
            },
        )
        .unwrap();
    }
    s
}

fn start_with(config: ServerConfig) -> Arc<ServerHandle> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    ServerHandle::start(two_node_scene(), clock, config).unwrap()
}

/// Polls `cond` against fresh metrics until it holds or `deadline`
/// elapses.
fn wait_for(server: &ServerHandle, deadline: Duration, cond: impl Fn(&ServerHandle) -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond(server) {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(cond(server), "condition not reached within {deadline:?}");
}

/// After the hostile interaction, a normal session must still work.
fn assert_server_still_serves(server: &ServerHandle) {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let c1 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(1),
        RadioConfig::single(ChannelId(1), 200.0),
        Arc::clone(&clock),
    )
    .expect("healthy client connects");
    let c2 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(2),
        RadioConfig::single(ChannelId(1), 200.0),
        clock,
    )
    .expect("second healthy client connects");
    c1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"alive")).unwrap().unwrap();
    let (pkt, _) = c2.recv_timeout(Duration::from_secs(5)).expect("traffic still flows");
    assert_eq!(&pkt.payload[..], b"alive");
    c1.close().unwrap();
    c2.close().unwrap();
}

/// A connection that completes TCP but never sends a byte (a half-open
/// peer, a port scanner, a crashed host behind NAT) must be reaped by the
/// timer wheel — counted in `poem_session_timeouts_total` — instead of
/// occupying a reactor slot forever.
#[test]
fn half_open_connection_is_idle_timed_out() {
    let server = start_with(ServerConfig {
        read_timeout: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });

    let _half_open = TcpStream::connect(server.addr()).unwrap();
    wait_for(&server, Duration::from_secs(10), |s| {
        s.metrics().counter("poem_session_timeouts_total").unwrap_or(0) >= 1
    });
    wait_for(&server, Duration::from_secs(5), |s| {
        s.metrics().gauge("poem_reactor_conns") == Some(0)
    });

    // The idle kill never registered a session, so nothing leaks.
    assert!(server.connected().is_empty(), "half-open conn registered a session");
    assert_server_still_serves(&server);
    server.shutdown();
}

/// A registered client that stops draining its socket must be evicted
/// once its buffered output exceeds `write_buffer_cap` — counted in
/// `poem_writebuf_evictions_total` — while its well-behaved peers keep
/// full service. This is the reactor replacement for per-thread
/// `SO_SNDTIMEO` eviction.
#[test]
fn stalled_reader_is_evicted_not_backpressured() {
    let server = start_with(ServerConfig {
        write_buffer_cap: 64 * 1024,
        write_timeout: Some(Duration::from_millis(500)),
        // The stalled conn must not be idle-killed first: its liveness is
        // the server's own delivery writes, which touch() it.
        read_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    });
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());

    // Node 2 handshakes properly, then never reads another byte.
    let stalled = {
        use poem_proto::{ClientMsg, MsgReader, MsgWriter, ServerMsg, PROTOCOL_VERSION};
        let s = TcpStream::connect(server.addr()).unwrap();
        let mut w = MsgWriter::new(s.try_clone().unwrap());
        let mut r = MsgReader::new(s.try_clone().unwrap());
        w.send(&ClientMsg::Hello { version: PROTOCOL_VERSION, node: NodeId(2) }).unwrap();
        match r.recv::<ServerMsg>().unwrap() {
            ServerMsg::Welcome { .. } => {}
            other => panic!("expected Welcome, got {other:?}"),
        }
        s // kept open, never read again
    };
    wait_for(&server, Duration::from_secs(5), |s| s.connected() == vec![NodeId(2)]);

    // Node 1 floods broadcasts at the stalled consumer until the server
    // gives up on it.
    let c1 = EmuClient::connect_tcp(
        server.addr(),
        NodeId(1),
        RadioConfig::single(ChannelId(1), 200.0),
        Arc::clone(&clock),
    )
    .unwrap();
    let payload = Bytes::from(vec![0x5a; 32 * 1024]);
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "stalled consumer never evicted (evictions={:?})",
            server.metrics().counter("poem_writebuf_evictions_total"),
        );
        c1.send(ChannelId(1), Destination::Broadcast, payload.clone()).unwrap().unwrap();
        if server.metrics().counter("poem_writebuf_evictions_total").unwrap_or(0) >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // The eviction deregisters node 2; node 1 keeps full service.
    wait_for(&server, Duration::from_secs(5), |s| s.connected() == vec![NodeId(1)]);
    c1.close().unwrap();
    drop(stalled);

    wait_for(&server, Duration::from_secs(5), |s| s.connected().is_empty());
    assert_server_still_serves(&server);
    server.shutdown();
}

/// A peer that vanishes mid-handshake — after a partial frame, or right
/// after `MuxHello` with attaches outstanding — must be reaped on EOF
/// with no session registered and no reactor slot leaked.
#[test]
fn mid_handshake_disconnect_leaves_no_session_behind() {
    let server = start_with(ServerConfig::default());

    // A frame header promising 512 bytes, followed by silence and EOF.
    {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(&512u32.to_le_bytes()).unwrap();
        s.write_all(&[0xab; 17]).unwrap();
    }
    // A mux transport that dies between MuxHello and any Attach.
    {
        use poem_proto::{ClientMsg, MsgReader, MsgWriter, ServerMsg};
        let s = TcpStream::connect(server.addr()).unwrap();
        let mut w = MsgWriter::new(s.try_clone().unwrap());
        let mut r = MsgReader::new(s.try_clone().unwrap());
        w.send(&ClientMsg::mux_hello()).unwrap();
        match r.recv::<ServerMsg>().unwrap() {
            ServerMsg::MuxWelcome { .. } => {}
            other => panic!("expected MuxWelcome, got {other:?}"),
        }
    }

    wait_for(&server, Duration::from_secs(10), |s| {
        s.metrics().gauge("poem_reactor_conns") == Some(0)
    });
    assert!(server.connected().is_empty(), "mid-handshake death registered a session");
    assert_server_still_serves(&server);
    server.shutdown();
}
