//! Ingest coalescing must be *invisible*: the reactor batches everything
//! one worker pass read into a single coordinator `IngestBatch` (one
//! round-trip, one `received_at` stamp), and the contract is that this
//! produces **byte-identical** record logs and identical delivery
//! decisions to submitting the same packets one at a time — and to the
//! single-process pipeline deciding them locally. Decisions are a pure
//! function of `(seed, packet id)` and records settle in batch order, so
//! batch size is not allowed to leak into the output.
//!
//! Living in `poem-server/tests/` guarantees cargo builds `poem-shardd`
//! before these run.

use bytes::Bytes;
use poem_cluster::{ClusterConfig, Coordinator};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuPacket, EmuRng, EmuTime, NodeId, PacketId, Point, RadioId};
use poem_record::Recorder;
use poem_server::Pipeline;
use std::sync::Arc;

const SEED: u64 = 99;

/// Six nodes on a 120 m line with 220 m lossy (Table-3) radios: every
/// packet fans out to 1–2 neighbors and draws real loss decisions.
fn scene() -> Scene {
    let mut s = Scene::new();
    for i in 0..6u32 {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(i + 1),
                pos: Point::new(f64::from(i) * 120.0, 0.0),
                radios: RadioConfig::single(ChannelId(1), 220.0),
                mobility: MobilityModel::Stationary,
                link: LinkParams::table3(),
            },
        )
        .unwrap();
    }
    s
}

/// A mixed workload: broadcasts and unicasts from every node, distinct
/// packet ids, distinct client stamps.
fn workload() -> Vec<EmuPacket> {
    (0..24u64)
        .map(|i| {
            let src = NodeId((i % 6) as u32 + 1);
            let dst = if i % 2 == 0 {
                Destination::Broadcast
            } else {
                Destination::Unicast(NodeId((i % 6) as u32 % 6 + 1))
            };
            EmuPacket::new(
                PacketId((u64::from(src.0) << 40) | i),
                src,
                dst,
                ChannelId(1),
                RadioId(0),
                EmuTime::from_secs_f64(0.001 * i as f64),
                Bytes::from_static(b"coalesce-me"),
            )
        })
        .collect()
}

/// One fleet, the whole workload, submitted either as a single batch or
/// packet by packet — all at the same `received_at`. Returns the
/// serialized traffic log and the flattened decision stream.
fn run_cluster(batched: bool) -> (Vec<u8>, Vec<(NodeId, EmuTime, PacketId)>) {
    let recorder = Arc::new(Recorder::new());
    let pipeline = Pipeline::new(scene(), Arc::clone(&recorder), EmuRng::seed(SEED));
    let cfg =
        ClusterConfig { workers: 2, tile_edge: 260.0, seed: SEED, ..ClusterConfig::default() };
    let mut coord = Coordinator::launch(
        cfg,
        pipeline.decide_base(),
        pipeline.scene(),
        pipeline.metrics_registry(),
    )
    .expect("fleet launches");

    let pkts = workload();
    let received_at = EmuTime::from_secs_f64(0.5);
    let mut deliveries = Vec::new();
    if batched {
        deliveries
            .extend(coord.ingest_batch(&pkts, received_at, &recorder).expect("batch settles"));
    } else {
        for pkt in &pkts {
            deliveries.extend(
                coord
                    .ingest_batch(std::slice::from_ref(pkt), received_at, &recorder)
                    .expect("single-packet batch settles"),
            );
        }
    }
    coord.shutdown();

    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let decisions = deliveries.into_iter().map(|d| (d.to, d.fire_at, d.packet.id)).collect();
    (traffic, decisions)
}

/// The same workload decided by the local single-process pipeline,
/// sequentially, at the same stamp.
fn run_local() -> (Vec<u8>, Vec<(NodeId, EmuTime, PacketId)>) {
    let recorder = Arc::new(Recorder::new());
    let mut pipeline = Pipeline::new(scene(), Arc::clone(&recorder), EmuRng::seed(SEED));
    let received_at = EmuTime::from_secs_f64(0.5);
    let mut deliveries = Vec::new();
    for pkt in &workload() {
        deliveries.extend(pipeline.ingest(pkt, received_at));
    }
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let decisions = deliveries.into_iter().map(|d| (d.to, d.fire_at, d.packet.id)).collect();
    (traffic, decisions)
}

#[test]
fn one_coalesced_batch_matches_per_packet_submission_byte_for_byte() {
    let (traffic_batched, decisions_batched) = run_cluster(true);
    let (traffic_single, decisions_single) = run_cluster(false);
    assert!(!traffic_batched.is_empty(), "workload produced no records");
    assert!(!decisions_batched.is_empty(), "workload produced no deliveries");
    assert_eq!(
        traffic_batched, traffic_single,
        "batch coalescing changed the recorded traffic log"
    );
    assert_eq!(
        decisions_batched, decisions_single,
        "batch coalescing changed the delivery decisions"
    );
}

#[test]
fn coalesced_cluster_batch_matches_the_local_pipeline_byte_for_byte() {
    let (traffic_cluster, decisions_cluster) = run_cluster(true);
    let (traffic_local, decisions_local) = run_local();
    assert_eq!(
        traffic_cluster, traffic_local,
        "cluster batch diverged from the single-process pipeline log"
    );
    assert_eq!(
        decisions_cluster, decisions_local,
        "cluster batch diverged from the single-process pipeline decisions"
    );
}
