//! Multiplexed-session integration: many VMNs over one TCP connection
//! ([`poem_client::MuxClient`] ↔ the reactor's `Mux` session state),
//! exercised end to end — attach, traffic, detach — plus the shutdown
//! property the reactor exists for: tearing down *thousands* of sessions
//! promptly, by waking poll workers instead of spoofing a loopback
//! connection per socket and waiting out read timeouts.

use bytes::Bytes;
use poem_core::clock::{Clock, WallClock};
use poem_core::linkmodel::LinkParams;
use poem_core::mobility::MobilityModel;
use poem_core::packet::Destination;
use poem_core::radio::RadioConfig;
use poem_core::scene::{Scene, SceneOp};
use poem_core::{ChannelId, EmuTime, NodeId, Point};
use poem_server::{ServerConfig, ServerHandle};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `n` nodes on a 100 m grid with 30 m radios: all isolated, so mass
/// attach/detach costs no routing work.
fn grid_scene(n: u32, range: f64) -> Scene {
    let mut s = Scene::new();
    for i in 0..n {
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(i + 1),
                pos: Point::new(f64::from(i % 64) * 100.0, f64::from(i / 64) * 100.0),
                radios: RadioConfig::single(ChannelId(1), range),
                mobility: MobilityModel::Stationary,
                link: LinkParams::ideal(11.0e6),
            },
        )
        .unwrap();
    }
    s
}

fn start(scene: Scene, config: ServerConfig) -> Arc<ServerHandle> {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    ServerHandle::start(scene, clock, config).unwrap()
}

/// Two virtual sessions on one socket: traffic between them flows through
/// the full pipeline and demuxes back to the right session; a detach
/// frees the identity while the sibling (and the connection) stay up.
#[test]
fn mux_sessions_attach_exchange_traffic_and_detach() {
    // 200 m radios on the 100 m grid: nodes 1 and 2 are neighbors.
    let server = start(grid_scene(2, 200.0), ServerConfig::default());
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());

    let mc = poem_client::MuxClient::connect_tcp(server.addr(), clock).unwrap();
    let radios = RadioConfig::single(ChannelId(1), 200.0);
    let sessions = mc
        .attach_many(&[(NodeId(1), radios.clone()), (NodeId(2), radios.clone())])
        .expect("both sessions attach");
    assert_eq!(server.connected(), vec![NodeId(1), NodeId(2)]);
    // One socket, two VMNs.
    assert_eq!(server.metrics().gauge("poem_reactor_conns"), Some(1));

    let s1 = &sessions[0];
    let s2 = &sessions[1];
    s1.send(ChannelId(1), Destination::Broadcast, Bytes::from_static(b"via-mux"))
        .unwrap()
        .expect("session radio tuned");
    let (pkt, _) = s2.recv_timeout(Duration::from_secs(5)).expect("delivery demuxes to VMN2");
    assert_eq!(&pkt.payload[..], b"via-mux");
    assert_eq!(pkt.src, NodeId(1));
    // VMN1 must not hear its own broadcast.
    assert!(s1.try_recv().is_none(), "sender received its own packet");

    // A duplicate attach of a live identity is refused without touching
    // the existing session.
    assert!(mc.attach(NodeId(2), radios).is_err(), "duplicate attach accepted");
    assert_eq!(server.connected(), vec![NodeId(1), NodeId(2)]);

    let mut sessions = sessions;
    sessions.remove(0).detach().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.connected() != vec![NodeId(2)] {
        assert!(Instant::now() < deadline, "detach did not deregister VMN1");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!mc.is_closed(), "detach tore the whole connection down");

    mc.close().unwrap();
    server.shutdown();
}

/// Shutdown at scale: 2 048 sessions multiplexed over 8 sockets must tear
/// down in bounded time — every registry entry gone, every reactor slot
/// reaped, every client notified — with no loopback self-connects and no
/// read-timeout waits.
#[test]
fn shutdown_is_fast_with_thousands_of_mux_sessions() {
    const CONNS: u32 = 8;
    const PER_CONN: u32 = 256;
    let server = start(grid_scene(CONNS * PER_CONN, 30.0), ServerConfig::default());
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());

    let mut muxes = Vec::new();
    let mut sessions = Vec::new();
    for c in 0..CONNS {
        let mc = poem_client::MuxClient::connect_tcp(server.addr(), Arc::clone(&clock)).unwrap();
        let batch: Vec<_> = (0..PER_CONN)
            .map(|i| (NodeId(c * PER_CONN + i + 1), RadioConfig::single(ChannelId(1), 30.0)))
            .collect();
        sessions.extend(mc.attach_many(&batch).expect("bulk attach succeeds"));
        muxes.push(mc);
    }
    assert_eq!(server.connected().len(), (CONNS * PER_CONN) as usize);
    assert_eq!(server.metrics().gauge("poem_reactor_conns"), Some(i64::from(CONNS)));

    let started = Instant::now();
    server.shutdown();
    let took = started.elapsed();
    assert!(took < Duration::from_secs(10), "shutdown of 2k sessions took {took:?}");

    assert!(server.connected().is_empty(), "registry survived shutdown");
    assert_eq!(server.metrics().gauge("poem_reactor_conns"), Some(0));

    // Every client observes the close (Shutdown frame or EOF).
    let deadline = Instant::now() + Duration::from_secs(5);
    for mc in &muxes {
        while !mc.is_closed() {
            assert!(Instant::now() < deadline, "a mux client never saw the shutdown");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
