//! Distributed determinism, end to end: the same scripted multi-channel
//! scenario run single-process and sharded across real `poem-shardd`
//! worker processes must produce **byte-identical** record logs.
//!
//! This is the contract that makes the cluster a drop-in scale-out of the
//! virtual frontend: packet decisions are a pure function of
//! `(seed, packet id)` (`poem_core::rng::decide_rng`), the coordinator
//! settles batches in submission order, and epochs are barriered — so
//! placement (1, 2 or 4 workers, rebalancing, halos) is invisible in the
//! recorded traffic and scene logs.
//!
//! Living in `poem-server/tests/` guarantees cargo builds the
//! `poem-shardd` binary before these run; the coordinator then finds it
//! next to the test executable's target directory.

use bytes::Bytes;
use poem_client::{ClientApp, Nic};
use poem_core::packet::Destination;
use poem_core::scene::SceneOp;
use poem_core::{ChannelId, EmuDuration, EmuPacket, EmuTime, NodeId};
use poem_server::script::Script;
use poem_server::sim::{SimConfig, SimNet};

/// Multi-channel, mobile, op-heavy scenario: two channels, a dual-radio
/// bridge node, scripted mobility, a range shrink, a retune, a removal
/// and a teleport — every cluster code path (halo diffs, op routing,
/// membership changes) gets exercised while traffic flows.
const SCENARIO: &str = r"
    at 0   add VMN1 0 0     radio ch1 220
    at 0   add VMN2 150 0   radio ch1 220 radio ch2 220
    at 0   add VMN3 300 0   radio ch2 220
    at 0   add VMN4 150 150 radio ch1 220
    at 0   add VMN5 0 150   radio ch1 220
    at 0   add VMN6 320 170 radio ch2 220

    at 4   mobility VMN4 linear 180 12
    at 6   range VMN1 radio0 120
    at 10  retune VMN3 radio0 ch1
    at 14  remove VMN5
    at 18  move VMN4 80 40
";

/// Alternating broadcaster/unicaster: exercises fan-out, the unicast
/// no-route path, and cross-shard forwarding.
struct MixedSender {
    channel: ChannelId,
    peer: NodeId,
    remaining: usize,
}

impl ClientApp for MixedSender {
    fn on_start(&mut self, _nic: &mut dyn Nic) -> Option<EmuDuration> {
        Some(EmuDuration::from_millis(700))
    }

    fn on_packet(&mut self, _nic: &mut dyn Nic, _pkt: EmuPacket) {}

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let dst = if self.remaining % 2 == 0 {
            Destination::Broadcast
        } else {
            Destination::Unicast(self.peer)
        };
        nic.send(self.channel, dst, Bytes::from_static(b"cluster-determinism"));
        if self.remaining > 0 {
            Some(EmuDuration::from_millis(700))
        } else {
            None
        }
    }
}

/// Builds the scenario net. `workers == 0` runs single-process.
fn build(seed: u64, workers: u32) -> SimNet {
    let script = Script::parse(SCENARIO).expect("valid scenario");
    let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
    let ids: Vec<NodeId> = script
        .entries()
        .iter()
        .filter_map(|e| match &e.op {
            SceneOp::AddNode { id, .. } if e.at == EmuTime::ZERO => Some(*id),
            _ => None,
        })
        .collect();
    for entry in script.entries() {
        if let (true, SceneOp::AddNode { id, pos, radios, mobility, link }) =
            (entry.at == EmuTime::ZERO, &entry.op)
        {
            let slot = ids.iter().position(|n| n == id).expect("listed");
            let app = MixedSender {
                channel: radios.channels().into_iter().next().expect("has a radio"),
                peer: ids[(slot + 1) % ids.len()],
                remaining: 10,
            };
            net.add_node(*id, *pos, radios.clone(), *mobility, *link, Box::new(app))
                .expect("valid node");
        } else {
            net.schedule_op(entry.at, entry.op.clone());
        }
    }
    if workers > 0 {
        net.attach_cluster(poem_cluster::ClusterConfig {
            workers,
            tile_edge: 260.0,
            ..poem_cluster::ClusterConfig::default()
        })
        .expect("cluster attaches");
    }
    net
}

/// Runs to completion and returns the serialized traffic and scene logs.
fn run_once(seed: u64, workers: u32) -> (Vec<u8>, Vec<u8>) {
    let mut net = build(seed, workers);
    net.run_until(EmuTime::from_secs(25));
    if let Some(e) = net.cluster_error() {
        panic!("{workers}-worker run failed: {e}");
    }
    net.shutdown_cluster();
    let recorder = net.recorder();
    let traffic = poem_proto::to_bytes(&recorder.traffic()).expect("serialize traffic log");
    let scene = poem_proto::to_bytes(&recorder.scene()).expect("serialize scene log");
    (traffic, scene)
}

#[test]
fn two_workers_match_the_single_process_logs_byte_for_byte() {
    let (traffic_one, scene_one) = run_once(42, 0);
    let (traffic_two, scene_two) = run_once(42, 2);
    assert!(!traffic_one.is_empty(), "scenario produced no traffic records");
    assert_eq!(traffic_one, traffic_two, "2-worker traffic log diverged from single-process");
    assert_eq!(scene_one, scene_two, "2-worker scene log diverged from single-process");
}

#[test]
fn four_workers_match_the_single_process_logs_byte_for_byte() {
    let (traffic_one, scene_one) = run_once(7, 0);
    let (traffic_four, scene_four) = run_once(7, 4);
    assert!(!traffic_one.is_empty(), "scenario produced no traffic records");
    assert_eq!(traffic_one, traffic_four, "4-worker traffic log diverged from single-process");
    assert_eq!(scene_one, scene_four, "4-worker scene log diverged from single-process");
}

#[test]
fn killed_worker_surfaces_a_structured_error_instead_of_hanging() {
    let mut net = build(3, 2);
    // Advance far enough that the fleet is live and mid-workload.
    net.run_until(EmuTime::from_secs(2));
    assert!(net.cluster_error().is_none(), "healthy cluster errored early");

    let pid = net.cluster().expect("cluster attached").worker_pids()[0];
    let killed = std::process::Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {pid} failed");
    // Wait until the OS has reaped enough for the death to be observable.
    for _ in 0..200 {
        let alive = std::process::Command::new("kill")
            .args(["-0", &pid.to_string()])
            .status()
            .map(|s| s.success())
            .unwrap_or(false);
        if !alive {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // The run must complete (no hung barrier) and surface a structured
    // error; after the first failure the harness stops mirroring instead
    // of silently forking the log with a local fallback.
    net.run_until(EmuTime::from_secs(25));
    match net.cluster_error() {
        Some(
            poem_cluster::ClusterError::ShardDied { .. }
            | poem_cluster::ClusterError::ShardTimeout { .. }
            | poem_cluster::ClusterError::Io(_),
        ) => {}
        other => panic!("expected a structured shard-death error, got {other:?}"),
    }
}
