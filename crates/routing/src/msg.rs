//! Routing-protocol wire messages.
//!
//! Routing messages travel as the payload of [`poem_core::EmuPacket`]s,
//! encoded with the workspace's binary codec — exactly how a deployed
//! protocol would put its PDUs inside UDP datagrams.

use bytes::Bytes;
use poem_core::{EmuTime, NodeId};
use serde::{Deserialize, Serialize};

/// A routing-protocol PDU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RoutingMsg {
    /// Periodic distance-vector broadcast (the "periodic-broadcasting
    /// mechanism"): the sender's own sequence number and its current
    /// vector.
    TopoBroadcast {
        /// Originating node.
        origin: NodeId,
        /// The origin's own destination sequence number (even, DSDV-style,
        /// monotonically increasing).
        origin_seq: u64,
        /// `(destination, destination-sequence, hops-from-origin)` rows.
        entries: Vec<(NodeId, u64, u32)>,
    },
    /// On-demand route request, flooded toward `target`.
    Rreq {
        /// Node that needs the route.
        origin: NodeId,
        /// Sought destination.
        target: NodeId,
        /// Flood identifier (unique per origin).
        rreq_id: u64,
        /// Hops travelled so far.
        hops: u32,
    },
    /// On-demand route reply, unicast hop-by-hop back to `origin`.
    Rrep {
        /// Node that requested the route.
        origin: NodeId,
        /// Destination the route leads to.
        target: NodeId,
        /// The target's sequence number at reply time.
        target_seq: u64,
        /// Hops from the replying point to `target` (grows on the way
        /// back).
        hops: u32,
    },
    /// Network-layer data, forwarded hop-by-hop.
    Data {
        /// Original sender.
        origin: NodeId,
        /// Final destination.
        final_dst: NodeId,
        /// Origin-assigned sequence number (for end-to-end loss
        /// accounting).
        seq: u64,
        /// Remaining hop budget; decremented per hop, dropped at zero.
        ttl: u8,
        /// Origin timestamp (end-to-end delay measurement).
        sent_at: EmuTime,
        /// Application payload.
        #[serde(with = "serde_bytes_compat")]
        payload: Vec<u8>,
    },
}

/// Plain `Vec<u8>` serde passthrough (named module keeps the derive
/// readable; the codec already encodes byte vectors compactly).
mod serde_bytes_compat {
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8], s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(v)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<u8>, D::Error> {
        struct V;
        impl<'de> serde::de::Visitor<'de> for V {
            type Value = Vec<u8>;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("bytes")
            }
            fn visit_bytes<E: serde::de::Error>(self, b: &[u8]) -> Result<Vec<u8>, E> {
                Ok(b.to_vec())
            }
            fn visit_borrowed_bytes<E: serde::de::Error>(self, b: &'de [u8]) -> Result<Vec<u8>, E> {
                Ok(b.to_vec())
            }
        }
        d.deserialize_bytes(V)
    }
}

impl RoutingMsg {
    /// Encodes the PDU into a packet payload.
    pub fn encode(&self) -> Bytes {
        Bytes::from(poem_proto::to_bytes(self).expect("routing messages always encode"))
    }

    /// Decodes a PDU from a packet payload; `None` for foreign traffic.
    pub fn decode(payload: &[u8]) -> Option<RoutingMsg> {
        poem_proto::from_bytes(payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_roundtrip() {
        let msgs = vec![
            RoutingMsg::TopoBroadcast {
                origin: NodeId(1),
                origin_seq: 42,
                entries: vec![(NodeId(2), 10, 1), (NodeId(3), 8, 2)],
            },
            RoutingMsg::Rreq { origin: NodeId(1), target: NodeId(9), rreq_id: 7, hops: 3 },
            RoutingMsg::Rrep { origin: NodeId(1), target: NodeId(9), target_seq: 12, hops: 2 },
            RoutingMsg::Data {
                origin: NodeId(1),
                final_dst: NodeId(3),
                seq: 99,
                ttl: 16,
                sent_at: EmuTime::from_millis(5),
                payload: vec![1, 2, 3, 4],
            },
        ];
        for m in msgs {
            let bytes = m.encode();
            assert_eq!(RoutingMsg::decode(&bytes), Some(m));
        }
    }

    #[test]
    fn foreign_payload_decodes_to_none() {
        assert_eq!(RoutingMsg::decode(b"not a routing message"), None);
        assert_eq!(RoutingMsg::decode(&[]), None);
    }

    #[test]
    fn empty_vector_broadcast() {
        let m = RoutingMsg::TopoBroadcast { origin: NodeId(5), origin_seq: 0, entries: vec![] };
        assert_eq!(RoutingMsg::decode(&m.encode()), Some(m));
    }
}
