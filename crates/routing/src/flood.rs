//! Epidemic flooding — a second, deliberately simple "real protocol" for
//! the emulator to host.
//!
//! [`Flooder`] disseminates application payloads by controlled flooding:
//! every node rebroadcasts each payload once (duplicate-suppressed by
//! `(origin, seq)`, hop-limited). It is the classic robustness baseline
//! the hybrid protocol is meant to beat on overhead, and having a second
//! independent protocol over the same [`Nic`] demonstrates the emulator's
//! "test real implementations without modification" claim is not
//! router-shaped by accident.

use bytes::Bytes;
use parking_lot::Mutex;
use poem_client::nic::Nic;
use poem_client::ClientApp;
use poem_core::packet::Destination;
use poem_core::{ChannelId, EmuDuration, EmuPacket, EmuTime, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A flooded payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FloodMsg {
    origin: NodeId,
    seq: u64,
    ttl: u8,
    sent_at: EmuTime,
    payload: Vec<u8>,
}

impl FloodMsg {
    fn encode(&self) -> Bytes {
        Bytes::from(poem_proto::to_bytes(self).expect("flood messages encode"))
    }

    fn decode(bytes: &[u8]) -> Option<FloodMsg> {
        poem_proto::from_bytes(bytes).ok()
    }
}

/// A delivery observed by a flooder.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodDelivery {
    /// Original sender.
    pub origin: NodeId,
    /// Origin sequence number.
    pub seq: u64,
    /// Origin send time.
    pub sent_at: EmuTime,
    /// Local first-copy delivery time.
    pub delivered_at: EmuTime,
    /// The payload.
    pub payload: Vec<u8>,
}

/// Flooding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FloodStats {
    /// Payloads originated here.
    pub originated: u64,
    /// First copies delivered here.
    pub delivered: u64,
    /// Rebroadcasts transmitted.
    pub rebroadcasts: u64,
    /// Duplicate copies suppressed.
    pub duplicates: u64,
}

/// The flooding app.
pub struct Flooder {
    ttl: u8,
    next_seq: u64,
    seen: BTreeSet<(NodeId, u64)>,
    delivered: Arc<Mutex<Vec<FloodDelivery>>>,
    stats: Arc<Mutex<FloodStats>>,
    /// External origination queue, like [`crate::RouterHandles::tx`] but
    /// payload-only (flooding has no destination).
    tx: Arc<Mutex<Vec<Vec<u8>>>>,
}

/// Shared inspection handles of a [`Flooder`].
#[derive(Debug, Clone)]
pub struct FlooderHandles {
    /// First-copy deliveries at this node.
    pub delivered: Arc<Mutex<Vec<FloodDelivery>>>,
    /// Counters.
    pub stats: Arc<Mutex<FloodStats>>,
    /// Payloads queued here are flooded on the next tick.
    pub tx: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl Flooder {
    /// A flooder with the given hop budget.
    pub fn new(ttl: u8) -> Self {
        Flooder {
            ttl,
            next_seq: 0,
            seen: BTreeSet::new(),
            delivered: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(FloodStats::default())),
            tx: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The inspection handles.
    pub fn handles(&self) -> FlooderHandles {
        FlooderHandles {
            delivered: Arc::clone(&self.delivered),
            stats: Arc::clone(&self.stats),
            tx: Arc::clone(&self.tx),
        }
    }

    /// Originates a payload right now.
    pub fn originate(&mut self, nic: &mut dyn Nic, payload: Vec<u8>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen.insert((nic.node(), seq));
        self.stats.lock().originated += 1;
        let msg = FloodMsg { origin: nic.node(), seq, ttl: self.ttl, sent_at: nic.now(), payload };
        self.broadcast_all(nic, &msg);
        seq
    }

    fn broadcast_all(&self, nic: &mut dyn Nic, msg: &FloodMsg) {
        let channels: Vec<ChannelId> = nic.radios().channels().into_iter().collect();
        let bytes = msg.encode();
        for ch in channels {
            nic.send(ch, Destination::Broadcast, bytes.clone());
        }
    }
}

impl ClientApp for Flooder {
    fn on_start(&mut self, _nic: &mut dyn Nic) -> Option<EmuDuration> {
        Some(EmuDuration::from_millis(100))
    }

    fn on_packet(&mut self, nic: &mut dyn Nic, pkt: EmuPacket) {
        let Some(msg) = FloodMsg::decode(&pkt.payload) else { return };
        if !self.seen.insert((msg.origin, msg.seq)) {
            self.stats.lock().duplicates += 1;
            return;
        }
        self.stats.lock().delivered += 1;
        self.delivered.lock().push(FloodDelivery {
            origin: msg.origin,
            seq: msg.seq,
            sent_at: msg.sent_at,
            delivered_at: nic.now(),
            payload: msg.payload.clone(),
        });
        if msg.ttl > 0 {
            let fwd = FloodMsg { ttl: msg.ttl - 1, ..msg };
            self.broadcast_all(nic, &fwd);
            self.stats.lock().rebroadcasts += 1;
        }
    }

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        let queued: Vec<Vec<u8>> = self.tx.lock().drain(..).collect();
        for payload in queued {
            self.originate(nic, payload);
        }
        Some(EmuDuration::from_millis(100))
    }
}

impl std::fmt::Debug for Flooder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flooder")
            .field("ttl", &self.ttl)
            .field("seen", &self.seen.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_client::nic::QueueNic;
    use poem_core::radio::RadioConfig;
    use poem_core::{PacketId, RadioId};

    fn nic(id: u32, chans: &[u16]) -> QueueNic {
        let channels: Vec<ChannelId> = chans.iter().map(|&c| ChannelId(c)).collect();
        QueueNic::new(NodeId(id), RadioConfig::multi(&channels, 200.0))
    }

    fn wrap(src: u32, ch: u16, payload: Bytes) -> EmuPacket {
        EmuPacket::new(
            PacketId(999),
            NodeId(src),
            Destination::Broadcast,
            ChannelId(ch),
            RadioId(0),
            EmuTime::from_millis(1),
            payload,
        )
    }

    #[test]
    fn originate_broadcasts_on_every_radio() {
        let mut f = Flooder::new(8);
        let mut n = nic(1, &[1, 2]);
        let seq = f.originate(&mut n, b"flood".to_vec());
        assert_eq!(seq, 0);
        let out = n.drain_outbound();
        assert_eq!(out.len(), 2);
        assert_eq!(f.handles().stats.lock().originated, 1);
    }

    #[test]
    fn first_copy_delivers_and_rebroadcasts() {
        let mut f = Flooder::new(8);
        let mut n = nic(2, &[1]);
        let msg = FloodMsg {
            origin: NodeId(1),
            seq: 0,
            ttl: 3,
            sent_at: EmuTime::ZERO,
            payload: b"x".to_vec(),
        };
        f.on_packet(&mut n, wrap(1, 1, msg.encode()));
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1, "rebroadcast once");
        // TTL decremented on the relayed copy.
        let relayed = FloodMsg::decode(&out[0].payload).unwrap();
        assert_eq!(relayed.ttl, 2);
        let h = f.handles();
        assert_eq!(h.delivered.lock().len(), 1);
        assert_eq!(h.stats.lock().rebroadcasts, 1);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut f = Flooder::new(8);
        let mut n = nic(2, &[1]);
        let msg =
            FloodMsg { origin: NodeId(1), seq: 7, ttl: 3, sent_at: EmuTime::ZERO, payload: vec![] };
        f.on_packet(&mut n, wrap(1, 1, msg.encode()));
        n.drain_outbound();
        f.on_packet(&mut n, wrap(3, 1, msg.encode())); // same flood via another path
        assert!(n.drain_outbound().is_empty(), "no second rebroadcast");
        let h = f.handles();
        assert_eq!(h.delivered.lock().len(), 1);
        assert_eq!(h.stats.lock().duplicates, 1);
    }

    #[test]
    fn zero_ttl_copies_deliver_but_stop() {
        let mut f = Flooder::new(0);
        let mut n = nic(2, &[1]);
        let msg =
            FloodMsg { origin: NodeId(1), seq: 0, ttl: 0, sent_at: EmuTime::ZERO, payload: vec![] };
        f.on_packet(&mut n, wrap(1, 1, msg.encode()));
        assert!(n.drain_outbound().is_empty());
        assert_eq!(f.handles().delivered.lock().len(), 1);
    }

    #[test]
    fn foreign_traffic_is_ignored() {
        let mut f = Flooder::new(8);
        let mut n = nic(2, &[1]);
        f.on_packet(&mut n, wrap(1, 1, Bytes::from_static(b"not a flood message")));
        assert!(n.drain_outbound().is_empty());
        assert!(f.handles().delivered.lock().is_empty());
    }

    #[test]
    fn queued_tx_floods_on_tick() {
        let mut f = Flooder::new(4);
        let mut n = nic(1, &[1]);
        f.handles().tx.lock().push(b"queued".to_vec());
        f.on_tick(&mut n);
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1);
        let msg = FloodMsg::decode(&out[0].payload).unwrap();
        assert_eq!(msg.payload, b"queued");
    }
}
