//! The routing table — the object Table 2 inspects.
//!
//! Channel-aware: a route's next hop is a `(node, channel)` pair, because
//! in a multi-radio MANET the same neighbor may be reachable on several
//! channels with different qualities, and a relay forwards across
//! channels. Entries carry DSDV-style destination sequence numbers and a
//! last-refresh time for expiry.
//!
//! [`RoutingTable::render`] prints the table in the paper's Table-2
//! format:
//!
//! ```text
//! # of Routing Entries: 2
//! 2 --> 2 1
//! 3 --> 2 2
//! ```
//!
//! (destination `-->` next hop, hop count).

use poem_core::{ChannelId, EmuTime, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Where to forward next for some destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NextHop {
    /// Neighbor to hand the packet to.
    pub node: NodeId,
    /// Channel on which that neighbor is reached.
    pub channel: ChannelId,
}

/// One routing-table row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// Next hop toward the destination.
    pub next_hop: NextHop,
    /// Distance in hops.
    pub hops: u32,
    /// Destination sequence number (freshness; higher wins).
    pub seq: u64,
    /// When the entry was installed or refreshed.
    pub refreshed_at: EmuTime,
}

/// A node's routing table.
///
/// ```
/// use poem_routing::{NextHop, RouteEntry, RoutingTable};
/// use poem_core::{ChannelId, EmuTime, NodeId};
/// let mut t = RoutingTable::new();
/// t.offer(NodeId(3), RouteEntry {
///     next_hop: NextHop { node: NodeId(2), channel: ChannelId(1) },
///     hops: 2,
///     seq: 10,
///     refreshed_at: EmuTime::ZERO,
/// });
/// assert_eq!(t.render(), "# of Routing Entries: 1\n3 --> 2 2\n");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RoutingTable {
    routes: BTreeMap<NodeId, RouteEntry>,
}

impl RoutingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are known.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The route to `dst`, if known.
    pub fn route(&self, dst: NodeId) -> Option<&RouteEntry> {
        self.routes.get(&dst)
    }

    /// All `(destination, entry)` rows, ascending by destination.
    pub fn entries(&self) -> impl Iterator<Item = (NodeId, &RouteEntry)> {
        self.routes.iter().map(|(&d, e)| (d, e))
    }

    /// Installs `entry` for `dst` if it is *better*: fresher sequence, or
    /// same sequence with fewer hops. Returns whether the table changed.
    pub fn offer(&mut self, dst: NodeId, entry: RouteEntry) -> bool {
        match self.routes.get_mut(&dst) {
            Some(cur) => {
                let better = entry.seq > cur.seq || (entry.seq == cur.seq && entry.hops < cur.hops);
                let refresh = entry.seq == cur.seq
                    && entry.hops == cur.hops
                    && entry.next_hop == cur.next_hop;
                if better {
                    *cur = entry;
                    true
                } else if refresh {
                    cur.refreshed_at = entry.refreshed_at;
                    false
                } else {
                    false
                }
            }
            None => {
                self.routes.insert(dst, entry);
                true
            }
        }
    }

    /// Unconditionally installs `entry` (used by on-demand replies, which
    /// carry their own freshness guarantee).
    pub fn install(&mut self, dst: NodeId, entry: RouteEntry) {
        self.routes.insert(dst, entry);
    }

    /// Removes the route to `dst`.
    pub fn remove(&mut self, dst: NodeId) -> Option<RouteEntry> {
        self.routes.remove(&dst)
    }

    /// Drops every entry whose last refresh is older than `ttl` before
    /// `now`, and every route through a next hop in `broken`. Returns the
    /// purged destinations.
    pub fn purge(
        &mut self,
        now: EmuTime,
        ttl: poem_core::EmuDuration,
        broken: &[NodeId],
    ) -> Vec<NodeId> {
        let dead: Vec<NodeId> = self
            .routes
            .iter()
            .filter(|(_, e)| (now - e.refreshed_at) > ttl || broken.contains(&e.next_hop.node))
            .map(|(&d, _)| d)
            .collect();
        for d in &dead {
            self.routes.remove(d);
        }
        dead
    }

    /// Exports the table as DSDV broadcast rows: `(dest, seq, hops)`.
    pub fn export(&self) -> Vec<(NodeId, u64, u32)> {
        self.entries().map(|(d, e)| (d, e.seq, e.hops)).collect()
    }

    /// Renders in the Table-2 format.
    pub fn render(&self) -> String {
        let mut out = format!("# of Routing Entries: {}\n", self.len());
        for (dst, e) in self.entries() {
            out.push_str(&format!("{} --> {} {}\n", dst.0, e.next_hop.node.0, e.hops));
        }
        out
    }
}

impl fmt::Display for RoutingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::EmuDuration;

    fn entry(via: u32, ch: u16, hops: u32, seq: u64, at: u64) -> RouteEntry {
        RouteEntry {
            next_hop: NextHop { node: NodeId(via), channel: ChannelId(ch) },
            hops,
            seq,
            refreshed_at: EmuTime::from_secs(at),
        }
    }

    #[test]
    fn offer_prefers_fresher_sequence() {
        let mut t = RoutingTable::new();
        assert!(t.offer(NodeId(3), entry(2, 1, 2, 10, 0)));
        // Older sequence, better hops: rejected.
        assert!(!t.offer(NodeId(3), entry(9, 1, 1, 8, 1)));
        assert_eq!(t.route(NodeId(3)).unwrap().next_hop.node, NodeId(2));
        // Fresher sequence, worse hops: accepted.
        assert!(t.offer(NodeId(3), entry(9, 1, 5, 12, 2)));
        assert_eq!(t.route(NodeId(3)).unwrap().hops, 5);
    }

    #[test]
    fn offer_prefers_fewer_hops_at_equal_sequence() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(3), entry(2, 1, 3, 10, 0));
        assert!(t.offer(NodeId(3), entry(4, 2, 1, 10, 1)));
        let e = t.route(NodeId(3)).unwrap();
        assert_eq!(e.next_hop, NextHop { node: NodeId(4), channel: ChannelId(2) });
        // Equal seq, equal hops, same next hop: refresh only.
        assert!(!t.offer(NodeId(3), entry(4, 2, 1, 10, 5)));
        assert_eq!(t.route(NodeId(3)).unwrap().refreshed_at, EmuTime::from_secs(5));
    }

    #[test]
    fn purge_expires_stale_routes() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(2), entry(2, 1, 1, 10, 0));
        t.offer(NodeId(3), entry(2, 1, 2, 10, 8));
        let dead = t.purge(EmuTime::from_secs(10), EmuDuration::from_secs(5), &[]);
        assert_eq!(dead, vec![NodeId(2)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn purge_drops_routes_through_broken_neighbor() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(2), entry(2, 1, 1, 10, 9));
        t.offer(NodeId(3), entry(2, 1, 2, 10, 9));
        t.offer(NodeId(4), entry(5, 1, 2, 10, 9));
        let mut dead = t.purge(EmuTime::from_secs(10), EmuDuration::from_secs(100), &[NodeId(2)]);
        dead.sort_unstable();
        assert_eq!(dead, vec![NodeId(2), NodeId(3)]);
        assert!(t.route(NodeId(4)).is_some());
    }

    #[test]
    fn render_matches_table2_format() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(2), entry(2, 1, 1, 10, 0));
        t.offer(NodeId(3), entry(2, 1, 2, 10, 0));
        let s = t.render();
        assert_eq!(s, "# of Routing Entries: 2\n2 --> 2 1\n3 --> 2 2\n");
        let empty = RoutingTable::new();
        assert_eq!(empty.render(), "# of Routing Entries: 0\n");
    }

    #[test]
    fn export_roundtrips_rows() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(2), entry(2, 1, 1, 4, 0));
        t.offer(NodeId(7), entry(2, 1, 3, 6, 0));
        assert_eq!(t.export(), vec![(NodeId(2), 4, 1), (NodeId(7), 6, 3)]);
    }

    #[test]
    fn install_overrides_unconditionally() {
        let mut t = RoutingTable::new();
        t.offer(NodeId(3), entry(2, 1, 1, 100, 0));
        t.install(NodeId(3), entry(9, 2, 7, 1, 1));
        assert_eq!(t.route(NodeId(3)).unwrap().next_hop.node, NodeId(9));
    }
}
