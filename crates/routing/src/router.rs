//! The channel-aware distance-vector routing engine.
//!
//! One engine, two switchable mechanisms (§6.1's hybrid protocol):
//!
//! * **Periodic broadcasting** — every interval the node floods a
//!   [`RoutingMsg::TopoBroadcast`] on *each of its radios* carrying its
//!   DSDV-style distance vector and the list of neighbors it has recently
//!   heard **on that channel**. A receiver only accepts the sender as a
//!   next hop when it finds *itself* in that heard list — a two-way
//!   link-validation handshake that correctly rejects the asymmetric link
//!   Table 2's step 2 creates (VMN1's range is shrunk so it can still
//!   *hear* VMN3 but not reach it).
//! * **On-demand discovery** — data for an unknown destination is
//!   buffered; a [`RoutingMsg::Rreq`] floods the network (duplicate-
//!   suppressed), the target (or any node with a route) answers with a
//!   [`RoutingMsg::Rrep`] that travels back along the reverse path,
//!   installing the forward route.
//!
//! Data packets ([`RoutingMsg::Data`]) are forwarded hop-by-hop with a TTL
//! budget; each hop picks the stored `(next hop, channel)` pair, which is
//! how a dual-radio relay moves a packet from channel 1 to channel 2
//! (Fig. 9).

use crate::msg::RoutingMsg;
use crate::table::{NextHop, RouteEntry, RoutingTable};
use bytes::Bytes;
use parking_lot::Mutex;
use poem_client::nic::Nic;
use poem_client::ClientApp;
use poem_core::packet::Destination;
use poem_core::{ChannelId, EmuDuration, EmuPacket, EmuTime, NodeId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Enable the periodic-broadcasting mechanism.
    pub proactive: bool,
    /// Enable the on-demand mechanism.
    pub reactive: bool,
    /// Interval between periodic broadcasts (also the housekeeping tick).
    pub broadcast_interval: EmuDuration,
    /// Routes and heard-neighbor records expire after this long without
    /// refresh.
    pub route_ttl: EmuDuration,
    /// Hop budget for data packets.
    pub data_ttl: u8,
    /// Hop cap for route-request floods.
    pub rreq_ttl: u32,
    /// Maximum buffered data packets per unresolved destination.
    pub buffer_cap: usize,
}

impl RouterConfig {
    /// The paper's hybrid protocol: both mechanisms on.
    pub fn hybrid() -> Self {
        RouterConfig {
            proactive: true,
            reactive: true,
            broadcast_interval: EmuDuration::from_secs(1),
            route_ttl: EmuDuration::from_millis(3_500),
            data_ttl: 16,
            rreq_ttl: 16,
            buffer_cap: 64,
        }
    }

    /// DSDV-like baseline: periodic broadcasting only.
    pub fn proactive_only() -> Self {
        RouterConfig { reactive: false, ..Self::hybrid() }
    }

    /// AODV-like baseline: on-demand only.
    pub fn reactive_only() -> Self {
        RouterConfig { proactive: false, ..Self::hybrid() }
    }
}

/// A data payload delivered end-to-end to this node.
#[derive(Debug, Clone, PartialEq)]
pub struct Received {
    /// Original sender.
    pub origin: NodeId,
    /// Origin-assigned sequence number.
    pub seq: u64,
    /// Origin send time.
    pub sent_at: EmuTime,
    /// Local delivery time.
    pub delivered_at: EmuTime,
    /// The payload.
    pub payload: Vec<u8>,
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Data packets originated here.
    pub data_sent: u64,
    /// Data packets delivered here as final destination.
    pub data_delivered: u64,
    /// Data packets relayed through this node.
    pub data_forwarded: u64,
    /// Data dropped: no route and no (successful) discovery.
    pub drops_no_route: u64,
    /// Data dropped: hop budget exhausted.
    pub drops_ttl: u64,
    /// Periodic broadcasts transmitted (per radio).
    pub broadcasts_sent: u64,
    /// Route requests originated or relayed.
    pub rreq_sent: u64,
    /// Route replies originated or relayed.
    pub rrep_sent: u64,
}

/// External send queue shared between a [`Router`] and its driver:
/// `(destination, payload)` pairs pushed here are originated on the
/// router's next tick.
pub type SendQueue = Arc<Mutex<VecDeque<(NodeId, Vec<u8>)>>>;

/// Shared inspection handles — the emulator-side "double-click the VMN"
/// view of live protocol state (Table 2 inspects the routing table of
/// VMN1 in real time).
#[derive(Debug, Clone)]
pub struct RouterHandles {
    /// Live routing table.
    pub table: Arc<Mutex<RoutingTable>>,
    /// Data delivered to this node.
    pub received: Arc<Mutex<Vec<Received>>>,
    /// Live counters.
    pub stats: Arc<Mutex<RouterStats>>,
    /// External send queue: `(destination, payload)` pairs pushed here are
    /// originated on the router's next tick. This is how a test bench or
    /// management console injects traffic into a router running behind an
    /// [`poem_client::AppRunner`] on its own thread.
    pub tx: SendQueue,
}

/// The routing engine; one instance per hosted node.
pub struct Router {
    cfg: RouterConfig,
    table: Arc<Mutex<RoutingTable>>,
    received: Arc<Mutex<Vec<Received>>>,
    stats: Arc<Mutex<RouterStats>>,
    /// Own DSDV sequence number (incremented by 2 per broadcast).
    own_seq: u64,
    next_data_seq: u64,
    next_rreq_id: u64,
    /// `(origin, rreq_id)` floods already processed.
    seen_rreq: BTreeSet<(NodeId, u64)>,
    /// Last time each `(node, channel)` was heard (any PDU).
    heard: BTreeMap<(NodeId, ChannelId), EmuTime>,
    /// Buffered data awaiting a route, per destination.
    pending: BTreeMap<NodeId, VecDeque<(u64, EmuTime, Vec<u8>)>>,
    /// External send queue (see [`RouterHandles::tx`]).
    tx: SendQueue,
    /// Destinations with an outstanding route request.
    discovering: BTreeSet<NodeId>,
}

impl Router {
    /// Builds an engine.
    pub fn new(cfg: RouterConfig) -> Self {
        Router {
            cfg,
            table: Arc::new(Mutex::new(RoutingTable::new())),
            received: Arc::new(Mutex::new(Vec::new())),
            stats: Arc::new(Mutex::new(RouterStats::default())),
            own_seq: 0,
            next_data_seq: 0,
            next_rreq_id: 0,
            seen_rreq: BTreeSet::new(),
            heard: BTreeMap::new(),
            pending: BTreeMap::new(),
            tx: Arc::new(Mutex::new(VecDeque::new())),
            discovering: BTreeSet::new(),
        }
    }

    /// The inspection handles (clone freely; they stay live).
    pub fn handles(&self) -> RouterHandles {
        RouterHandles {
            table: Arc::clone(&self.table),
            received: Arc::clone(&self.received),
            stats: Arc::clone(&self.stats),
            tx: Arc::clone(&self.tx),
        }
    }

    /// Originates an application payload toward `dst`. Returns the data
    /// sequence number.
    pub fn send_data(&mut self, nic: &mut dyn Nic, dst: NodeId, payload: Vec<u8>) -> u64 {
        let seq = self.next_data_seq;
        self.next_data_seq += 1;
        self.stats.lock().data_sent += 1;
        let now = nic.now();
        if dst == nic.node() {
            // Loopback.
            self.stats.lock().data_delivered += 1;
            self.received.lock().push(Received {
                origin: dst,
                seq,
                sent_at: now,
                delivered_at: now,
                payload,
            });
            return seq;
        }
        let msg = RoutingMsg::Data {
            origin: nic.node(),
            final_dst: dst,
            seq,
            ttl: self.cfg.data_ttl,
            sent_at: now,
            payload,
        };
        self.route_or_buffer(nic, dst, msg);
        seq
    }

    /// Sends `msg` toward `dst` via the table, or buffers it (and starts
    /// discovery when reactive).
    fn route_or_buffer(&mut self, nic: &mut dyn Nic, dst: NodeId, msg: RoutingMsg) {
        let next = self.table.lock().route(dst).map(|e| e.next_hop);
        match next {
            Some(hop) => {
                nic.send(hop.channel, Destination::Unicast(hop.node), msg.encode());
            }
            None => {
                let RoutingMsg::Data { seq, sent_at, payload, .. } = msg else {
                    return;
                };
                let q = self.pending.entry(dst).or_default();
                if q.len() >= self.cfg.buffer_cap {
                    q.pop_front();
                    self.stats.lock().drops_no_route += 1;
                }
                q.push_back((seq, sent_at, payload));
                if self.cfg.reactive {
                    self.start_discovery(nic, dst);
                } else if !self.cfg.proactive {
                    // Neither mechanism can ever resolve this.
                    self.stats.lock().drops_no_route += 1;
                }
            }
        }
    }

    fn start_discovery(&mut self, nic: &mut dyn Nic, target: NodeId) {
        if !self.discovering.insert(target) {
            return; // one outstanding request per target
        }
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.seen_rreq.insert((nic.node(), rreq_id));
        let msg = RoutingMsg::Rreq { origin: nic.node(), target, rreq_id, hops: 0 };
        self.broadcast_all(nic, &msg);
        self.stats.lock().rreq_sent += 1;
    }

    /// Broadcasts a PDU on every radio.
    fn broadcast_all(&mut self, nic: &mut dyn Nic, msg: &RoutingMsg) {
        let channels: Vec<ChannelId> = nic.radios().channels().into_iter().collect();
        let payload = msg.encode();
        for ch in channels {
            nic.send(ch, Destination::Broadcast, payload.clone());
        }
    }

    /// Periodic broadcast: per radio, the distance vector plus the heard
    /// list for that channel.
    fn broadcast_vector(&mut self, nic: &mut dyn Nic) {
        self.own_seq += 2;
        let now = nic.now();
        let me = nic.node();
        let entries = self.table.lock().export();
        let channels: Vec<ChannelId> = nic.radios().channels().into_iter().collect();
        for ch in channels {
            let heard: Vec<NodeId> = self
                .heard
                .iter()
                .filter(|(&(n, c), &t)| c == ch && n != me && (now - t) <= self.cfg.route_ttl)
                .map(|(&(n, _), _)| n)
                .collect();
            let mut rows = entries.clone();
            // The origin's own row travels implicitly as (origin, seq, 0).
            rows.retain(|(d, _, _)| *d != me);
            let msg =
                RoutingMsg::TopoBroadcast { origin: me, origin_seq: self.own_seq, entries: rows };
            // Heard list rides in front of the vector: encode as a wrapper.
            let framed = HeardFrame { heard, msg };
            nic.send(ch, Destination::Broadcast, framed.encode());
            self.stats.lock().broadcasts_sent += 1;
        }
    }

    /// Flushes buffered data for destinations that just became routable.
    fn flush_pending(&mut self, nic: &mut dyn Nic) {
        let routable: Vec<NodeId> = self
            .pending
            .keys()
            .copied()
            .filter(|d| self.table.lock().route(*d).is_some())
            .collect();
        for dst in routable {
            self.discovering.remove(&dst);
            let Some(q) = self.pending.remove(&dst) else { continue };
            for (seq, sent_at, payload) in q {
                let msg = RoutingMsg::Data {
                    origin: nic.node(),
                    final_dst: dst,
                    seq,
                    ttl: self.cfg.data_ttl,
                    sent_at,
                    payload,
                };
                let next = self.table.lock().route(dst).map(|e| e.next_hop);
                if let Some(hop) = next {
                    nic.send(hop.channel, Destination::Unicast(hop.node), msg.encode());
                }
            }
        }
    }

    fn handle_broadcast_frame(&mut self, nic: &mut dyn Nic, pkt: &EmuPacket, frame: HeardFrame) {
        let me = nic.node();
        let now = nic.now();
        let RoutingMsg::TopoBroadcast { origin, origin_seq, entries } = frame.msg else {
            return;
        };
        if origin == me {
            return;
        }
        // I hear `origin` on this channel, regardless of validity.
        self.heard.insert((origin, pkt.channel), now);
        // Two-way validation: only a neighbor that hears me back is a
        // usable next hop.
        if !frame.heard.contains(&me) {
            return;
        }
        let hop = NextHop { node: origin, channel: pkt.channel };
        let mut table = self.table.lock();
        table.offer(
            origin,
            RouteEntry { next_hop: hop, hops: 1, seq: origin_seq, refreshed_at: now },
        );
        for (dst, seq, hops) in entries {
            if dst == me {
                continue;
            }
            table.offer(
                dst,
                RouteEntry { next_hop: hop, hops: hops.saturating_add(1), seq, refreshed_at: now },
            );
        }
        drop(table);
        self.flush_pending(nic);
    }

    fn handle_rreq(
        &mut self,
        nic: &mut dyn Nic,
        pkt: &EmuPacket,
        origin: NodeId,
        target: NodeId,
        rreq_id: u64,
        hops: u32,
    ) {
        let me = nic.node();
        if origin == me || !self.seen_rreq.insert((origin, rreq_id)) {
            return;
        }
        self.heard.insert((pkt.src, pkt.channel), nic.now());
        // Reverse route to the origin through the previous hop.
        let reverse = RouteEntry {
            next_hop: NextHop { node: pkt.src, channel: pkt.channel },
            hops: hops.saturating_add(1),
            seq: 0,
            refreshed_at: nic.now(),
        };
        if self.table.lock().route(origin).is_none() {
            self.table.lock().install(origin, reverse);
        }
        if target == me {
            let reply = RoutingMsg::Rrep { origin, target, target_seq: self.own_seq, hops: 0 };
            nic.send(pkt.channel, Destination::Unicast(pkt.src), reply.encode());
            self.stats.lock().rrep_sent += 1;
            return;
        }
        let known = self.table.lock().route(target).map(|e| (e.seq, e.hops));
        if let Some((seq, h)) = known {
            let reply = RoutingMsg::Rrep { origin, target, target_seq: seq, hops: h };
            nic.send(pkt.channel, Destination::Unicast(pkt.src), reply.encode());
            self.stats.lock().rrep_sent += 1;
            return;
        }
        if hops < self.cfg.rreq_ttl {
            let fwd = RoutingMsg::Rreq { origin, target, rreq_id, hops: hops + 1 };
            self.broadcast_all(nic, &fwd);
            self.stats.lock().rreq_sent += 1;
        }
    }

    fn handle_rrep(
        &mut self,
        nic: &mut dyn Nic,
        pkt: &EmuPacket,
        origin: NodeId,
        target: NodeId,
        target_seq: u64,
        hops: u32,
    ) {
        let me = nic.node();
        self.heard.insert((pkt.src, pkt.channel), nic.now());
        // Forward route to the target through the previous hop.
        self.table.lock().install(
            target,
            RouteEntry {
                next_hop: NextHop { node: pkt.src, channel: pkt.channel },
                hops: hops.saturating_add(1),
                seq: target_seq,
                refreshed_at: nic.now(),
            },
        );
        if origin == me {
            self.flush_pending(nic);
            return;
        }
        // Relay the reply along the reverse path.
        let back = self.table.lock().route(origin).map(|e| e.next_hop);
        if let Some(hop) = back {
            let fwd = RoutingMsg::Rrep { origin, target, target_seq, hops: hops + 1 };
            nic.send(hop.channel, Destination::Unicast(hop.node), fwd.encode());
            self.stats.lock().rrep_sent += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_data(
        &mut self,
        nic: &mut dyn Nic,
        origin: NodeId,
        final_dst: NodeId,
        seq: u64,
        ttl: u8,
        sent_at: EmuTime,
        payload: Vec<u8>,
    ) {
        let me = nic.node();
        if final_dst == me {
            self.stats.lock().data_delivered += 1;
            self.received.lock().push(Received {
                origin,
                seq,
                sent_at,
                delivered_at: nic.now(),
                payload,
            });
            return;
        }
        if ttl == 0 {
            self.stats.lock().drops_ttl += 1;
            return;
        }
        self.stats.lock().data_forwarded += 1;
        let msg = RoutingMsg::Data { origin, final_dst, seq, ttl: ttl - 1, sent_at, payload };
        self.route_or_buffer(nic, final_dst, msg);
    }
}

/// Wrapper putting the per-channel heard list next to the broadcast PDU.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct HeardFrame {
    heard: Vec<NodeId>,
    msg: RoutingMsg,
}

impl HeardFrame {
    fn encode(&self) -> Bytes {
        Bytes::from(poem_proto::to_bytes(self).expect("heard frames always encode"))
    }

    fn decode(payload: &[u8]) -> Option<HeardFrame> {
        poem_proto::from_bytes(payload).ok()
    }
}

impl ClientApp for Router {
    fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        if self.cfg.proactive {
            self.broadcast_vector(nic);
        }
        Some(self.cfg.broadcast_interval)
    }

    fn on_packet(&mut self, nic: &mut dyn Nic, pkt: EmuPacket) {
        self.heard.insert((pkt.src, pkt.channel), nic.now());
        if let Some(frame) = HeardFrame::decode(&pkt.payload) {
            self.handle_broadcast_frame(nic, &pkt, frame);
            return;
        }
        match RoutingMsg::decode(&pkt.payload) {
            Some(RoutingMsg::Rreq { origin, target, rreq_id, hops }) => {
                self.handle_rreq(nic, &pkt, origin, target, rreq_id, hops)
            }
            Some(RoutingMsg::Rrep { origin, target, target_seq, hops }) => {
                self.handle_rrep(nic, &pkt, origin, target, target_seq, hops)
            }
            Some(RoutingMsg::Data { origin, final_dst, seq, ttl, sent_at, payload }) => {
                self.handle_data(nic, origin, final_dst, seq, ttl, sent_at, payload)
            }
            Some(RoutingMsg::TopoBroadcast { .. }) | None => {}
        }
    }

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        let now = nic.now();
        // Originate externally queued payloads first.
        let queued: Vec<(NodeId, Vec<u8>)> = self.tx.lock().drain(..).collect();
        for (dst, payload) in queued {
            self.send_data(nic, dst, payload);
        }
        // Expire stale heard records, then routes.
        let ttl = self.cfg.route_ttl;
        self.heard.retain(|_, &mut t| (now - t) <= ttl);
        self.table.lock().purge(now, ttl, &[]);
        if self.cfg.proactive {
            self.broadcast_vector(nic);
        }
        if self.cfg.reactive {
            // Retry discovery for still-pending destinations.
            let stuck: Vec<NodeId> = self
                .pending
                .keys()
                .copied()
                .filter(|d| self.table.lock().route(*d).is_none())
                .collect();
            for dst in stuck {
                self.discovering.remove(&dst);
                self.start_discovery(nic, dst);
            }
        }
        self.flush_pending(nic);
        Some(self.cfg.broadcast_interval)
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("cfg", &self.cfg)
            .field("own_seq", &self.own_seq)
            .field("routes", &self.table.lock().len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_client::nic::QueueNic;
    use poem_core::radio::RadioConfig;
    use poem_core::{PacketId, RadioId};

    fn nic(id: u32, chans: &[u16]) -> QueueNic {
        let channels: Vec<ChannelId> = chans.iter().map(|&c| ChannelId(c)).collect();
        QueueNic::new(NodeId(id), RadioConfig::multi(&channels, 200.0))
    }

    fn wrap(src: u32, ch: u16, payload: Bytes, at: EmuTime) -> EmuPacket {
        EmuPacket::new(
            PacketId(src as u64 * 1000),
            NodeId(src),
            Destination::Broadcast,
            ChannelId(ch),
            RadioId(0),
            at,
            payload,
        )
    }

    /// Hand-delivers a broadcast frame from a fake neighbor.
    fn fake_broadcast(
        router: &mut Router,
        nic_: &mut QueueNic,
        from: u32,
        ch: u16,
        heard: Vec<u32>,
        entries: Vec<(u32, u64, u32)>,
        seq: u64,
    ) {
        let frame = HeardFrame {
            heard: heard.into_iter().map(NodeId).collect(),
            msg: RoutingMsg::TopoBroadcast {
                origin: NodeId(from),
                origin_seq: seq,
                entries: entries.into_iter().map(|(d, s, h)| (NodeId(d), s, h)).collect(),
            },
        };
        let pkt = wrap(from, ch, frame.encode(), nic_.now());
        router.on_packet(nic_, pkt);
    }

    #[test]
    fn bidirectional_neighbor_installs_one_hop_route() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![], 10);
        let t = r.handles().table;
        let e = *t.lock().route(NodeId(2)).unwrap();
        assert_eq!(e.hops, 1);
        assert_eq!(e.next_hop, NextHop { node: NodeId(2), channel: ChannelId(1) });
    }

    #[test]
    fn asymmetric_neighbor_is_rejected() {
        // Table 2 step 2 in miniature: we hear VMN3 but it does not hear
        // us, so no direct route may form.
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 3, 1, vec![2], vec![], 10);
        assert!(r.handles().table.lock().is_empty());
    }

    #[test]
    fn vector_rows_become_multi_hop_routes() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![(3, 8, 1)], 10);
        let t = r.handles().table;
        let table = t.lock();
        assert_eq!(table.route(NodeId(3)).unwrap().hops, 2);
        assert_eq!(table.route(NodeId(3)).unwrap().next_hop.node, NodeId(2));
    }

    #[test]
    fn own_row_in_vector_is_ignored() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![(1, 50, 3)], 10);
        assert!(r.handles().table.lock().route(NodeId(1)).is_none());
    }

    #[test]
    fn send_data_with_route_unicasts_to_next_hop() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![], 10);
        n.drain_outbound();
        r.send_data(&mut n, NodeId(2), b"hi".to_vec());
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Destination::Unicast(NodeId(2)));
        match RoutingMsg::decode(&out[0].payload) {
            Some(RoutingMsg::Data { final_dst, payload, ttl, .. }) => {
                assert_eq!(final_dst, NodeId(2));
                assert_eq!(payload, b"hi");
                assert_eq!(ttl, 16);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reactive_send_without_route_floods_rreq_and_buffers() {
        let mut r = Router::new(RouterConfig::reactive_only());
        let mut n = nic(1, &[1, 2]);
        r.send_data(&mut n, NodeId(9), b"x".to_vec());
        let out = n.drain_outbound();
        // RREQ flooded on both radios, data buffered.
        assert_eq!(out.len(), 2);
        for pkt in &out {
            assert!(matches!(
                RoutingMsg::decode(&pkt.payload),
                Some(RoutingMsg::Rreq { target: NodeId(9), .. })
            ));
        }
        assert_eq!(r.pending[&NodeId(9)].len(), 1);
    }

    #[test]
    fn rrep_installs_route_and_flushes_buffer() {
        let mut r = Router::new(RouterConfig::reactive_only());
        let mut n = nic(1, &[1]);
        r.send_data(&mut n, NodeId(9), b"x".to_vec());
        n.drain_outbound();
        // Reply arrives from neighbor 2: route to 9 via 2, 2 hops.
        let rrep =
            RoutingMsg::Rrep { origin: NodeId(1), target: NodeId(9), target_seq: 4, hops: 1 };
        let pkt = wrap(2, 1, rrep.encode(), EmuTime::from_millis(10));
        r.on_packet(&mut n, pkt);
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1, "buffered data flushed");
        assert_eq!(out[0].dst, Destination::Unicast(NodeId(2)));
        assert!(matches!(
            RoutingMsg::decode(&out[0].payload),
            Some(RoutingMsg::Data { final_dst: NodeId(9), .. })
        ));
        assert_eq!(r.handles().table.lock().route(NodeId(9)).unwrap().hops, 2);
    }

    #[test]
    fn rreq_target_replies_directly() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(9, &[1]);
        let rreq = RoutingMsg::Rreq { origin: NodeId(1), target: NodeId(9), rreq_id: 0, hops: 2 };
        let pkt = wrap(5, 1, rreq.encode(), EmuTime::from_millis(1));
        r.on_packet(&mut n, pkt);
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Destination::Unicast(NodeId(5)));
        assert!(matches!(
            RoutingMsg::decode(&out[0].payload),
            Some(RoutingMsg::Rrep { origin: NodeId(1), target: NodeId(9), hops: 0, .. })
        ));
        // Reverse route toward the origin was installed.
        assert_eq!(r.handles().table.lock().route(NodeId(1)).unwrap().next_hop.node, NodeId(5));
    }

    #[test]
    fn duplicate_rreq_is_suppressed() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(4, &[1]);
        let rreq = RoutingMsg::Rreq { origin: NodeId(1), target: NodeId(9), rreq_id: 7, hops: 0 };
        r.on_packet(&mut n, wrap(2, 1, rreq.encode(), EmuTime::ZERO));
        let first = n.drain_outbound().len();
        assert!(first >= 1, "first copy rebroadcast");
        let rreq2 = RoutingMsg::Rreq { origin: NodeId(1), target: NodeId(9), rreq_id: 7, hops: 1 };
        r.on_packet(&mut n, wrap(3, 1, rreq2.encode(), EmuTime::ZERO));
        assert!(n.drain_outbound().is_empty(), "duplicate suppressed");
    }

    #[test]
    fn data_forwarding_decrements_ttl() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(2, &[1, 2]);
        // Route to 3 via channel 2 (the dual-radio relay case).
        fake_broadcast(&mut r, &mut n, 3, 2, vec![2], vec![], 10);
        n.drain_outbound();
        let data = RoutingMsg::Data {
            origin: NodeId(1),
            final_dst: NodeId(3),
            seq: 0,
            ttl: 5,
            sent_at: EmuTime::ZERO,
            payload: b"payload".to_vec(),
        };
        r.on_packet(&mut n, wrap(1, 1, data.encode(), EmuTime::from_millis(1)));
        let out = n.drain_outbound();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].channel, ChannelId(2), "relay crosses channels");
        assert!(matches!(
            RoutingMsg::decode(&out[0].payload),
            Some(RoutingMsg::Data { ttl: 4, .. })
        ));
        assert_eq!(r.handles().stats.lock().data_forwarded, 1);
    }

    #[test]
    fn data_at_zero_ttl_is_dropped() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(2, &[1]);
        let data = RoutingMsg::Data {
            origin: NodeId(1),
            final_dst: NodeId(3),
            seq: 0,
            ttl: 0,
            sent_at: EmuTime::ZERO,
            payload: vec![],
        };
        r.on_packet(&mut n, wrap(1, 1, data.encode(), EmuTime::ZERO));
        assert!(n.drain_outbound().is_empty());
        assert_eq!(r.handles().stats.lock().drops_ttl, 1);
    }

    #[test]
    fn delivered_data_reaches_received_handle() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(3, &[2]);
        n.set_now(EmuTime::from_millis(50));
        let data = RoutingMsg::Data {
            origin: NodeId(1),
            final_dst: NodeId(3),
            seq: 4,
            ttl: 3,
            sent_at: EmuTime::from_millis(40),
            payload: b"end-to-end".to_vec(),
        };
        r.on_packet(&mut n, wrap(2, 2, data.encode(), EmuTime::from_millis(50)));
        let rx = r.handles().received;
        let got = rx.lock();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].origin, NodeId(1));
        assert_eq!(got[0].seq, 4);
        assert_eq!(got[0].sent_at, EmuTime::from_millis(40));
        assert_eq!(got[0].delivered_at, EmuTime::from_millis(50));
        assert_eq!(got[0].payload, b"end-to-end");
    }

    #[test]
    fn routes_expire_on_tick() {
        let mut r = Router::new(RouterConfig::hybrid());
        let mut n = nic(1, &[1]);
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![], 10);
        assert_eq!(r.handles().table.lock().len(), 1);
        n.set_now(EmuTime::from_secs(10)); // > route_ttl
        r.on_tick(&mut n);
        assert!(r.handles().table.lock().is_empty());
    }

    #[test]
    fn proactive_tick_broadcasts_on_every_radio() {
        let mut r = Router::new(RouterConfig::proactive_only());
        let mut n = nic(1, &[1, 2, 3]);
        r.on_start(&mut n);
        let out = n.drain_outbound();
        assert_eq!(out.len(), 3);
        let chans: BTreeSet<ChannelId> = out.iter().map(|p| p.channel).collect();
        assert_eq!(chans.len(), 3);
        assert_eq!(r.handles().stats.lock().broadcasts_sent, 3);
    }

    #[test]
    fn reactive_only_never_broadcasts_vectors() {
        let mut r = Router::new(RouterConfig::reactive_only());
        let mut n = nic(1, &[1]);
        r.on_start(&mut n);
        r.on_tick(&mut n);
        assert!(n.drain_outbound().is_empty());
    }

    #[test]
    fn heard_list_is_channel_specific() {
        let mut r = Router::new(RouterConfig::proactive_only());
        let mut n = nic(1, &[1, 2]);
        // Hear node 2 on channel 1 only.
        fake_broadcast(&mut r, &mut n, 2, 1, vec![1], vec![], 10);
        n.drain_outbound();
        r.on_tick(&mut n);
        let out = n.drain_outbound();
        let frames: Vec<(ChannelId, HeardFrame)> =
            out.iter().map(|p| (p.channel, HeardFrame::decode(&p.payload).unwrap())).collect();
        for (ch, frame) in frames {
            if ch == ChannelId(1) {
                assert_eq!(frame.heard, vec![NodeId(2)]);
            } else {
                assert!(frame.heard.is_empty(), "channel 2 heard nobody");
            }
        }
    }
}
