//! The PoEm emulation client CLI: one VMN process.
//!
//! ```sh
//! poem-node <server-addr> <node-id> [--radios ch1:200,ch2:200] \
//!           [--send VMN3:COUNT] [--duration SECS]
//! ```
//!
//! Connects to a running `poem-server`, registers as the given VMN, runs
//! the Fig. 5 clock synchronization, hosts the hybrid routing protocol,
//! optionally originates data toward a destination, and reports what it
//! received before exiting.

#![forbid(unsafe_code)]

use poem_client::{AppRunner, EmuClient};
use poem_core::clock::{Clock, WallClock};
use poem_core::radio::{Radio, RadioConfig};
use poem_core::{ChannelId, NodeId};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    node: NodeId,
    radios: RadioConfig,
    send: Option<(NodeId, usize)>,
    duration: f64,
}

fn parse_radios(spec: &str) -> Result<RadioConfig, String> {
    let mut radios = Vec::new();
    for part in spec.split(',') {
        let (ch, range) = part
            .split_once(':')
            .ok_or_else(|| format!("bad radio spec `{part}` (want ch<N>:<range>)"))?;
        let ch: u16 = ch
            .strip_prefix("ch")
            .unwrap_or(ch)
            .parse()
            .map_err(|_| format!("bad channel in `{part}`"))?;
        let range: f64 = range.parse().map_err(|_| format!("bad range in `{part}`"))?;
        radios.push(Radio::new(ChannelId(ch), range));
    }
    if radios.is_empty() {
        return Err("need at least one radio".into());
    }
    Ok(RadioConfig::from_radios(radios))
}

fn parse_node(spec: &str) -> Result<NodeId, String> {
    spec.strip_prefix("VMN")
        .unwrap_or(spec)
        .parse::<u32>()
        .map(NodeId)
        .map_err(|_| format!("bad node id `{spec}`"))
}

fn parse_args() -> Result<Args, String> {
    let usage = "usage: poem-node <server-addr> <node-id> [--radios ch1:200] [--send VMN3:50] [--duration SECS]";
    let mut it = std::env::args().skip(1);
    let addr = it.next().ok_or(usage)?;
    let node = parse_node(&it.next().ok_or(usage)?)?;
    let mut out = Args {
        addr,
        node,
        radios: RadioConfig::single(ChannelId(1), 200.0),
        send: None,
        duration: 30.0,
    };
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--radios" => out.radios = parse_radios(&value()?)?,
            "--send" => {
                let v = value()?;
                let (dst, count) = v.split_once(':').ok_or_else(|| format!("bad --send `{v}`"))?;
                out.send = Some((
                    parse_node(dst)?,
                    count.parse().map_err(|_| format!("bad count in `{v}`"))?,
                ));
            }
            "--duration" => {
                out.duration = value()?.parse().map_err(|e| format!("bad duration: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
    let client = match EmuClient::connect_tcp(&args.addr, args.node, args.radios.clone(), clock) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    match client.sync_clock(3) {
        Ok(offset) => println!("{} connected to {}; sync offset {offset}", args.node, args.addr),
        Err(e) => {
            eprintln!("clock sync failed: {e}");
            std::process::exit(1);
        }
    }

    let router = poem_routing::Router::new(poem_routing::RouterConfig {
        broadcast_interval: poem_core::EmuDuration::from_millis(200),
        route_ttl: poem_core::EmuDuration::from_millis(1_400),
        ..poem_routing::RouterConfig::hybrid()
    });
    let handles = router.handles();
    let runner = AppRunner::spawn(client, Box::new(router));

    if let Some((dst, count)) = args.send {
        // Give routing a moment to converge, then queue the payloads.
        std::thread::sleep(Duration::from_secs(2));
        for i in 0..count {
            handles.tx.lock().push_back((dst, format!("payload-{i}").into_bytes()));
        }
        println!("queued {count} payloads toward {dst}");
    }

    // This binary is the live CLI front-end running against a real server
    // in real time — it is never part of a recorded/replayed pipeline.
    // poem-lint: allow(determinism_taint): interactive CLI runs on wall-clock time
    let deadline = std::time::Instant::now() + Duration::from_secs_f64(args.duration);
    let mut last_report = 0usize;
    // poem-lint: allow(determinism_taint): interactive CLI runs on wall-clock time
    while std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(500));
        let received = handles.received.lock().len();
        if received != last_report {
            println!("received {received} payloads so far");
            last_report = received;
        }
    }

    let (_client, _app) = runner.stop();
    let table = handles.table.lock();
    println!("\nfinal routing table:\n{}", table.render());
    let stats = handles.stats.lock();
    println!(
        "stats: sent {}, delivered {}, forwarded {}, no-route drops {}",
        stats.data_sent, stats.data_delivered, stats.data_forwarded, stats.drops_no_route
    );
}
