//! # poem-routing — real MANET routing protocols under test
//!
//! §6.1 tests "a hybrid MANET routing protocol developed by our group,
//! which is combining the periodic-broadcasting and on-demand mechanisms
//! to achieve high robustness for military applications". This crate
//! implements that protocol — and, as points of comparison, a purely
//! proactive (DSDV-like) and a purely reactive (AODV-like) variant — as
//! one channel-aware distance-vector engine ([`Router`]) with the two
//! mechanisms individually switchable:
//!
//! * **periodic broadcasting** ([`RouterConfig::proactive`]): every
//!   `broadcast_interval` the node floods its distance vector on every
//!   radio, DSDV-style destination sequence numbers keeping the tables
//!   loop-free;
//! * **on-demand discovery** ([`RouterConfig::reactive`]): data for an
//!   unknown destination is buffered while a route request floods the
//!   network and a route reply returns along the reverse path.
//!
//! The engine is *multi-radio aware* (§4.2): every route remembers both
//! the next hop and the **channel** to reach it, so a dual-radio relay
//! (Fig. 9's VMN2) stitches two channels together.
//!
//! Everything is a `ClientApp` over the [`poem_client::Nic`] trait: the
//! identical code runs in the deterministic harness and over real TCP —
//! the "without any conversion and modification" promise of §1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flood;
pub mod msg;
pub mod router;
pub mod table;

pub use flood::{FloodStats, Flooder, FlooderHandles};
pub use router::{Received, Router, RouterConfig, RouterHandles, RouterStats};
pub use table::{NextHop, RouteEntry, RoutingTable};
