//! # poem-traffic — workload generation and end-to-end metering
//!
//! §6.2 drives "CBR traffic of 4 Mbps" from VMN1 to VMN3 and measures the
//! packet-loss rate over time. This crate supplies:
//!
//! * [`pattern`] — traffic patterns (CBR, Poisson, on/off bursts) as pure
//!   schedule generators;
//! * [`app`] — [`app::TrafficApp`]: a [`poem_routing::Router`] with a
//!   pattern on top, sending application payloads through the routing
//!   protocol during a configured window;
//! * [`meter`] — end-to-end flow statistics (loss-rate series, delay
//!   summaries) computed from the sender's send log and the receiver's
//!   delivery log — the application-level counterpart of the recorder's
//!   per-hop statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod meter;
pub mod pattern;

pub use app::{TrafficApp, TrafficAppConfig};
pub use meter::{FlowReport, SentLog};
pub use pattern::{Pattern, TrafficPattern};
