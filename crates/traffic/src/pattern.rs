//! Traffic patterns: when to send and how big.

use poem_core::{EmuDuration, EmuRng, EmuTime};
use serde::{Deserialize, Serialize};

/// A source of send events.
pub trait TrafficPattern {
    /// The next send strictly after `now`: `(send time, payload bytes)`.
    fn next_after(&mut self, now: EmuTime, rng: &mut EmuRng) -> (EmuTime, usize);
}

/// The built-in patterns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Constant bit rate: fixed-size payloads at fixed intervals.
    Cbr {
        /// Payload size, bytes.
        payload: usize,
        /// Inter-packet interval.
        interval: EmuDuration,
    },
    /// Poisson arrivals: exponential inter-arrival times.
    Poisson {
        /// Payload size, bytes.
        payload: usize,
        /// Mean inter-arrival time.
        mean_interval: EmuDuration,
    },
    /// On/off bursts: CBR while "on", silence while "off".
    Burst {
        /// Payload size, bytes.
        payload: usize,
        /// Inter-packet interval during a burst.
        interval: EmuDuration,
        /// Burst length.
        on: EmuDuration,
        /// Gap length.
        off: EmuDuration,
    },
}

impl Pattern {
    /// A CBR pattern delivering `rate_bps` with `payload`-byte packets —
    /// §6.2's "CBR traffic of 4 Mbps".
    pub fn cbr_rate(rate_bps: f64, payload: usize) -> Pattern {
        assert!(rate_bps > 0.0 && payload > 0, "degenerate CBR");
        let interval = EmuDuration::from_secs_f64(payload as f64 * 8.0 / rate_bps);
        Pattern::Cbr { payload, interval }
    }

    /// The packets/second this pattern offers on average.
    pub fn mean_rate_pps(&self) -> f64 {
        match *self {
            Pattern::Cbr { interval, .. } => 1.0 / interval.as_secs_f64(),
            Pattern::Poisson { mean_interval, .. } => 1.0 / mean_interval.as_secs_f64(),
            Pattern::Burst { interval, on, off, .. } => {
                let duty = on.as_secs_f64() / (on + off).as_secs_f64();
                duty / interval.as_secs_f64()
            }
        }
    }
}

impl TrafficPattern for Pattern {
    fn next_after(&mut self, now: EmuTime, rng: &mut EmuRng) -> (EmuTime, usize) {
        match *self {
            Pattern::Cbr { payload, interval } => (now + interval, payload),
            Pattern::Poisson { payload, mean_interval } => {
                let gap = rng.exponential(mean_interval.as_secs_f64()).max(1e-9);
                (now + EmuDuration::from_secs_f64(gap), payload)
            }
            Pattern::Burst { payload, interval, on, off } => {
                let cycle = (on + off).as_nanos() as u64;
                let next = now + interval;
                let phase = next.as_nanos() % cycle;
                if phase < on.as_nanos() as u64 {
                    (next, payload)
                } else {
                    // Jump to the start of the next on-period.
                    let wait = cycle - phase;
                    (next + EmuDuration::from_nanos(wait as i64), payload)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_rate_computes_interval() {
        // 4 Mbps with 1000-byte payloads → 500 packets/s → 2 ms interval.
        let p = Pattern::cbr_rate(4.0e6, 1000);
        match p {
            Pattern::Cbr { interval, payload } => {
                assert_eq!(interval, EmuDuration::from_micros(2000));
                assert_eq!(payload, 1000);
            }
            other => panic!("{other:?}"),
        }
        assert!((p.mean_rate_pps() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn cbr_is_perfectly_periodic() {
        let mut p = Pattern::cbr_rate(1.0e6, 125); // 1 ms interval
        let mut rng = EmuRng::seed(1);
        let mut t = EmuTime::ZERO;
        for i in 1..=100u64 {
            let (next, size) = p.next_after(t, &mut rng);
            assert_eq!(next, EmuTime::from_millis(i));
            assert_eq!(size, 125);
            t = next;
        }
    }

    #[test]
    fn poisson_mean_interval_is_respected() {
        let mut p = Pattern::Poisson { payload: 100, mean_interval: EmuDuration::from_millis(10) };
        let mut rng = EmuRng::seed(7);
        let mut t = EmuTime::ZERO;
        let n = 20_000;
        for _ in 0..n {
            let (next, _) = p.next_after(t, &mut rng);
            assert!(next > t, "arrivals strictly advance");
            t = next;
        }
        let mean = t.as_secs_f64() / n as f64;
        assert!((mean - 0.010).abs() < 0.0005, "{mean}");
    }

    #[test]
    fn burst_respects_on_off_cycle() {
        let mut p = Pattern::Burst {
            payload: 50,
            interval: EmuDuration::from_millis(10),
            on: EmuDuration::from_millis(100),
            off: EmuDuration::from_millis(100),
        };
        let mut rng = EmuRng::seed(3);
        let mut t = EmuTime::ZERO;
        let mut in_on = 0;
        for _ in 0..200 {
            let (next, _) = p.next_after(t, &mut rng);
            let phase = next.as_nanos() % 200_000_000;
            assert!(phase < 100_000_000, "send at {next} is inside an on-period");
            in_on += 1;
            t = next;
        }
        assert_eq!(in_on, 200);
    }

    #[test]
    fn burst_mean_rate_accounts_for_duty_cycle() {
        let p = Pattern::Burst {
            payload: 50,
            interval: EmuDuration::from_millis(10),
            on: EmuDuration::from_millis(100),
            off: EmuDuration::from_millis(300),
        };
        // 100 pps while on, 25 % duty → 25 pps.
        assert!((p.mean_rate_pps() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degenerate CBR")]
    fn zero_rate_cbr_rejected() {
        let _ = Pattern::cbr_rate(0.0, 100);
    }
}
