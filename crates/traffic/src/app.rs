//! The traffic-sourcing client app.
//!
//! [`TrafficApp`] layers a workload pattern on top of a full
//! [`Router`]: the routing protocol runs exactly as it would alone
//! (periodic broadcasts, discovery, forwarding), while the pattern injects
//! application payloads toward a destination during a configured window —
//! the shape of §6.2's experiment, where VMN1 runs the routing protocol
//! *and* offers 4 Mbps of CBR traffic to VMN3.

use crate::meter::SentLog;
use crate::pattern::{Pattern, TrafficPattern};
use parking_lot::Mutex;
use poem_client::nic::Nic;
use poem_client::{ClientApp, TimerMux};
use poem_core::{EmuDuration, EmuPacket, EmuRng, EmuTime, NodeId};
use poem_routing::{Router, RouterHandles};
use std::sync::Arc;

/// What the traffic app sends, where, and when.
#[derive(Debug, Clone, Copy)]
pub struct TrafficAppConfig {
    /// Final destination of the flow.
    pub dst: NodeId,
    /// The workload pattern.
    pub pattern: Pattern,
    /// First send time.
    pub start: EmuTime,
    /// No sends at or after this time.
    pub stop: EmuTime,
    /// Seed for stochastic patterns.
    pub seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Timer {
    /// The wrapped router's own heartbeat.
    RouterBeat,
    /// The next workload send.
    Send(usize),
}

/// A router plus a traffic source.
pub struct TrafficApp {
    router: Router,
    cfg: TrafficAppConfig,
    pattern: Pattern,
    rng: EmuRng,
    mux: TimerMux<Timer>,
    sent: Arc<Mutex<SentLog>>,
}

impl TrafficApp {
    /// Builds the app over a fresh router.
    pub fn new(router: Router, cfg: TrafficAppConfig) -> Self {
        TrafficApp {
            router,
            cfg,
            pattern: cfg.pattern,
            rng: EmuRng::seed(cfg.seed),
            mux: TimerMux::new(),
            sent: Arc::new(Mutex::new(SentLog::default())),
        }
    }

    /// The wrapped router's inspection handles.
    pub fn router_handles(&self) -> RouterHandles {
        self.router.handles()
    }

    /// The send log `(data seq, send time)` of this flow.
    pub fn sent_log(&self) -> Arc<Mutex<SentLog>> {
        Arc::clone(&self.sent)
    }

    fn fire_send(&mut self, nic: &mut dyn Nic, payload_bytes: usize) {
        let now = nic.now();
        if now >= self.cfg.stop {
            return;
        }
        let seq = self.router.send_data(nic, self.cfg.dst, vec![0u8; payload_bytes]);
        self.sent.lock().push(seq, now);
        // Arm the next send.
        let (next, size) = self.pattern.next_after(now, &mut self.rng);
        if next < self.cfg.stop {
            self.mux.arm(next, Timer::Send(size));
        }
    }
}

impl ClientApp for TrafficApp {
    fn on_start(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        let now = nic.now();
        if let Some(beat) = self.router.on_start(nic) {
            self.mux.arm(now + beat, Timer::RouterBeat);
        }
        if self.cfg.start < self.cfg.stop {
            // First payload size comes from the pattern's parameters.
            let (_, size) = self.pattern.next_after(now, &mut EmuRng::seed(self.cfg.seed));
            self.mux.arm(self.cfg.start.max(now), Timer::Send(size));
        }
        self.mux.next_delay(now)
    }

    fn on_packet(&mut self, nic: &mut dyn Nic, pkt: EmuPacket) {
        self.router.on_packet(nic, pkt);
    }

    fn on_tick(&mut self, nic: &mut dyn Nic) -> Option<EmuDuration> {
        let now = nic.now();
        for timer in self.mux.due(now) {
            match timer {
                Timer::RouterBeat => {
                    if let Some(beat) = self.router.on_tick(nic) {
                        self.mux.arm(now + beat, Timer::RouterBeat);
                    }
                }
                Timer::Send(size) => self.fire_send(nic, size),
            }
        }
        self.mux.next_delay(now)
    }
}

impl std::fmt::Debug for TrafficApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficApp")
            .field("dst", &self.cfg.dst)
            .field("pattern", &self.cfg.pattern)
            .field("sent", &self.sent.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_client::nic::QueueNic;
    use poem_core::radio::RadioConfig;
    use poem_core::ChannelId;
    use poem_routing::RouterConfig;

    fn app(start_ms: u64, stop_ms: u64) -> TrafficApp {
        TrafficApp::new(
            Router::new(RouterConfig::hybrid()),
            TrafficAppConfig {
                dst: NodeId(3),
                pattern: Pattern::cbr_rate(4.0e6, 1000), // 2 ms interval
                start: EmuTime::from_millis(start_ms),
                stop: EmuTime::from_millis(stop_ms),
                seed: 1,
            },
        )
    }

    /// Drives the app's timers standalone (no harness).
    fn drive(app: &mut TrafficApp, nic: &mut QueueNic, until: EmuTime) {
        nic.set_now(EmuTime::ZERO);
        let mut next = app.on_start(nic).map(|d| EmuTime::ZERO + d);
        while let Some(at) = next {
            if at > until {
                break;
            }
            nic.set_now(at);
            next = app.on_tick(nic).map(|d| at + d);
        }
    }

    #[test]
    fn cbr_sends_at_the_configured_rate() {
        let mut a = app(0, 100);
        let mut n = QueueNic::new(NodeId(1), RadioConfig::single(ChannelId(1), 200.0));
        drive(&mut a, &mut n, EmuTime::from_millis(200));
        // 100 ms window at 2 ms interval → 50 sends.
        let log = a.sent_log();
        let sent = log.lock().len();
        assert_eq!(sent, 50, "{sent}");
    }

    #[test]
    fn sends_respect_start_and_stop() {
        let mut a = app(50, 60);
        let mut n = QueueNic::new(NodeId(1), RadioConfig::single(ChannelId(1), 200.0));
        drive(&mut a, &mut n, EmuTime::from_millis(200));
        let log = a.sent_log();
        let log = log.lock();
        assert_eq!(log.len(), 5); // 50, 52, 54, 56, 58 ms
        for &(_, at) in log.entries() {
            assert!(at >= EmuTime::from_millis(50) && at < EmuTime::from_millis(60), "{at}");
        }
    }

    #[test]
    fn router_heartbeat_keeps_running() {
        let mut a = app(0, 10);
        let mut n = QueueNic::new(NodeId(1), RadioConfig::single(ChannelId(1), 200.0));
        drive(&mut a, &mut n, EmuTime::from_secs(5));
        // Proactive broadcasts at 0,1,2,3,4,5 s (per the router config).
        let stats = a.router_handles().stats;
        let broadcasts = stats.lock().broadcasts_sent;
        assert!(broadcasts >= 5, "{broadcasts}");
    }

    #[test]
    fn seqs_are_consecutive() {
        let mut a = app(0, 20);
        let mut n = QueueNic::new(NodeId(1), RadioConfig::single(ChannelId(1), 200.0));
        drive(&mut a, &mut n, EmuTime::from_millis(100));
        let log = a.sent_log();
        let log = log.lock();
        for (i, &(seq, _)) in log.entries().iter().enumerate() {
            assert_eq!(seq, i as u64);
        }
    }
}
