//! End-to-end flow metering.
//!
//! The Fig. 10 metric is the packet loss rate of the VMN1→VMN3 flow over
//! time. The sender's [`SentLog`] records `(sequence, send time)` for
//! every offered payload; the receiver's [`Received`] list records what
//! arrived. [`FlowReport::compute`] joins the two into the loss-rate
//! series, delivery counts and end-to-end delay summary.

use poem_core::stats::{SeriesPoint, Summary, WindowedLossMeter};
use poem_core::{EmuDuration, EmuTime, NodeId};
use poem_routing::Received;
use std::collections::HashSet;

/// A sender-side record of offered payloads.
#[derive(Debug, Clone, Default)]
pub struct SentLog {
    entries: Vec<(u64, EmuTime)>,
}

impl SentLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one offered payload.
    pub fn push(&mut self, seq: u64, at: EmuTime) {
        self.entries.push((seq, at));
    }

    /// Number of offered payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True with no sends.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw `(seq, send time)` entries.
    pub fn entries(&self) -> &[(u64, EmuTime)] {
        &self.entries
    }
}

/// End-to-end statistics of one flow.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Payloads offered by the sender.
    pub offered: u64,
    /// Payloads delivered to the receiver (unique sequences).
    pub delivered: u64,
    /// Overall loss rate; `None` with no offered traffic.
    pub overall_loss: Option<f64>,
    /// Windowed loss-rate series (the Fig. 10 curve).
    pub loss_series: Vec<SeriesPoint>,
    /// End-to-end delay summary over delivered payloads, seconds.
    pub delay: Option<Summary>,
}

impl FlowReport {
    /// Joins a send log with the receiver's deliveries.
    ///
    /// `origin` filters the receiver's list to this flow (a receiver may
    /// serve several flows); duplicate deliveries of the same sequence
    /// (possible under multipath) count once.
    pub fn compute(
        sent: &SentLog,
        received: &[Received],
        origin: NodeId,
        window: EmuDuration,
    ) -> FlowReport {
        let mut meter = WindowedLossMeter::new(window);
        let mut delivered_seqs: HashSet<u64> = HashSet::new();
        let mut delays: Vec<f64> = Vec::new();
        for r in received {
            if r.origin == origin && delivered_seqs.insert(r.seq) {
                delays.push((r.delivered_at - r.sent_at).as_secs_f64());
            }
        }
        let mut delivered = 0u64;
        for &(seq, at) in sent.entries() {
            meter.record_sent(at);
            if delivered_seqs.contains(&seq) {
                meter.record_received(at);
                delivered += 1;
            }
        }
        FlowReport {
            offered: sent.len() as u64,
            delivered,
            overall_loss: meter.overall(),
            loss_series: meter.series(),
            delay: Summary::of(&delays),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rx(origin: u32, seq: u64, sent_ms: u64, delivered_ms: u64) -> Received {
        Received {
            origin: NodeId(origin),
            seq,
            sent_at: EmuTime::from_millis(sent_ms),
            delivered_at: EmuTime::from_millis(delivered_ms),
            payload: vec![],
        }
    }

    #[test]
    fn joins_sent_and_received() {
        let mut sent = SentLog::new();
        for i in 0..10u64 {
            sent.push(i, EmuTime::from_millis(i * 100));
        }
        // 7 of 10 delivered, 5 ms delay each.
        let received: Vec<Received> = (0..7).map(|i| rx(1, i, i * 100, i * 100 + 5)).collect();
        let rep = FlowReport::compute(&sent, &received, NodeId(1), EmuDuration::from_secs(1));
        assert_eq!(rep.offered, 10);
        assert_eq!(rep.delivered, 7);
        assert!((rep.overall_loss.unwrap() - 0.3).abs() < 1e-12);
        let d = rep.delay.unwrap();
        assert!((d.mean - 0.005).abs() < 1e-9);
    }

    #[test]
    fn foreign_origin_is_ignored() {
        let mut sent = SentLog::new();
        sent.push(0, EmuTime::ZERO);
        let received = vec![rx(9, 0, 0, 5)];
        let rep = FlowReport::compute(&sent, &received, NodeId(1), EmuDuration::from_secs(1));
        assert_eq!(rep.delivered, 0);
        assert_eq!(rep.overall_loss, Some(1.0));
    }

    #[test]
    fn duplicate_deliveries_count_once() {
        let mut sent = SentLog::new();
        sent.push(0, EmuTime::ZERO);
        let received = vec![rx(1, 0, 0, 5), rx(1, 0, 0, 9)];
        let rep = FlowReport::compute(&sent, &received, NodeId(1), EmuDuration::from_secs(1));
        assert_eq!(rep.delivered, 1);
        assert_eq!(rep.overall_loss, Some(0.0));
        assert_eq!(rep.delay.unwrap().count, 1);
    }

    #[test]
    fn loss_series_is_windowed_by_send_time() {
        let mut sent = SentLog::new();
        // Second 0: seqs 0..10 all delivered. Second 1: seqs 10..20 none.
        for i in 0..20u64 {
            sent.push(i, EmuTime::from_millis(i * 100));
        }
        let received: Vec<Received> = (0..10).map(|i| rx(1, i, i * 100, i * 100 + 1)).collect();
        let rep = FlowReport::compute(&sent, &received, NodeId(1), EmuDuration::from_secs(1));
        assert_eq!(rep.loss_series.len(), 2);
        assert_eq!(rep.loss_series[0].value, 0.0);
        assert_eq!(rep.loss_series[1].value, 1.0);
    }

    #[test]
    fn empty_flow() {
        let rep = FlowReport::compute(&SentLog::new(), &[], NodeId(1), EmuDuration::from_secs(1));
        assert_eq!(rep.offered, 0);
        assert!(rep.overall_loss.is_none());
        assert!(rep.delay.is_none());
        assert!(rep.loss_series.is_empty());
    }
}
