//! Query layer over the traffic log — the statistics side of §3.2 step 7.
//!
//! Queries work on a slice of [`TrafficRecord`]s (live snapshot or loaded
//! log) and compute what the evaluation needs: per-hop loss-rate series
//! (Fig. 10's metric), forwarding-delay samples, throughput series and
//! per-node counters. Filters compose: `TrafficQuery::new(&recs)
//! .from(NodeId(1)).on_channel(ChannelId(2)).loss_series(window)`.
//!
//! [`FaultQuery`] is the companion view over the fault log, correlating
//! `poem-chaos` injections with the traffic they disturbed.

use crate::records::{DropReason, FaultRecord, TrafficRecord};
use poem_core::stats::{SeriesPoint, Summary, WindowedLossMeter};
use poem_core::{ChannelId, EmuDuration, EmuTime, NodeId, PacketId};
use std::collections::BTreeMap;

/// Ingress metadata used to attribute per-copy outcomes.
#[derive(Debug, Clone, Copy)]
struct IngressInfo {
    src: NodeId,
    channel: ChannelId,
    bytes: u32,
    sent_at: EmuTime,
}

/// Per-copy outcome counts of a query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CopyCounts {
    /// Copies forwarded to their destination.
    pub forwarded: u64,
    /// Copies dropped by the link-model loss draw.
    pub loss: u64,
    /// Copies dropped for lack of a route.
    pub no_route: u64,
    /// Copies dropped because the destination client was gone.
    pub disconnected: u64,
    /// Copies destroyed by MAC collisions.
    pub collision: u64,
}

impl CopyCounts {
    /// All drops combined.
    pub fn dropped(&self) -> u64 {
        self.loss + self.no_route + self.disconnected + self.collision
    }

    /// Total copies considered.
    pub fn total(&self) -> u64 {
        self.forwarded + self.dropped()
    }
}

/// A filtered view over a traffic log.
#[derive(Debug, Clone)]
pub struct TrafficQuery<'a> {
    records: &'a [TrafficRecord],
    src: Option<NodeId>,
    dst: Option<NodeId>,
    channel: Option<ChannelId>,
}

impl<'a> TrafficQuery<'a> {
    /// A query over all records.
    pub fn new(records: &'a [TrafficRecord]) -> Self {
        TrafficQuery { records, src: None, dst: None, channel: None }
    }

    /// Restricts to packets originated by `src`.
    pub fn from(mut self, src: NodeId) -> Self {
        self.src = Some(src);
        self
    }

    /// Restricts to copies destined to `dst`.
    pub fn to(mut self, dst: NodeId) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Restricts to packets transmitted on `channel`.
    pub fn on_channel(mut self, channel: ChannelId) -> Self {
        self.channel = Some(channel);
        self
    }

    fn ingress_index(&self) -> BTreeMap<PacketId, IngressInfo> {
        self.records
            .iter()
            .filter_map(|r| match *r {
                TrafficRecord::Ingress { id, src, channel, bytes, sent_at, .. } => {
                    Some((id, IngressInfo { src, channel, bytes, sent_at }))
                }
                _ => None,
            })
            .collect()
    }

    fn copy_matches(&self, info: &IngressInfo, to: NodeId) -> bool {
        self.src.is_none_or(|s| s == info.src)
            && self.dst.is_none_or(|d| d == to)
            && self.channel.is_none_or(|c| c == info.channel)
    }

    /// Per-hop loss-rate series: copies dropped / copies considered,
    /// bucketed by the originating client timestamp.
    pub fn loss_series(&self, window: EmuDuration) -> Vec<SeriesPoint> {
        let idx = self.ingress_index();
        let mut meter = WindowedLossMeter::new(window);
        for r in self.records {
            match *r {
                TrafficRecord::Forward { id, to, .. } => {
                    if let Some(info) = idx.get(&id) {
                        if self.copy_matches(info, to) {
                            meter.record_sent(info.sent_at);
                            meter.record_received(info.sent_at);
                        }
                    }
                }
                TrafficRecord::Drop { id, to, .. } => {
                    if let Some(info) = idx.get(&id) {
                        if self.copy_matches(info, to) {
                            meter.record_sent(info.sent_at);
                        }
                    }
                }
                TrafficRecord::Ingress { .. } => {}
            }
        }
        meter.series()
    }

    /// Overall per-hop loss rate; `None` with no matching copies.
    pub fn overall_loss(&self, window: EmuDuration) -> Option<f64> {
        let idx = self.ingress_index();
        let mut meter = WindowedLossMeter::new(window);
        for r in self.records {
            match *r {
                TrafficRecord::Forward { id, to, .. } => {
                    if let Some(info) = idx.get(&id) {
                        if self.copy_matches(info, to) {
                            meter.record_sent(info.sent_at);
                            meter.record_received(info.sent_at);
                        }
                    }
                }
                TrafficRecord::Drop { id, to, .. } => {
                    if let Some(info) = idx.get(&id) {
                        if self.copy_matches(info, to) {
                            meter.record_sent(info.sent_at);
                        }
                    }
                }
                TrafficRecord::Ingress { .. } => {}
            }
        }
        meter.overall()
    }

    /// Forwarding-delay samples (forward time − client send stamp) for
    /// matching delivered copies.
    pub fn delay_samples(&self) -> Vec<EmuDuration> {
        let idx = self.ingress_index();
        self.records
            .iter()
            .filter_map(|r| match *r {
                TrafficRecord::Forward { id, to, at } => {
                    let info = idx.get(&id)?;
                    self.copy_matches(info, to).then(|| at - info.sent_at)
                }
                _ => None,
            })
            .collect()
    }

    /// Summary of forwarding delays, in seconds.
    pub fn delay_summary(&self) -> Option<Summary> {
        Summary::of_durations(&self.delay_samples())
    }

    /// Delivered throughput in bits/second, bucketed by forward time.
    pub fn throughput_series(&self, window: EmuDuration) -> Vec<SeriesPoint> {
        let idx = self.ingress_index();
        let w_ns = window.as_nanos() as u64;
        let w_secs = window.as_secs_f64();
        let mut bits: BTreeMap<u64, f64> = BTreeMap::new();
        for r in self.records {
            if let TrafficRecord::Forward { id, to, at } = *r {
                if let Some(info) = idx.get(&id) {
                    if self.copy_matches(info, to) {
                        *bits.entry(at.as_nanos() / w_ns).or_default() += info.bytes as f64 * 8.0;
                    }
                }
            }
        }
        // BTreeMap iterates buckets in ascending order, so the series is
        // already time-sorted.
        bits.into_iter()
            .map(|(b, v)| SeriesPoint { t: b as f64 * w_secs, value: v / w_secs })
            .collect()
    }

    /// Per-copy outcome counts.
    pub fn copy_counts(&self) -> CopyCounts {
        let idx = self.ingress_index();
        let mut counts = CopyCounts::default();
        for r in self.records {
            match *r {
                TrafficRecord::Forward { id, to, .. } => {
                    if idx.get(&id).is_some_and(|i| self.copy_matches(i, to)) {
                        counts.forwarded += 1;
                    }
                }
                TrafficRecord::Drop { id, to, reason, .. } => {
                    if idx.get(&id).is_some_and(|i| self.copy_matches(i, to)) {
                        match reason {
                            DropReason::Loss => counts.loss += 1,
                            DropReason::NoRoute => counts.no_route += 1,
                            DropReason::Disconnected => counts.disconnected += 1,
                            DropReason::Collision => counts.collision += 1,
                        }
                    }
                }
                TrafficRecord::Ingress { .. } => {}
            }
        }
        counts
    }

    /// Number of matching ingress rows (packets offered by clients).
    pub fn offered(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| match **r {
                TrafficRecord::Ingress { src, channel, .. } => {
                    self.src.is_none_or(|s| s == src) && self.channel.is_none_or(|c| c == channel)
                }
                _ => false,
            })
            .count() as u64
    }

    /// The recording error of serial server-side time-stamping relative to
    /// the client's parallel stamp: `received_at − sent_at` per ingress —
    /// the quantity Fig. 2 is about. (Includes genuine uplink delay; under
    /// zero-delay control links it is pure serialization error.)
    pub fn stamp_skew_samples(&self) -> Vec<EmuDuration> {
        self.records
            .iter()
            .filter_map(|r| match *r {
                TrafficRecord::Ingress { src, channel, sent_at, received_at, .. } => {
                    (self.src.is_none_or(|s| s == src) && self.channel.is_none_or(|c| c == channel))
                        .then(|| received_at - sent_at)
                }
                _ => None,
            })
            .collect()
    }
}

/// Per-layer fault-event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Wire-layer events (one per mangled frame).
    pub wire: u64,
    /// Transport-layer events.
    pub transport: u64,
    /// Scene-layer events.
    pub scene: u64,
    /// Clock-layer events.
    pub clock: u64,
}

impl FaultCounts {
    /// All events combined.
    pub fn total(&self) -> u64 {
        self.wire + self.transport + self.scene + self.clock
    }
}

/// A filtered view over a fault log.
#[derive(Debug, Clone)]
pub struct FaultQuery<'a> {
    records: &'a [FaultRecord],
    node: Option<NodeId>,
}

impl<'a> FaultQuery<'a> {
    /// A query over all fault records.
    pub fn new(records: &'a [FaultRecord]) -> Self {
        FaultQuery { records, node: None }
    }

    /// Restricts to events naming `node` (scene events name no node and
    /// are excluded by this filter).
    pub fn for_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    fn matches(&self, r: &FaultRecord) -> bool {
        self.node.is_none_or(|n| r.node() == Some(n))
    }

    /// Per-layer event counts.
    pub fn counts(&self) -> FaultCounts {
        let mut counts = FaultCounts::default();
        for r in self.records.iter().filter(|r| self.matches(r)) {
            match r {
                FaultRecord::Wire { .. } => counts.wire += 1,
                FaultRecord::Transport { .. } => counts.transport += 1,
                FaultRecord::Scene { .. } => counts.scene += 1,
                FaultRecord::Clock { .. } => counts.clock += 1,
            }
        }
        counts
    }

    /// Events with `from ≤ at < to` — the correlation primitive: slice the
    /// fault log around a traffic anomaly to see what chaos was acting.
    pub fn during(&self, from: EmuTime, to: EmuTime) -> Vec<&'a FaultRecord> {
        self.records.iter().filter(|r| self.matches(r) && r.at() >= from && r.at() < to).collect()
    }

    /// Number of matching events.
    pub fn len(&self) -> usize {
        self.records.iter().filter(|r| self.matches(r)).count()
    }

    /// True with no matching events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::packet::Destination;

    /// Builds a two-destination log: packets from VMN1 on ch1; copies to
    /// VMN2 always forwarded, copies to VMN3 dropped after the first two.
    fn sample_log() -> Vec<TrafficRecord> {
        let mut recs = Vec::new();
        for i in 0..10u64 {
            let id = PacketId(i);
            let sent = EmuTime::from_millis(i * 100);
            recs.push(TrafficRecord::Ingress {
                id,
                src: NodeId(1),
                dst: Destination::Broadcast,
                channel: ChannelId(1),
                bytes: 125,
                sent_at: sent,
                received_at: sent + EmuDuration::from_micros(50),
            });
            recs.push(TrafficRecord::Forward {
                id,
                to: NodeId(2),
                at: sent + EmuDuration::from_millis(1),
            });
            if i < 2 {
                recs.push(TrafficRecord::Forward {
                    id,
                    to: NodeId(3),
                    at: sent + EmuDuration::from_millis(2),
                });
            } else {
                recs.push(TrafficRecord::Drop {
                    id,
                    to: NodeId(3),
                    at: sent,
                    reason: DropReason::Loss,
                });
            }
        }
        recs
    }

    #[test]
    fn overall_loss_counts_copies() {
        let recs = sample_log();
        // 20 copies total: 12 forwarded, 8 dropped.
        let q = TrafficQuery::new(&recs);
        let counts = q.copy_counts();
        assert_eq!((counts.forwarded, counts.loss), (12, 8));
        assert_eq!(counts.dropped(), 8);
        assert_eq!(counts.total(), 20);
        let loss = q.overall_loss(EmuDuration::from_secs(1)).unwrap();
        assert!((loss - 0.4).abs() < 1e-12, "{loss}");
    }

    #[test]
    fn destination_filter() {
        let recs = sample_log();
        let to2 = TrafficQuery::new(&recs).to(NodeId(2));
        assert_eq!(to2.overall_loss(EmuDuration::from_secs(1)), Some(0.0));
        let to3 = TrafficQuery::new(&recs).to(NodeId(3));
        let loss = to3.overall_loss(EmuDuration::from_secs(1)).unwrap();
        assert!((loss - 0.8).abs() < 1e-12, "{loss}");
    }

    #[test]
    fn source_and_channel_filters() {
        let recs = sample_log();
        assert_eq!(TrafficQuery::new(&recs).from(NodeId(1)).offered(), 10);
        assert_eq!(TrafficQuery::new(&recs).from(NodeId(9)).offered(), 0);
        assert_eq!(TrafficQuery::new(&recs).on_channel(ChannelId(2)).offered(), 0);
        assert_eq!(
            TrafficQuery::new(&recs).on_channel(ChannelId(2)).copy_counts(),
            CopyCounts::default()
        );
    }

    #[test]
    fn loss_series_windows() {
        let recs = sample_log();
        // 100 ms sends over 1 s; 500 ms windows → 2 buckets of 5 packets
        // (10 copies each). First bucket: i=0..4 → 5 fwd to 2, 2 fwd to 3,
        // 3 drops → 3/10 loss. Second: i=5..9 → 5 fwd, 5 drops → 0.5.
        let s = TrafficQuery::new(&recs).loss_series(EmuDuration::from_millis(500));
        assert_eq!(s.len(), 2);
        assert!((s[0].value - 0.3).abs() < 1e-12, "{}", s[0].value);
        assert!((s[1].value - 0.5).abs() < 1e-12, "{}", s[1].value);
    }

    #[test]
    fn delay_summary_reflects_forward_lag() {
        let recs = sample_log();
        let sum = TrafficQuery::new(&recs).to(NodeId(2)).delay_summary().unwrap();
        assert_eq!(sum.count, 10);
        assert!((sum.mean - 0.001).abs() < 1e-9, "{}", sum.mean);
    }

    #[test]
    fn throughput_series_sums_bits() {
        let recs = sample_log();
        // To VMN2: 125 bytes × 10 forwards over ~1 s.
        let tp =
            TrafficQuery::new(&recs).to(NodeId(2)).throughput_series(EmuDuration::from_secs(1));
        let total: f64 = tp.iter().map(|p| p.value).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "{total}");
    }

    #[test]
    fn stamp_skew_measures_serialization() {
        let recs = sample_log();
        let skews = TrafficQuery::new(&recs).stamp_skew_samples();
        assert_eq!(skews.len(), 10);
        assert!(skews.iter().all(|&d| d == EmuDuration::from_micros(50)));
    }

    fn sample_faults() -> Vec<FaultRecord> {
        vec![
            FaultRecord::Wire {
                at: EmuTime::from_secs(1),
                node: NodeId(1),
                action: "wire_corrupt".into(),
                bytes: 32,
            },
            FaultRecord::Wire {
                at: EmuTime::from_secs(2),
                node: NodeId(2),
                action: "wire_truncate".into(),
                bytes: 16,
            },
            FaultRecord::Transport {
                at: EmuTime::from_secs(3),
                node: NodeId(1),
                action: "stall".into(),
            },
            FaultRecord::Scene { at: EmuTime::from_secs(4), action: "jam ch1".into() },
            FaultRecord::Clock { at: EmuTime::from_secs(5), node: NodeId(1), offset_ns: 1000 },
        ]
    }

    #[test]
    fn fault_counts_by_layer_and_node() {
        let recs = sample_faults();
        let all = FaultQuery::new(&recs).counts();
        assert_eq!(all, FaultCounts { wire: 2, transport: 1, scene: 1, clock: 1 });
        assert_eq!(all.total(), 5);
        let n1 = FaultQuery::new(&recs).for_node(NodeId(1));
        assert_eq!(n1.len(), 3);
        // Scene events name no node and fall outside any node filter.
        assert_eq!(n1.counts().scene, 0);
    }

    #[test]
    fn fault_during_slices_by_time() {
        let recs = sample_faults();
        let q = FaultQuery::new(&recs);
        let mid = q.during(EmuTime::from_secs(2), EmuTime::from_secs(4));
        assert_eq!(mid.len(), 2);
        assert!(mid.iter().all(|r| r.at() >= EmuTime::from_secs(2)));
        assert!(FaultQuery::new(&[]).is_empty());
    }

    #[test]
    fn empty_log_queries() {
        let recs: Vec<TrafficRecord> = Vec::new();
        let q = TrafficQuery::new(&recs);
        assert!(q.loss_series(EmuDuration::from_secs(1)).is_empty());
        assert!(q.overall_loss(EmuDuration::from_secs(1)).is_none());
        assert!(q.delay_summary().is_none());
        assert_eq!(q.copy_counts(), CopyCounts::default());
    }
}
