//! Record schemas — the "tables" of the paper's database.

use poem_core::packet::Destination;
use poem_core::scene::SceneOp;
use poem_core::{ChannelId, EmuPacket, EmuTime, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Why a packet copy was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The link-model loss draw fired (§3.2 step 3).
    Loss,
    /// The destination was not a neighbor of the source on the packet's
    /// channel (out of range, wrong channel, or removed).
    NoRoute,
    /// The destination client was not connected when the forward fired.
    Disconnected,
    /// A MAC-layer collision destroyed the reception (optional MAC models,
    /// a §7 future-work extension).
    Collision,
}

/// One row of the traffic log.
///
/// Each packet produces one `Ingress` row when the server receives it, and
/// one `Forward` or `Drop` row per considered destination. The `id`
/// correlates the legs (step 7: "the complete information of every
/// incoming/outgoing packet").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficRecord {
    /// The server received a packet from its originating client.
    Ingress {
        /// Packet id.
        id: PacketId,
        /// Originating VMN.
        src: NodeId,
        /// Link-layer destination.
        dst: Destination,
        /// Transmission channel.
        channel: ChannelId,
        /// Wire size, bytes.
        bytes: u32,
        /// The client-side (parallel) timestamp.
        sent_at: EmuTime,
        /// Server emulation time at reception — under serial server-side
        /// time-stamping this is all a centralized emulator has; PoEm
        /// records both so the recording error is itself measurable.
        received_at: EmuTime,
    },
    /// A copy was forwarded to `to` at `at`.
    Forward {
        /// Packet id.
        id: PacketId,
        /// Receiving VMN.
        to: NodeId,
        /// Emulation time the forward fired (§3.2 step 6).
        at: EmuTime,
    },
    /// A copy destined to `to` was dropped.
    Drop {
        /// Packet id.
        id: PacketId,
        /// Intended receiver.
        to: NodeId,
        /// Emulation time of the decision.
        at: EmuTime,
        /// Cause.
        reason: DropReason,
    },
}

impl TrafficRecord {
    /// Builds the `Ingress` row for a received packet.
    pub fn ingress(pkt: &EmuPacket, received_at: EmuTime) -> Self {
        TrafficRecord::Ingress {
            id: pkt.id,
            src: pkt.src,
            dst: pkt.dst,
            channel: pkt.channel,
            bytes: pkt.wire_size() as u32,
            sent_at: pkt.sent_at,
            received_at,
        }
    }

    /// The packet id the record refers to.
    pub fn packet_id(&self) -> PacketId {
        match *self {
            TrafficRecord::Ingress { id, .. }
            | TrafficRecord::Forward { id, .. }
            | TrafficRecord::Drop { id, .. } => id,
        }
    }

    /// The emulation time of the event (client stamp for ingress).
    pub fn at(&self) -> EmuTime {
        match *self {
            TrafficRecord::Ingress { sent_at, .. } => sent_at,
            TrafficRecord::Forward { at, .. } | TrafficRecord::Drop { at, .. } => at,
        }
    }
}

/// One periodic observability snapshot row (§3.2 step 7 extended): the
/// server's metrics thread flattens a `poem-obs` snapshot into the record
/// log so post-emulation analysis can plot pipeline health (ingest rate,
/// drops, schedule depth) against the traffic and scene logs on the same
/// emulation-time axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRecord {
    /// Emulation time the snapshot was taken.
    pub at: EmuTime,
    /// Counter values by metric name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by metric name.
    pub gauges: Vec<(String, i64)>,
}

impl MetricsRecord {
    /// Looks a counter up by its exact metric name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a gauge up by its exact metric name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// One row of the scene log: a timestamped scene operation.
///
/// The server appends a row for every applied [`SceneOp`] — interactive
/// ops and the periodic position updates produced by mobility integration
/// alike — so replay is an exact re-application of the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneRecord {
    /// When the op took effect.
    pub at: EmuTime,
    /// The operation.
    pub op: SceneOp,
}

impl SceneRecord {
    /// Builds a row.
    pub fn new(at: EmuTime, op: SceneOp) -> Self {
        SceneRecord { at, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::packet::Destination;
    use poem_core::RadioId;

    fn sample_packet() -> EmuPacket {
        EmuPacket::new(
            PacketId(42),
            NodeId(1),
            Destination::Unicast(NodeId(2)),
            ChannelId(1),
            RadioId(0),
            EmuTime::from_millis(10),
            vec![0u8; 100],
        )
    }

    #[test]
    fn ingress_captures_both_timestamps() {
        let pkt = sample_packet();
        let rec = TrafficRecord::ingress(&pkt, EmuTime::from_millis(12));
        match rec {
            TrafficRecord::Ingress { id, src, bytes, sent_at, received_at, .. } => {
                assert_eq!(id, PacketId(42));
                assert_eq!(src, NodeId(1));
                assert_eq!(bytes as usize, pkt.wire_size());
                assert_eq!(sent_at, EmuTime::from_millis(10));
                assert_eq!(received_at, EmuTime::from_millis(12));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accessors() {
        let f =
            TrafficRecord::Forward { id: PacketId(1), to: NodeId(2), at: EmuTime::from_secs(3) };
        assert_eq!(f.packet_id(), PacketId(1));
        assert_eq!(f.at(), EmuTime::from_secs(3));
        let d = TrafficRecord::Drop {
            id: PacketId(2),
            to: NodeId(3),
            at: EmuTime::from_secs(4),
            reason: DropReason::Loss,
        };
        assert_eq!(d.packet_id(), PacketId(2));
        assert_eq!(d.at(), EmuTime::from_secs(4));
    }

    #[test]
    fn records_roundtrip_through_codec() {
        let pkt = sample_packet();
        let recs = vec![
            TrafficRecord::ingress(&pkt, EmuTime::from_millis(12)),
            TrafficRecord::Forward {
                id: PacketId(42),
                to: NodeId(2),
                at: EmuTime::from_millis(13),
            },
            TrafficRecord::Drop {
                id: PacketId(42),
                to: NodeId(3),
                at: EmuTime::from_millis(13),
                reason: DropReason::NoRoute,
            },
        ];
        for r in recs {
            let bytes = poem_proto::to_bytes(&r).unwrap();
            assert_eq!(poem_proto::from_bytes::<TrafficRecord>(&bytes).unwrap(), r);
        }
        let sr = SceneRecord::new(EmuTime::from_secs(1), SceneOp::RemoveNode { id: NodeId(7) });
        let bytes = poem_proto::to_bytes(&sr).unwrap();
        assert_eq!(poem_proto::from_bytes::<SceneRecord>(&bytes).unwrap(), sr);
    }

    #[test]
    fn metrics_record_roundtrips_and_looks_up() {
        let mr = MetricsRecord {
            at: EmuTime::from_secs(5),
            counters: vec![
                ("poem_ingest_packets_total".into(), 120),
                ("poem_drops_total{reason=\"loss\"}".into(), 7),
            ],
            gauges: vec![("poem_schedule_depth".into(), -1)],
        };
        let bytes = poem_proto::to_bytes(&mr).unwrap();
        assert_eq!(poem_proto::from_bytes::<MetricsRecord>(&bytes).unwrap(), mr);
        assert_eq!(mr.counter("poem_ingest_packets_total"), Some(120));
        assert_eq!(mr.counter("nope"), None);
        assert_eq!(mr.gauge("poem_schedule_depth"), Some(-1));
    }
}
