//! Record schemas — the "tables" of the paper's database.

use poem_core::packet::Destination;
use poem_core::scene::SceneOp;
use poem_core::{ChannelId, EmuPacket, EmuTime, NodeId, PacketId};
use serde::{Deserialize, Serialize};

/// Why a packet copy was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The link-model loss draw fired (§3.2 step 3).
    Loss,
    /// The destination was not a neighbor of the source on the packet's
    /// channel (out of range, wrong channel, or removed).
    NoRoute,
    /// The destination client was not connected when the forward fired.
    Disconnected,
    /// A MAC-layer collision destroyed the reception (optional MAC models,
    /// a §7 future-work extension).
    Collision,
}

/// One row of the traffic log.
///
/// Each packet produces one `Ingress` row when the server receives it, and
/// one `Forward` or `Drop` row per considered destination. The `id`
/// correlates the legs (step 7: "the complete information of every
/// incoming/outgoing packet").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficRecord {
    /// The server received a packet from its originating client.
    Ingress {
        /// Packet id.
        id: PacketId,
        /// Originating VMN.
        src: NodeId,
        /// Link-layer destination.
        dst: Destination,
        /// Transmission channel.
        channel: ChannelId,
        /// Wire size, bytes.
        bytes: u32,
        /// The client-side (parallel) timestamp.
        sent_at: EmuTime,
        /// Server emulation time at reception — under serial server-side
        /// time-stamping this is all a centralized emulator has; PoEm
        /// records both so the recording error is itself measurable.
        received_at: EmuTime,
    },
    /// A copy was forwarded to `to` at `at`.
    Forward {
        /// Packet id.
        id: PacketId,
        /// Receiving VMN.
        to: NodeId,
        /// Emulation time the forward fired (§3.2 step 6).
        at: EmuTime,
    },
    /// A copy destined to `to` was dropped.
    Drop {
        /// Packet id.
        id: PacketId,
        /// Intended receiver.
        to: NodeId,
        /// Emulation time of the decision.
        at: EmuTime,
        /// Cause.
        reason: DropReason,
    },
}

impl TrafficRecord {
    /// Builds the `Ingress` row for a received packet.
    pub fn ingress(pkt: &EmuPacket, received_at: EmuTime) -> Self {
        TrafficRecord::Ingress {
            id: pkt.id,
            src: pkt.src,
            dst: pkt.dst,
            channel: pkt.channel,
            bytes: pkt.wire_size() as u32,
            sent_at: pkt.sent_at,
            received_at,
        }
    }

    /// The packet id the record refers to.
    pub fn packet_id(&self) -> PacketId {
        match *self {
            TrafficRecord::Ingress { id, .. }
            | TrafficRecord::Forward { id, .. }
            | TrafficRecord::Drop { id, .. } => id,
        }
    }

    /// The emulation time of the event (client stamp for ingress).
    pub fn at(&self) -> EmuTime {
        match *self {
            TrafficRecord::Ingress { sent_at, .. } => sent_at,
            TrafficRecord::Forward { at, .. } | TrafficRecord::Drop { at, .. } => at,
        }
    }
}

/// One periodic observability snapshot row (§3.2 step 7 extended): the
/// server's metrics thread flattens a `poem-obs` snapshot into the record
/// log so post-emulation analysis can plot pipeline health (ingest rate,
/// drops, schedule depth) against the traffic and scene logs on the same
/// emulation-time axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRecord {
    /// Emulation time the snapshot was taken.
    pub at: EmuTime,
    /// Counter values by metric name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by metric name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram distributions by metric name (scan lag, wake-up error,
    /// event lag, …), so replay can reconstruct latency quantiles per
    /// snapshot interval, not just end-of-run.
    pub histograms: Vec<(String, HistogramRow)>,
}

impl MetricsRecord {
    /// Looks a counter up by its exact metric name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a gauge up by its exact metric name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks a histogram up by its exact metric name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramRow> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// A serializable histogram distribution, mirroring
/// [`poem_obs::HistogramSnapshot`] field for field so a logged row can be
/// queried with the same quantile arithmetic the live registry uses.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Inclusive upper bucket bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; one more entry than `bounds` (overflow).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl From<&poem_obs::HistogramSnapshot> for HistogramRow {
    fn from(h: &poem_obs::HistogramSnapshot) -> Self {
        HistogramRow {
            bounds: h.bounds.clone(),
            buckets: h.buckets.clone(),
            count: h.count,
            sum: h.sum,
        }
    }
}

impl HistogramRow {
    /// The live snapshot view of this row, giving access to
    /// [`poem_obs::HistogramSnapshot::quantile`] and `mean`.
    pub fn as_snapshot(&self) -> poem_obs::HistogramSnapshot {
        poem_obs::HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.clone(),
            count: self.count,
            sum: self.sum,
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`None` when empty) — delegates to the obs-side arithmetic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.as_snapshot().quantile(q)
    }
}

/// One row of the scene log: a timestamped scene operation.
///
/// The server appends a row for every applied [`SceneOp`] — interactive
/// ops and the periodic position updates produced by mobility integration
/// alike — so replay is an exact re-application of the log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneRecord {
    /// When the op took effect.
    pub at: EmuTime,
    /// The operation.
    pub op: SceneOp,
}

impl SceneRecord {
    /// Builds a row.
    pub fn new(at: EmuTime, op: SceneOp) -> Self {
        SceneRecord { at, op }
    }
}

/// One row of the fault log: a `poem-chaos` injection event, stamped with
/// the emulation time it acted so post-emulation analysis can correlate
/// faults against the traffic and scene logs on the same time axis.
///
/// Wire faults log one row per *occurrence* (each mangled frame);
/// transport, scene and clock faults log one row per injection (and one
/// per restore, where the fault has a restore leg).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultRecord {
    /// A wire-layer fault fired on a node's byte stream.
    Wire {
        /// When it fired.
        at: EmuTime,
        /// Whose stream.
        node: NodeId,
        /// Which wire fault (`wire_corrupt`, `wire_truncate`,
        /// `wire_duplicate`, `wire_reorder`).
        action: String,
        /// Bytes in the affected frame.
        bytes: u32,
    },
    /// A transport-layer fault was injected against a client connection.
    Transport {
        /// When it was injected.
        at: EmuTime,
        /// Whose connection.
        node: NodeId,
        /// Which transport fault (`disconnect`, `stall`, `slow_reader`,
        /// or a `… release` restore event).
        action: String,
    },
    /// A scene-layer fault changed the scene.
    Scene {
        /// When it was injected.
        at: EmuTime,
        /// Which scene fault (`link_flap`, `crash`, `jam`, or a
        /// `… restore` event).
        action: String,
    },
    /// A clock-layer fault perturbed a node's view of time.
    Clock {
        /// When it was injected.
        at: EmuTime,
        /// Whose clock.
        node: NodeId,
        /// Skew offset, or jitter standard deviation, in nanoseconds.
        offset_ns: i64,
    },
}

impl FaultRecord {
    /// The emulation time of the event.
    pub fn at(&self) -> EmuTime {
        match *self {
            FaultRecord::Wire { at, .. }
            | FaultRecord::Transport { at, .. }
            | FaultRecord::Scene { at, .. }
            | FaultRecord::Clock { at, .. } => at,
        }
    }

    /// The fault layer: `wire`, `transport`, `scene` or `clock`.
    pub fn layer(&self) -> &'static str {
        match self {
            FaultRecord::Wire { .. } => "wire",
            FaultRecord::Transport { .. } => "transport",
            FaultRecord::Scene { .. } => "scene",
            FaultRecord::Clock { .. } => "clock",
        }
    }

    /// The node the event names, when it names one.
    pub fn node(&self) -> Option<NodeId> {
        match *self {
            FaultRecord::Wire { node, .. }
            | FaultRecord::Transport { node, .. }
            | FaultRecord::Clock { node, .. } => Some(node),
            FaultRecord::Scene { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::packet::Destination;
    use poem_core::RadioId;

    fn sample_packet() -> EmuPacket {
        EmuPacket::new(
            PacketId(42),
            NodeId(1),
            Destination::Unicast(NodeId(2)),
            ChannelId(1),
            RadioId(0),
            EmuTime::from_millis(10),
            vec![0u8; 100],
        )
    }

    #[test]
    fn ingress_captures_both_timestamps() {
        let pkt = sample_packet();
        let rec = TrafficRecord::ingress(&pkt, EmuTime::from_millis(12));
        match rec {
            TrafficRecord::Ingress { id, src, bytes, sent_at, received_at, .. } => {
                assert_eq!(id, PacketId(42));
                assert_eq!(src, NodeId(1));
                assert_eq!(bytes as usize, pkt.wire_size());
                assert_eq!(sent_at, EmuTime::from_millis(10));
                assert_eq!(received_at, EmuTime::from_millis(12));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn accessors() {
        let f =
            TrafficRecord::Forward { id: PacketId(1), to: NodeId(2), at: EmuTime::from_secs(3) };
        assert_eq!(f.packet_id(), PacketId(1));
        assert_eq!(f.at(), EmuTime::from_secs(3));
        let d = TrafficRecord::Drop {
            id: PacketId(2),
            to: NodeId(3),
            at: EmuTime::from_secs(4),
            reason: DropReason::Loss,
        };
        assert_eq!(d.packet_id(), PacketId(2));
        assert_eq!(d.at(), EmuTime::from_secs(4));
    }

    #[test]
    fn records_roundtrip_through_codec() {
        let pkt = sample_packet();
        let recs = vec![
            TrafficRecord::ingress(&pkt, EmuTime::from_millis(12)),
            TrafficRecord::Forward {
                id: PacketId(42),
                to: NodeId(2),
                at: EmuTime::from_millis(13),
            },
            TrafficRecord::Drop {
                id: PacketId(42),
                to: NodeId(3),
                at: EmuTime::from_millis(13),
                reason: DropReason::NoRoute,
            },
        ];
        for r in recs {
            let bytes = poem_proto::to_bytes(&r).unwrap();
            assert_eq!(poem_proto::from_bytes::<TrafficRecord>(&bytes).unwrap(), r);
        }
        let sr = SceneRecord::new(EmuTime::from_secs(1), SceneOp::RemoveNode { id: NodeId(7) });
        let bytes = poem_proto::to_bytes(&sr).unwrap();
        assert_eq!(poem_proto::from_bytes::<SceneRecord>(&bytes).unwrap(), sr);
    }

    #[test]
    fn fault_records_roundtrip_and_classify() {
        let recs = [
            FaultRecord::Wire {
                at: EmuTime::from_millis(5),
                node: NodeId(1),
                action: "wire_corrupt".into(),
                bytes: 64,
            },
            FaultRecord::Transport {
                at: EmuTime::from_millis(6),
                node: NodeId(2),
                action: "stall".into(),
            },
            FaultRecord::Scene { at: EmuTime::from_millis(7), action: "jam ch3".into() },
            FaultRecord::Clock { at: EmuTime::from_millis(8), node: NodeId(3), offset_ns: -500 },
        ];
        let layers: Vec<&str> = recs.iter().map(|r| r.layer()).collect();
        assert_eq!(layers, ["wire", "transport", "scene", "clock"]);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.at(), EmuTime::from_millis(5 + i as u64));
            let bytes = poem_proto::to_bytes(r).unwrap();
            assert_eq!(&poem_proto::from_bytes::<FaultRecord>(&bytes).unwrap(), r);
        }
        assert_eq!(recs[0].node(), Some(NodeId(1)));
        assert_eq!(recs[2].node(), None);
    }

    #[test]
    fn metrics_record_roundtrips_and_looks_up() {
        let mr = MetricsRecord {
            at: EmuTime::from_secs(5),
            counters: vec![
                ("poem_ingest_packets_total".into(), 120),
                ("poem_drops_total{reason=\"loss\"}".into(), 7),
            ],
            gauges: vec![("poem_schedule_depth".into(), -1)],
            histograms: vec![(
                "poem_scan_lag_ns".into(),
                HistogramRow {
                    bounds: vec![1_000, 1_000_000],
                    buckets: vec![3, 1, 0],
                    count: 4,
                    sum: 5_000,
                },
            )],
        };
        let bytes = poem_proto::to_bytes(&mr).unwrap();
        assert_eq!(poem_proto::from_bytes::<MetricsRecord>(&bytes).unwrap(), mr);
        assert_eq!(mr.counter("poem_ingest_packets_total"), Some(120));
        assert_eq!(mr.counter("nope"), None);
        assert_eq!(mr.gauge("poem_schedule_depth"), Some(-1));
        let h = mr.histogram("poem_scan_lag_ns").unwrap();
        assert_eq!(h.count, 4);
        // 3 of 4 samples in the ≤ 1 µs bucket → the median lands there.
        assert_eq!(h.quantile(0.5), Some(1_000));
        assert_eq!(h.quantile(1.0), Some(1_000_000));
        assert!(mr.histogram("nope").is_none());
    }
}
