//! # poem-record — traffic/scene recording and post-emulation replay
//!
//! PoEm's §3.2 step 7: "one recording thread collects the complete
//! information of every incoming/outgoing packet to the database for later
//! statistics and replay. Another recording thread gathers the detailed
//! information of the varying scene for post-emulation replay."
//!
//! The paper logs to a SQL database over ODBC; this crate is the embedded
//! substitute (see DESIGN.md): typed, append-only logs with file
//! persistence in the workspace's own binary codec, a query layer for the
//! statistics the evaluation needs, and a [`replay`] engine that
//! reconstructs the scene at any emulation time and steps through the run
//! chronologically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod query;
pub mod records;
pub mod replay;
pub mod scenestats;
pub mod segment;
pub mod store;

pub use query::{CopyCounts, FaultCounts, FaultQuery, TrafficQuery};
pub use records::{
    DropReason, FaultRecord, HistogramRow, MetricsRecord, SceneRecord, TrafficRecord,
};
pub use replay::ReplayEngine;
pub use scenestats::{OpHistogram, SceneStats};
pub use segment::{
    RecordSpool, SegmentConfig, SegmentedReader, SegmentedStore, SpoolRecord, SpoolStats,
};
pub use store::{LogStore, Recorder};
