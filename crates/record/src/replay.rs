//! Post-emulation replay (§3.2 step 7, Table 1's "Post-emulation Replay").
//!
//! The scene log records every applied `SceneOp` — interactive ops *and*
//! the periodic position updates the server emits while integrating
//! mobility — so replay is exact: re-applying the log's prefix up to time
//! `t` reconstructs the scene as it stood at `t`, with no re-randomization.
//!
//! [`ReplayEngine`] supports random access ([`ReplayEngine::scene_at`]) and
//! chronological stepping ([`ReplayEngine::player`]), and can merge the
//! traffic log into one timeline ([`ReplayEngine::timeline`]) for the
//! GUI-replacement renderer.

use crate::records::{SceneRecord, TrafficRecord};
use poem_core::scene::{Scene, SceneError};
use poem_core::EmuTime;

/// A replayable emulation run.
#[derive(Debug, Clone, Default)]
pub struct ReplayEngine {
    /// Scene ops sorted by time (stable for equal times).
    scene_log: Vec<SceneRecord>,
}

/// One event on the merged replay timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayEvent {
    /// A scene change.
    Scene(SceneRecord),
    /// A traffic event.
    Traffic(TrafficRecord),
}

impl ReplayEvent {
    /// Event time.
    pub fn at(&self) -> EmuTime {
        match self {
            ReplayEvent::Scene(s) => s.at,
            ReplayEvent::Traffic(t) => t.at(),
        }
    }
}

impl ReplayEngine {
    /// Builds an engine from a scene log (sorted internally).
    pub fn new(mut scene_log: Vec<SceneRecord>) -> Self {
        scene_log.sort_by_key(|r| r.at);
        ReplayEngine { scene_log }
    }

    /// Number of scene ops.
    pub fn len(&self) -> usize {
        self.scene_log.len()
    }

    /// True with no ops.
    pub fn is_empty(&self) -> bool {
        self.scene_log.is_empty()
    }

    /// The recorded ops, time-ordered.
    pub fn ops(&self) -> &[SceneRecord] {
        &self.scene_log
    }

    /// The time span `(first, last)` covered by the log, if non-empty.
    pub fn span(&self) -> Option<(EmuTime, EmuTime)> {
        Some((self.scene_log.first()?.at, self.scene_log.last()?.at))
    }

    /// Reconstructs the scene as of time `t` (ops with `at ≤ t` applied).
    pub fn scene_at(&self, t: EmuTime) -> Result<Scene, SceneError> {
        let mut scene = Scene::new();
        for rec in self.scene_log.iter().take_while(|r| r.at <= t) {
            scene.apply(rec.at, &rec.op)?;
        }
        Ok(scene)
    }

    /// A stepping player starting before the first op.
    pub fn player(&self) -> Player<'_> {
        Player { engine: self, scene: Scene::new(), cursor: 0 }
    }

    /// Merges this scene log with a traffic log into one time-ordered
    /// timeline (stable: scene ops sort before traffic at equal times).
    pub fn timeline(&self, traffic: &[TrafficRecord]) -> Vec<ReplayEvent> {
        let mut events: Vec<ReplayEvent> = self
            .scene_log
            .iter()
            .cloned()
            .map(ReplayEvent::Scene)
            .chain(traffic.iter().cloned().map(ReplayEvent::Traffic))
            .collect();
        events.sort_by_key(|e| {
            let tie = match e {
                ReplayEvent::Scene(_) => 0u8,
                ReplayEvent::Traffic(_) => 1u8,
            };
            (e.at(), tie)
        });
        events
    }
}

/// Chronological stepping over a replay.
#[derive(Debug)]
pub struct Player<'a> {
    engine: &'a ReplayEngine,
    scene: Scene,
    cursor: usize,
}

impl<'a> Player<'a> {
    /// The scene in its current replay state.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The time of the next op, if any remain.
    pub fn next_at(&self) -> Option<EmuTime> {
        self.engine.scene_log.get(self.cursor).map(|r| r.at)
    }

    /// Applies the next op, returning it; `None` at the end.
    pub fn step(&mut self) -> Result<Option<&SceneRecord>, SceneError> {
        let Some(rec) = self.engine.scene_log.get(self.cursor) else {
            return Ok(None);
        };
        self.scene.apply(rec.at, &rec.op)?;
        self.cursor += 1;
        Ok(Some(rec))
    }

    /// Fast-forwards through every op with `at ≤ t`. Returns the count
    /// applied.
    pub fn seek(&mut self, t: EmuTime) -> Result<usize, SceneError> {
        let mut n = 0;
        while self.next_at().is_some_and(|at| at <= t) {
            self.step()?;
            n += 1;
        }
        Ok(n)
    }

    /// Ops already applied.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// True when every op has been applied.
    pub fn finished(&self) -> bool {
        self.cursor >= self.engine.scene_log.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::radio::RadioConfig;
    use poem_core::scene::SceneOp;
    use poem_core::{ChannelId, NodeId, PacketId, Point};

    fn add_op(id: u32, x: f64) -> SceneOp {
        SceneOp::AddNode {
            id: NodeId(id),
            pos: Point::new(x, 0.0),
            radios: RadioConfig::single(ChannelId(1), 100.0),
            mobility: MobilityModel::Stationary,
            link: LinkParams::ideal(1e6),
        }
    }

    fn sample_log() -> Vec<SceneRecord> {
        vec![
            SceneRecord::new(EmuTime::from_secs(0), add_op(1, 0.0)),
            SceneRecord::new(EmuTime::from_secs(0), add_op(2, 50.0)),
            SceneRecord::new(
                EmuTime::from_secs(5),
                SceneOp::MoveNode { id: NodeId(2), pos: Point::new(300.0, 0.0) },
            ),
            SceneRecord::new(EmuTime::from_secs(10), SceneOp::RemoveNode { id: NodeId(2) }),
        ]
    }

    #[test]
    fn scene_at_reconstructs_prefix() {
        let engine = ReplayEngine::new(sample_log());
        let s0 = engine.scene_at(EmuTime::from_secs(0)).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0.node(NodeId(2)).unwrap().pos, Point::new(50.0, 0.0));
        let s5 = engine.scene_at(EmuTime::from_secs(5)).unwrap();
        assert_eq!(s5.node(NodeId(2)).unwrap().pos, Point::new(300.0, 0.0));
        let s10 = engine.scene_at(EmuTime::from_secs(10)).unwrap();
        assert_eq!(s10.len(), 1);
        assert!(s10.node(NodeId(2)).is_none());
    }

    #[test]
    fn scene_before_first_op_is_empty() {
        let mut log = sample_log();
        for r in &mut log {
            r.at += poem_core::EmuDuration::from_secs(100);
        }
        let engine = ReplayEngine::new(log);
        let s = engine.scene_at(EmuTime::from_secs(1)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn unsorted_log_is_sorted_on_construction() {
        let mut log = sample_log();
        log.reverse();
        let engine = ReplayEngine::new(log);
        assert_eq!(engine.span().unwrap(), (EmuTime::from_secs(0), EmuTime::from_secs(10)));
        // Replays cleanly despite the reversed input order.
        let s = engine.scene_at(EmuTime::from_secs(20)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn player_steps_in_order() {
        let engine = ReplayEngine::new(sample_log());
        let mut p = engine.player();
        assert_eq!(p.next_at(), Some(EmuTime::from_secs(0)));
        let mut count = 0;
        while let Some(rec) = p.step().unwrap() {
            assert!(rec.at <= EmuTime::from_secs(10));
            count += 1;
        }
        assert_eq!(count, 4);
        assert!(p.finished());
        assert_eq!(p.scene().len(), 1);
    }

    #[test]
    fn player_seek() {
        let engine = ReplayEngine::new(sample_log());
        let mut p = engine.player();
        assert_eq!(p.seek(EmuTime::from_secs(5)).unwrap(), 3);
        assert_eq!(p.scene().node(NodeId(2)).unwrap().pos, Point::new(300.0, 0.0));
        assert_eq!(p.seek(EmuTime::from_secs(5)).unwrap(), 0, "idempotent");
        assert_eq!(p.position(), 3);
    }

    #[test]
    fn timeline_merges_sorted() {
        let engine = ReplayEngine::new(sample_log());
        let traffic = vec![
            TrafficRecord::Forward { id: PacketId(1), to: NodeId(2), at: EmuTime::from_secs(3) },
            TrafficRecord::Forward { id: PacketId(2), to: NodeId(2), at: EmuTime::from_secs(7) },
        ];
        let tl = engine.timeline(&traffic);
        assert_eq!(tl.len(), 6);
        for w in tl.windows(2) {
            assert!(w[0].at() <= w[1].at(), "timeline out of order");
        }
        // Traffic event lands between the move (5 s) and removal (10 s).
        assert!(matches!(&tl[4], ReplayEvent::Traffic(_)));
    }

    #[test]
    fn empty_engine() {
        let engine = ReplayEngine::new(Vec::new());
        assert!(engine.is_empty());
        assert!(engine.span().is_none());
        assert!(engine.scene_at(EmuTime::from_secs(1)).unwrap().is_empty());
        let mut p = engine.player();
        assert!(p.step().unwrap().is_none());
    }
}
