//! Append-only log storage with file persistence.
//!
//! [`LogStore`] is the generic typed log (the paper's database table);
//! [`Recorder`] bundles the traffic and scene logs behind a thread-safe
//! facade that the server's recording threads append to concurrently.
//!
//! On-disk format: magic `POEMLOG1`, `u64` record count, then one
//! `u32`-length-prefixed codec frame per record. Loading verifies the
//! magic, the count, and every frame; a truncated or corrupt file is a
//! hard error, never a silently shorter log.

use crate::records::{FaultRecord, MetricsRecord, SceneRecord, TrafficRecord};
use parking_lot::Mutex;
use poem_obs::{Counter, Registry};
use poem_proto::{from_bytes, to_bytes};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"POEMLOG1";

/// A typed append-only log.
#[derive(Debug, Clone)]
pub struct LogStore<T> {
    items: Vec<T>,
}

impl<T> Default for LogStore<T> {
    fn default() -> Self {
        LogStore { items: Vec::new() }
    }
}

impl<T> LogStore<T> {
    /// An empty log.
    pub fn new() -> Self {
        LogStore { items: Vec::new() }
    }

    /// Appends one record.
    pub fn append(&mut self, item: T) {
        self.items.push(item);
    }

    /// All records, in append order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Consumes the store, returning the records.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Serialize> LogStore<T> {
    /// Serializes the log to a writer.
    pub fn save_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.items.len() as u64).to_le_bytes())?;
        for item in &self.items {
            let body = to_bytes(item).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            w.write_all(&(body.len() as u32).to_le_bytes())?;
            w.write_all(&body)?;
        }
        w.flush()
    }

    /// Saves the log to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.save_to(&mut w)
    }
}

impl<T: DeserializeOwned> LogStore<T> {
    /// Deserializes a log from a reader, verifying integrity.
    pub fn load_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad log magic"));
        }
        let mut count_bytes = [0u8; 8];
        r.read_exact(&mut count_bytes)?;
        let count = u64::from_le_bytes(count_bytes) as usize;
        let mut items = Vec::with_capacity(count.min(1 << 20));
        let mut buf = Vec::new();
        for _ in 0..count {
            let mut len_bytes = [0u8; 4];
            r.read_exact(&mut len_bytes)?;
            let len = u32::from_le_bytes(len_bytes) as usize;
            buf.resize(len, 0);
            r.read_exact(&mut buf)?;
            items
                .push(from_bytes(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?);
        }
        // Trailing garbage means the file is not what it claims to be.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "trailing bytes in log"));
        }
        Ok(LogStore { items })
    }

    /// Loads a log from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        Self::load_from(&mut r)
    }
}

impl<T> FromIterator<T> for LogStore<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        LogStore { items: iter.into_iter().collect() }
    }
}

/// Thread-safe bundle of the traffic, scene and metrics logs — the sink
/// the server's recording threads (§3.2 step 7) append to.
///
/// The recorder keeps its own `poem-obs` counters (records buffered per
/// log, records flushed to disk); [`Recorder::register_metrics`] attaches
/// them to a shared registry so they show up in the server's snapshot.
#[derive(Debug, Default)]
pub struct Recorder {
    traffic: Mutex<LogStore<TrafficRecord>>,
    scene: Mutex<LogStore<SceneRecord>>,
    metrics: Mutex<LogStore<MetricsRecord>>,
    faults: Mutex<LogStore<FaultRecord>>,
    traffic_buffered: Arc<Counter>,
    scene_buffered: Arc<Counter>,
    fault_buffered: Arc<Counter>,
    records_written: Arc<Counter>,
    /// Optional disk spool ([`Recorder::attach_spool`]): every record is
    /// mirrored to the segmented store via a non-blocking `offer`, so a
    /// slow disk can only ever *drop* spool copies, never backpressure
    /// the recording threads. The in-memory logs above stay authoritative
    /// for replay.
    spool: std::sync::OnceLock<Arc<crate::segment::RecordSpool>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a disk spool: from now on every record is mirrored (via a
    /// bounded, never-blocking queue) to its segmented store. Call once,
    /// before recording starts; a second spool is rejected.
    pub fn attach_spool(
        &self,
        spool: Arc<crate::segment::RecordSpool>,
    ) -> Result<(), &'static str> {
        self.spool.set(spool).map_err(|_| "a spool is already attached")
    }

    /// The attached spool, if any.
    pub fn spool(&self) -> Option<&Arc<crate::segment::RecordSpool>> {
        self.spool.get()
    }

    /// Appends a traffic record.
    pub fn record_traffic(&self, rec: TrafficRecord) {
        if let Some(s) = self.spool.get() {
            s.offer(crate::segment::SpoolRecord::Traffic(rec.clone()));
        }
        self.traffic.lock().append(rec);
        self.traffic_buffered.inc();
    }

    /// Appends a scene record.
    pub fn record_scene(&self, rec: SceneRecord) {
        if let Some(s) = self.spool.get() {
            s.offer(crate::segment::SpoolRecord::Scene(rec.clone()));
        }
        self.scene.lock().append(rec);
        self.scene_buffered.inc();
    }

    /// Appends a metrics snapshot record.
    pub fn record_metrics(&self, rec: MetricsRecord) {
        if let Some(s) = self.spool.get() {
            s.offer(crate::segment::SpoolRecord::Metrics(rec.clone()));
        }
        self.metrics.lock().append(rec);
    }

    /// Appends a fault-injection record.
    pub fn record_fault(&self, rec: FaultRecord) {
        if let Some(s) = self.spool.get() {
            s.offer(crate::segment::SpoolRecord::Fault(rec.clone()));
        }
        self.faults.lock().append(rec);
        self.fault_buffered.inc();
    }

    /// Snapshot of the traffic log.
    pub fn traffic(&self) -> Vec<TrafficRecord> {
        self.traffic.lock().items().to_vec()
    }

    /// Snapshot of the scene log.
    pub fn scene(&self) -> Vec<SceneRecord> {
        self.scene.lock().items().to_vec()
    }

    /// Snapshot of the metrics log.
    pub fn metrics(&self) -> Vec<MetricsRecord> {
        self.metrics.lock().items().to_vec()
    }

    /// Snapshot of the fault log.
    pub fn faults(&self) -> Vec<FaultRecord> {
        self.faults.lock().items().to_vec()
    }

    /// Current record counts `(traffic, scene)`.
    pub fn counts(&self) -> (usize, usize) {
        (self.traffic.lock().len(), self.scene.lock().len())
    }

    /// Attaches the recorder's own instruments to `registry` under the
    /// `poem_recorder_*` names.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "poem_recorder_traffic_records_total",
            Arc::clone(&self.traffic_buffered),
        );
        registry.register_counter(
            "poem_recorder_scene_records_total",
            Arc::clone(&self.scene_buffered),
        );
        registry.register_counter(
            "poem_recorder_fault_records_total",
            Arc::clone(&self.fault_buffered),
        );
        registry.register_counter(
            "poem_recorder_records_written_total",
            Arc::clone(&self.records_written),
        );
    }

    /// Saves all logs: `<stem>.traffic.poemlog`, `<stem>.scene.poemlog`,
    /// `<stem>.metrics.poemlog` and `<stem>.faults.poemlog`.
    pub fn save(&self, stem: impl AsRef<Path>) -> io::Result<()> {
        let stem = stem.as_ref();
        let (traffic, scene, metrics, faults) =
            (self.traffic.lock(), self.scene.lock(), self.metrics.lock(), self.faults.lock());
        traffic.save(stem.with_extension("traffic.poemlog"))?;
        scene.save(stem.with_extension("scene.poemlog"))?;
        metrics.save(stem.with_extension("metrics.poemlog"))?;
        faults.save(stem.with_extension("faults.poemlog"))?;
        self.records_written
            .add((traffic.len() + scene.len() + metrics.len() + faults.len()) as u64);
        Ok(())
    }

    /// Loads logs saved by [`Recorder::save`]. Missing metrics or fault
    /// files are tolerated (logs written before those layers existed).
    pub fn load(stem: impl AsRef<Path>) -> io::Result<Self> {
        let stem = stem.as_ref();
        let traffic = LogStore::load(stem.with_extension("traffic.poemlog"))?;
        let scene = LogStore::load(stem.with_extension("scene.poemlog"))?;
        let metrics = match LogStore::load(stem.with_extension("metrics.poemlog")) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::NotFound => LogStore::new(),
            Err(e) => return Err(e),
        };
        let faults = match LogStore::load(stem.with_extension("faults.poemlog")) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => LogStore::new(),
            Err(e) => return Err(e),
        };
        Ok(Recorder {
            traffic: Mutex::new(traffic),
            scene: Mutex::new(scene),
            metrics: Mutex::new(metrics),
            faults: Mutex::new(faults),
            ..Recorder::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::DropReason;
    use poem_core::{EmuTime, NodeId, PacketId};
    use std::io::Cursor;
    use std::sync::Arc;

    fn sample_records(n: u64) -> Vec<TrafficRecord> {
        (0..n)
            .map(|i| TrafficRecord::Forward {
                id: PacketId(i),
                to: NodeId((i % 5) as u32),
                at: EmuTime::from_micros(i * 100),
            })
            .collect()
    }

    #[test]
    fn store_roundtrips_through_memory() {
        let store: LogStore<TrafficRecord> = sample_records(100).into_iter().collect();
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded: LogStore<TrafficRecord> = LogStore::load_from(&mut Cursor::new(buf)).unwrap();
        assert_eq!(loaded.items(), store.items());
    }

    #[test]
    fn store_roundtrips_through_file() {
        let dir = std::env::temp_dir().join(format!("poemlog-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.poemlog");
        let store: LogStore<TrafficRecord> = sample_records(10).into_iter().collect();
        store.save(&path).unwrap();
        let loaded: LogStore<TrafficRecord> = LogStore::load(&path).unwrap();
        assert_eq!(loaded.items(), store.items());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_roundtrips() {
        let store: LogStore<TrafficRecord> = LogStore::new();
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded: LogStore<TrafficRecord> = LogStore::load_from(&mut Cursor::new(buf)).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        LogStore::<TrafficRecord>::new().save_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(LogStore::<TrafficRecord>::load_from(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let store: LogStore<TrafficRecord> = sample_records(5).into_iter().collect();
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(LogStore::<TrafficRecord>::load_from(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let store: LogStore<TrafficRecord> = sample_records(2).into_iter().collect();
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        buf.push(0);
        assert!(LogStore::<TrafficRecord>::load_from(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn recorder_is_concurrent() {
        let rec = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    rec.record_traffic(TrafficRecord::Drop {
                        id: PacketId(t * 1000 + i),
                        to: NodeId(1),
                        at: EmuTime::from_nanos(i),
                        reason: DropReason::Loss,
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.counts().0, 4000);
    }

    #[test]
    fn recorder_counts_buffered_records_in_registry() {
        let rec = Recorder::new();
        let registry = poem_obs::Registry::new();
        rec.register_metrics(&registry);
        for r in sample_records(3) {
            rec.record_traffic(r);
        }
        rec.record_scene(crate::records::SceneRecord::new(
            EmuTime::from_secs(1),
            poem_core::scene::SceneOp::RemoveNode { id: NodeId(3) },
        ));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("poem_recorder_traffic_records_total"), Some(3));
        assert_eq!(snap.counter("poem_recorder_scene_records_total"), Some(1));
        assert_eq!(snap.counter("poem_recorder_records_written_total"), Some(0));
    }

    #[test]
    fn recorder_metrics_log_roundtrips_and_missing_file_tolerated() {
        let dir = std::env::temp_dir().join(format!("poemmet-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Recorder::new();
        rec.record_metrics(crate::records::MetricsRecord {
            at: EmuTime::from_secs(2),
            counters: vec![("poem_ingest_packets_total".into(), 4)],
            gauges: vec![],
            histograms: vec![(
                "poem_scan_lag_ns".into(),
                crate::records::HistogramRow {
                    bounds: vec![1_000],
                    buckets: vec![1, 0],
                    count: 1,
                    sum: 10,
                },
            )],
        });
        let stem = dir.join("run-metrics");
        rec.save(&stem).unwrap();
        let loaded = Recorder::load(&stem).unwrap();
        assert_eq!(loaded.metrics(), rec.metrics());
        // Pre-observability logs have no metrics file: load still succeeds.
        std::fs::remove_file(stem.with_extension("metrics.poemlog")).unwrap();
        let legacy = Recorder::load(&stem).unwrap();
        assert!(legacy.metrics().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorder_fault_log_roundtrips_and_missing_file_tolerated() {
        let dir = std::env::temp_dir().join(format!("poemfault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Recorder::new();
        let registry = poem_obs::Registry::new();
        rec.register_metrics(&registry);
        rec.record_fault(crate::records::FaultRecord::Scene {
            at: EmuTime::from_secs(3),
            action: "jam ch1".into(),
        });
        assert_eq!(registry.snapshot().counter("poem_recorder_fault_records_total"), Some(1));
        let stem = dir.join("run-faults");
        rec.save(&stem).unwrap();
        let loaded = Recorder::load(&stem).unwrap();
        assert_eq!(loaded.faults(), rec.faults());
        // Pre-chaos logs have no faults file: load still succeeds.
        std::fs::remove_file(stem.with_extension("faults.poemlog")).unwrap();
        let legacy = Recorder::load(&stem).unwrap();
        assert!(legacy.faults().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorder_save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("poemrec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = Recorder::new();
        for r in sample_records(20) {
            rec.record_traffic(r);
        }
        rec.record_scene(crate::records::SceneRecord::new(
            EmuTime::from_secs(1),
            poem_core::scene::SceneOp::RemoveNode { id: NodeId(3) },
        ));
        let stem = dir.join("run1");
        rec.save(&stem).unwrap();
        let loaded = Recorder::load(&stem).unwrap();
        assert_eq!(loaded.traffic(), rec.traffic());
        assert_eq!(loaded.scene(), rec.scene());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
