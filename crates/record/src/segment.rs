//! Segmented, rotating on-disk record storage with a bounded
//! single-writer spool.
//!
//! The in-memory [`crate::Recorder`] is the determinism-bearing store:
//! replay and the byte-identity contracts read from it. At production
//! scale its logs cannot live in RAM for the whole run, and a synchronous
//! disk write on the ingest path would let a slow disk backpressure the
//! emulation — exactly the failure mode a real-time frontend must not
//! have. This module adds the scaling layer:
//!
//! * [`SegmentedStore`] — an append-only log split across rotating
//!   segment files (`<stem>.00000.poemseg`, `<stem>.00001.poemseg`, …)
//!   plus an offset index (`<stem>.poemidx`) mapping each segment to its
//!   first record sequence number, so a reader can seek to a sequence
//!   without scanning every segment.
//! * [`RecordSpool`] — a bounded queue in front of a single writer
//!   thread. Producers [`RecordSpool::offer`] records without ever
//!   blocking: when the queue is full the record is *dropped and
//!   counted* (`poem_record_spool_dropped_total`), never awaited. The
//!   recorder therefore cannot backpressure ingest, and the drop counter
//!   makes the loss visible instead of silent.
//!
//! Segment file format: magic `POEMSEG1`, then `u32`-length-prefixed
//! codec frames to end-of-file. Unlike [`crate::LogStore`] there is no
//! count header — the index carries authoritative counts for sealed
//! segments, and the *active* (last) segment is read to EOF with a torn
//! trailing frame tolerated, so a crash mid-append loses at most the
//! final partial record.

use crate::records::{FaultRecord, MetricsRecord, SceneRecord, TrafficRecord};
use crossbeam::channel::{bounded, Receiver, Sender};
use poem_obs::{Counter, Gauge, Registry};
use poem_proto::{from_bytes, to_bytes};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

const SEG_MAGIC: &[u8; 8] = b"POEMSEG1";
const IDX_HEADER: &str = "poemidx 1";

/// One record in the unified spool stream. The four typed logs of the
/// in-memory recorder interleave here in arrival order; readers filter
/// by variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpoolRecord {
    /// A traffic-log record.
    Traffic(TrafficRecord),
    /// A scene-log record.
    Scene(SceneRecord),
    /// A metrics-snapshot record.
    Metrics(MetricsRecord),
    /// A fault-injection record.
    Fault(FaultRecord),
}

/// Configuration for a segmented store / spool.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Directory the segment and index files live in (created if absent).
    pub dir: PathBuf,
    /// File-name stem; files are `<stem>.NNNNN.poemseg` + `<stem>.poemidx`.
    pub stem: String,
    /// Records per segment before rotation.
    pub max_segment_records: usize,
    /// Spool queue capacity; a full queue drops (and counts) new records.
    pub queue_capacity: usize,
}

impl SegmentConfig {
    /// A config with production-ish defaults (64 Ki records per segment,
    /// 64 Ki queue slots).
    pub fn new(dir: impl Into<PathBuf>, stem: impl Into<String>) -> Self {
        SegmentConfig {
            dir: dir.into(),
            stem: stem.into(),
            max_segment_records: 64 * 1024,
            queue_capacity: 64 * 1024,
        }
    }
}

/// One index row: a segment and the sequence span it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment number (`<stem>.<seg:05>.poemseg`).
    pub seg: u32,
    /// Sequence number of the segment's first record.
    pub first_seq: u64,
    /// Records in the segment.
    pub records: u64,
}

fn segment_path(dir: &Path, stem: &str, seg: u32) -> PathBuf {
    dir.join(format!("{stem}.{seg:05}.poemseg"))
}

fn index_path(dir: &Path, stem: &str) -> PathBuf {
    dir.join(format!("{stem}.poemidx"))
}

/// The single-writer segmented log. Not thread-safe by itself — the
/// [`RecordSpool`] owns one behind its writer thread; tests drive it
/// directly.
#[derive(Debug)]
pub struct SegmentedStore {
    dir: PathBuf,
    stem: String,
    max_segment_records: usize,
    writer: BufWriter<File>,
    /// Sealed segments, oldest first; the active segment is not listed
    /// until it seals (rotation or [`SegmentedStore::finish`]).
    sealed: Vec<SegmentEntry>,
    active_seg: u32,
    active_first_seq: u64,
    active_records: u64,
}

impl SegmentedStore {
    /// Creates the directory and opens segment 0.
    pub fn create(config: &SegmentConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        let writer = Self::open_segment(&config.dir, &config.stem, 0)?;
        Ok(SegmentedStore {
            dir: config.dir.clone(),
            stem: config.stem.clone(),
            max_segment_records: config.max_segment_records.max(1),
            writer,
            sealed: Vec::new(),
            active_seg: 0,
            active_first_seq: 0,
            active_records: 0,
        })
    }

    fn open_segment(dir: &Path, stem: &str, seg: u32) -> io::Result<BufWriter<File>> {
        let mut w = BufWriter::new(File::create(segment_path(dir, stem, seg))?);
        w.write_all(SEG_MAGIC)?;
        Ok(w)
    }

    /// Appends one record, rotating first when the active segment is full.
    pub fn append(&mut self, rec: &SpoolRecord) -> io::Result<()> {
        if self.active_records as usize >= self.max_segment_records {
            self.rotate()?;
        }
        let body = to_bytes(rec).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.writer.write_all(&(body.len() as u32).to_le_bytes())?;
        self.writer.write_all(&body)?;
        self.active_records += 1;
        Ok(())
    }

    /// Total records appended so far.
    pub fn len(&self) -> u64 {
        self.active_first_seq + self.active_records
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments written so far (sealed + active).
    pub fn segments(&self) -> u32 {
        self.active_seg + 1
    }

    fn seal_active(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.sealed.push(SegmentEntry {
            seg: self.active_seg,
            first_seq: self.active_first_seq,
            records: self.active_records,
        });
        Ok(())
    }

    /// Seals the active segment, rewrites the index and opens the next
    /// segment.
    fn rotate(&mut self) -> io::Result<()> {
        self.seal_active()?;
        self.write_index()?;
        self.active_seg += 1;
        self.active_first_seq += self.active_records;
        self.active_records = 0;
        self.writer = Self::open_segment(&self.dir, &self.stem, self.active_seg)?;
        Ok(())
    }

    /// Rewrites the offset index (write-new-then-rename, so a crash never
    /// leaves a half-written index).
    fn write_index(&mut self) -> io::Result<()> {
        let mut text = String::from(IDX_HEADER);
        text.push('\n');
        for e in &self.sealed {
            text.push_str(&format!("segment {} {} {}\n", e.seg, e.first_seq, e.records));
        }
        let tmp = self.dir.join(format!("{}.poemidx.tmp", self.stem));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, index_path(&self.dir, &self.stem))
    }

    /// Flushes, seals the active segment and writes the final index.
    pub fn finish(mut self) -> io::Result<Vec<SegmentEntry>> {
        self.seal_active()?;
        self.write_index()?;
        Ok(self.sealed)
    }
}

/// Reader over a finished (or crashed) segmented store.
#[derive(Debug)]
pub struct SegmentedReader {
    dir: PathBuf,
    stem: String,
    entries: Vec<SegmentEntry>,
}

impl SegmentedReader {
    /// Opens a store by its index. For a store that crashed before
    /// [`SegmentedStore::finish`], the index lists the sealed segments —
    /// the still-active segment past the last index row is picked up by
    /// scanning for its file.
    pub fn open(dir: impl Into<PathBuf>, stem: impl Into<String>) -> io::Result<Self> {
        let dir = dir.into();
        let stem = stem.into();
        let text = fs::read_to_string(index_path(&dir, &stem))?;
        let mut lines = text.lines();
        if lines.next() != Some(IDX_HEADER) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index header"));
        }
        let mut entries = Vec::new();
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            let (kw, seg, first_seq, records) =
                (parts.next(), parts.next(), parts.next(), parts.next());
            let (Some("segment"), Some(seg), Some(first), Some(recs), None) =
                (kw, seg, first_seq, records, parts.next())
            else {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index row"));
            };
            let row = (|| -> Option<SegmentEntry> {
                Some(SegmentEntry {
                    seg: seg.parse().ok()?,
                    first_seq: first.parse().ok()?,
                    records: recs.parse().ok()?,
                })
            })()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad index numbers"))?;
            entries.push(row);
        }
        // A crashed store: the segment after the last sealed one may exist
        // with an unknown count (read to EOF, torn tail tolerated).
        let next_seg = entries.last().map(|e| e.seg + 1).unwrap_or(0);
        if segment_path(&dir, &stem, next_seg).exists() {
            let first_seq = entries.last().map(|e| e.first_seq + e.records).unwrap_or(0);
            entries.push(SegmentEntry { seg: next_seg, first_seq, records: u64::MAX });
        }
        Ok(SegmentedReader { dir, stem, entries })
    }

    /// The index rows (sealed segments, plus a trailing `records ==
    /// u64::MAX` row for an unsealed active segment after a crash).
    pub fn entries(&self) -> &[SegmentEntry] {
        &self.entries
    }

    fn read_segment(&self, entry: &SegmentEntry) -> io::Result<Vec<SpoolRecord>> {
        let sealed = entry.records != u64::MAX;
        let mut r = BufReader::new(File::open(segment_path(&self.dir, &self.stem, entry.seg))?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SEG_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad segment magic"));
        }
        let mut out = Vec::new();
        let mut buf = Vec::new();
        loop {
            let mut len_bytes = [0u8; 4];
            match read_exact_or_eof(&mut r, &mut len_bytes)? {
                Tail::Eof => break,
                Tail::Torn if !sealed => break,
                Tail::Torn => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "torn frame in sealed segment",
                    ));
                }
                Tail::Full => {}
            }
            let len = u32::from_le_bytes(len_bytes) as usize;
            buf.resize(len, 0);
            match read_all_or_eof(&mut r, &mut buf)? {
                true => {}
                false if !sealed => break,
                false => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "torn frame in sealed segment",
                    ));
                }
            }
            out.push(from_bytes(&buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?);
        }
        if sealed && out.len() as u64 != entry.records {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "segment {} holds {} records, index says {}",
                    entry.seg,
                    out.len(),
                    entry.records
                ),
            ));
        }
        Ok(out)
    }

    /// Every record across every segment, in append order.
    pub fn read_all(&self) -> io::Result<Vec<SpoolRecord>> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.extend(self.read_segment(e)?);
        }
        Ok(out)
    }

    /// Records from sequence `seq` on — the index seek path: segments
    /// wholly before `seq` are never opened.
    pub fn read_from(&self, seq: u64) -> io::Result<Vec<SpoolRecord>> {
        let mut out = Vec::new();
        for e in &self.entries {
            if e.records != u64::MAX && e.first_seq + e.records <= seq {
                continue;
            }
            let recs = self.read_segment(e)?;
            let skip = seq.saturating_sub(e.first_seq) as usize;
            out.extend(recs.into_iter().skip(skip));
        }
        Ok(out)
    }
}

enum Tail {
    Full,
    Torn,
    Eof,
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF at a frame
/// boundary from a torn prefix.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<Tail> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(if filled == 0 { Tail::Eof } else { Tail::Torn });
        }
        filled += n;
    }
    Ok(Tail::Full)
}

/// Reads exactly `buf.len()` bytes; `false` means the stream ended early.
fn read_all_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            return Ok(false);
        }
        filled += n;
    }
    Ok(true)
}

/// Outcome of a finished spool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpoolStats {
    /// Records written to disk.
    pub written: u64,
    /// Records dropped at the full queue.
    pub dropped: u64,
    /// Segments produced.
    pub segments: u32,
}

/// A bounded, never-blocking front to a [`SegmentedStore`] writer thread.
///
/// [`RecordSpool::offer`] is wait-free from the producer's view: a
/// `try_send` onto a bounded queue. Overflow increments
/// `poem_record_spool_dropped_total` and returns `false`; the hot ingest
/// path never parks behind the disk.
#[derive(Debug)]
pub struct RecordSpool {
    /// `None` once finished: late offers count as drops.
    tx: parking_lot::Mutex<Option<Sender<SpoolRecord>>>,
    handle: parking_lot::Mutex<Option<JoinHandle<io::Result<Vec<SegmentEntry>>>>>,
    enqueued: Arc<Counter>,
    dropped: Arc<Counter>,
    depth: Arc<Gauge>,
    segments: Arc<Counter>,
}

impl RecordSpool {
    /// Creates the store and starts the writer thread.
    pub fn start(config: SegmentConfig) -> io::Result<RecordSpool> {
        let store = SegmentedStore::create(&config)?;
        let (tx, rx): (Sender<SpoolRecord>, Receiver<SpoolRecord>) =
            bounded(config.queue_capacity.max(1));
        let enqueued = Arc::new(Counter::default());
        let dropped = Arc::new(Counter::default());
        let depth = Arc::new(Gauge::default());
        let segments = Arc::new(Counter::default());
        let handle = {
            let depth = Arc::clone(&depth);
            let segments = Arc::clone(&segments);
            std::thread::Builder::new().name("poem-spool".into()).spawn(move || {
                let mut store = store;
                let mut seen_segs = 1u64;
                segments.inc();
                while let Ok(rec) = rx.recv() {
                    depth.sub(1);
                    store.append(&rec)?;
                    let segs = store.segments() as u64;
                    if segs > seen_segs {
                        segments.add(segs - seen_segs);
                        seen_segs = segs;
                    }
                }
                store.finish()
            })?
        };
        Ok(RecordSpool {
            tx: parking_lot::Mutex::new(Some(tx)),
            handle: parking_lot::Mutex::new(Some(handle)),
            enqueued,
            dropped,
            depth,
            segments,
        })
    }

    /// Enqueues one record without blocking. `false` means the record was
    /// dropped (and counted) — queue full, or spool already finished.
    pub fn offer(&self, rec: SpoolRecord) -> bool {
        let accepted = match self.tx.lock().as_ref() {
            Some(tx) => tx.try_send(rec).is_ok(),
            None => false,
        };
        if accepted {
            self.enqueued.inc();
            self.depth.add(1);
        } else {
            self.dropped.inc();
        }
        accepted
    }

    /// Records dropped at the full queue so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Attaches the spool's instruments to `registry`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("poem_record_spool_enqueued_total", Arc::clone(&self.enqueued));
        registry.register_counter("poem_record_spool_dropped_total", Arc::clone(&self.dropped));
        registry.register_gauge("poem_record_spool_depth", Arc::clone(&self.depth));
        registry.register_counter("poem_record_segments_total", Arc::clone(&self.segments));
    }

    /// Closes the queue (the writer drains what is buffered, seals the
    /// active segment, writes the final index), joins the writer and
    /// returns the run's stats. A second call reports the spool already
    /// sealed.
    pub fn seal(&self) -> io::Result<SpoolStats> {
        // Dropping the sender ends the writer's `recv` loop after it has
        // drained everything already queued.
        drop(self.tx.lock().take());
        let handle =
            self.handle.lock().take().ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotConnected, "spool already finished")
            })?;
        let sealed = handle.join().map_err(|_| io::Error::other("spool writer panicked"))??;
        Ok(SpoolStats {
            written: sealed.iter().map(|e| e.records).sum(),
            dropped: self.dropped.get(),
            segments: sealed.len() as u32,
        })
    }
}

impl Drop for RecordSpool {
    fn drop(&mut self) {
        drop(self.tx.lock().take());
        if let Some(handle) = self.handle.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::{EmuTime, NodeId, PacketId};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("poemseg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(n: u64) -> Vec<SpoolRecord> {
        (0..n)
            .map(|i| {
                SpoolRecord::Traffic(TrafficRecord::Forward {
                    id: PacketId(i),
                    to: NodeId((i % 7) as u32),
                    at: EmuTime::from_micros(i * 50),
                })
            })
            .collect()
    }

    fn small_config(dir: &Path) -> SegmentConfig {
        SegmentConfig { max_segment_records: 8, ..SegmentConfig::new(dir, "run") }
    }

    #[test]
    fn store_rotates_and_reader_roundtrips() {
        let dir = tmp_dir("rotate");
        let mut store = SegmentedStore::create(&small_config(&dir)).unwrap();
        let records = sample(20);
        for r in &records {
            store.append(r).unwrap();
        }
        assert_eq!(store.len(), 20);
        assert_eq!(store.segments(), 3, "20 records at 8/segment = 3 segments");
        let sealed = store.finish().unwrap();
        assert_eq!(
            sealed,
            vec![
                SegmentEntry { seg: 0, first_seq: 0, records: 8 },
                SegmentEntry { seg: 1, first_seq: 8, records: 8 },
                SegmentEntry { seg: 2, first_seq: 16, records: 4 },
            ]
        );
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        assert_eq!(reader.entries(), &sealed[..]);
        assert_eq!(reader.read_all().unwrap(), records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reader_seeks_by_sequence_without_scanning_earlier_segments() {
        let dir = tmp_dir("seek");
        let mut store = SegmentedStore::create(&small_config(&dir)).unwrap();
        let records = sample(21);
        for r in &records {
            store.append(r).unwrap();
        }
        store.finish().unwrap();
        // Poison segment 0 on disk: a correct seek to seq 10 never opens it.
        fs::write(segment_path(&dir, "run", 0), b"garbage").unwrap();
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        assert_eq!(reader.read_from(10).unwrap(), records[10..]);
        assert!(reader.read_all().is_err(), "full scan must hit the poisoned segment");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_on_unsealed_active_segment_is_tolerated() {
        let dir = tmp_dir("torn");
        let records = sample(12);
        {
            let mut store = SegmentedStore::create(&small_config(&dir)).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
            // No finish(): simulates a crash. The BufWriter flushes on
            // drop, so the active segment holds its 4 records...
        }
        // ...then lose the tail mid-frame.
        let active = segment_path(&dir, "run", 1);
        let len = fs::metadata(&active).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&active).unwrap();
        f.set_len(len - 3).unwrap();
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        assert_eq!(reader.entries().len(), 2);
        assert_eq!(reader.entries()[1].records, u64::MAX, "active segment count unknown");
        // Sealed 8 survive in full; the torn 4th active record is dropped.
        assert_eq!(reader.read_all().unwrap(), records[..11]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_sealed_segment_is_an_error() {
        let dir = tmp_dir("sealed-torn");
        let mut store = SegmentedStore::create(&small_config(&dir)).unwrap();
        for r in sample(16) {
            store.append(&r).unwrap();
        }
        store.finish().unwrap();
        let seg0 = segment_path(&dir, "run", 0);
        let len = fs::metadata(&seg0).unwrap().len();
        fs::OpenOptions::new().write(true).open(&seg0).unwrap().set_len(len - 2).unwrap();
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        assert!(reader.read_all().is_err(), "a sealed segment must be intact");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spool_writes_through_and_reports_stats() {
        let dir = tmp_dir("spool");
        let spool = RecordSpool::start(small_config(&dir)).unwrap();
        let registry = Registry::new();
        spool.register_metrics(&registry);
        let records = sample(30);
        for r in &records {
            assert!(spool.offer(r.clone()));
        }
        let stats = spool.seal().unwrap();
        assert_eq!(stats, SpoolStats { written: 30, dropped: 0, segments: 4 });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("poem_record_spool_enqueued_total"), Some(30));
        assert_eq!(snap.counter("poem_record_spool_dropped_total"), Some(0));
        assert_eq!(snap.counter("poem_record_segments_total"), Some(4));
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        assert_eq!(reader.read_all().unwrap(), records);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finished_spool_drops_and_counts_instead_of_blocking() {
        let dir = tmp_dir("spool-drop");
        let spool = RecordSpool::start(small_config(&dir)).unwrap();
        spool.seal().unwrap();
        let begun = std::time::Instant::now();
        assert!(!spool.offer(sample(1).remove(0)), "offer past finish must not be accepted");
        assert!(begun.elapsed() < std::time::Duration::from_millis(100), "offer must not block");
        assert_eq!(spool.dropped(), 1);
        assert!(spool.seal().is_err(), "double seal reports an error");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorder_mirrors_records_into_attached_spool() {
        let dir = tmp_dir("recorder");
        let spool = Arc::new(RecordSpool::start(small_config(&dir)).unwrap());
        let rec = crate::Recorder::new();
        rec.attach_spool(Arc::clone(&spool)).unwrap();
        assert!(rec.attach_spool(Arc::clone(&spool)).is_err(), "second spool refused");
        for r in sample(5) {
            let SpoolRecord::Traffic(t) = r else { unreachable!() };
            rec.record_traffic(t);
        }
        rec.record_fault(FaultRecord::Scene { at: EmuTime::from_secs(1), action: "jam".into() });
        let stats = spool.seal().unwrap();
        assert_eq!(stats.written, 6);
        let reader = SegmentedReader::open(&dir, "run").unwrap();
        let all = reader.read_all().unwrap();
        assert_eq!(all.len(), 6);
        assert!(matches!(all[5], SpoolRecord::Fault(_)));
        // The in-memory log is untouched by the mirroring.
        assert_eq!(rec.counts().0, 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
