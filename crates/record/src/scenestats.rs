//! Statistics over the *scene* log — the replay side of §3.2 step 7.
//!
//! The traffic log answers "what happened to the packets"; the scene log
//! answers "what happened to the network". [`SceneStats`] summarizes a
//! recorded run: how the population evolved, how often each kind of
//! operation fired, how far nodes travelled, and how volatile the scene
//! was over time (the §2.2 stress axis — "switching the channel, changing
//! the radio range, moving out some nodes ... at any time").

use crate::records::SceneRecord;
use poem_core::scene::SceneOp;
use poem_core::stats::SeriesPoint;
use poem_core::{EmuDuration, NodeId, Point};
use std::collections::BTreeMap;

/// Counts per operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpHistogram {
    /// `AddNode` ops.
    pub add: u64,
    /// `RemoveNode` ops.
    pub remove: u64,
    /// `MoveNode` ops (interactive drags *and* recorded mobility steps).
    pub moves: u64,
    /// Radio retunes.
    pub retune: u64,
    /// Radio range changes.
    pub range: u64,
    /// Whole-radio-config replacements.
    pub radios: u64,
    /// Mobility-model changes.
    pub mobility: u64,
    /// Link-parameter changes.
    pub link: u64,
    /// Link-profile (re)bindings.
    pub profile: u64,
    /// Arena changes.
    pub arena: u64,
}

impl OpHistogram {
    /// Total ops.
    pub fn total(&self) -> u64 {
        self.add
            + self.remove
            + self.moves
            + self.retune
            + self.range
            + self.radios
            + self.mobility
            + self.link
            + self.profile
            + self.arena
    }
}

/// Summary of a recorded scene log.
#[derive(Debug, Clone)]
pub struct SceneStats {
    /// Op counts by kind.
    pub ops: OpHistogram,
    /// Node population after each change: `(seconds, population)`.
    pub population: Vec<SeriesPoint>,
    /// Total distance travelled per node (sum of recorded position
    /// deltas), ascending by node.
    pub distance_travelled: Vec<(NodeId, f64)>,
    /// Scene ops per window — the "volatility" series.
    pub op_rate: Vec<SeriesPoint>,
}

impl SceneStats {
    /// Computes the summary from a scene log (sorted internally).
    pub fn compute(log: &[SceneRecord], window: EmuDuration) -> SceneStats {
        assert!(window.as_nanos() > 0, "window must be positive");
        let mut sorted: Vec<&SceneRecord> = log.iter().collect();
        sorted.sort_by_key(|r| r.at);

        let mut ops = OpHistogram::default();
        let mut population = Vec::new();
        let mut pop = 0i64;
        let mut last_pos: BTreeMap<NodeId, Point> = BTreeMap::new();
        let mut travelled: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut op_buckets: BTreeMap<u64, u64> = BTreeMap::new();
        let w_ns = window.as_nanos() as u64;

        for rec in &sorted {
            *op_buckets.entry(rec.at.as_nanos() / w_ns).or_default() += 1;
            match &rec.op {
                SceneOp::AddNode { id, pos, .. } => {
                    ops.add += 1;
                    pop += 1;
                    last_pos.insert(*id, *pos);
                    travelled.entry(*id).or_default();
                    population.push(SeriesPoint { t: rec.at.as_secs_f64(), value: pop as f64 });
                }
                SceneOp::RemoveNode { id } => {
                    ops.remove += 1;
                    pop -= 1;
                    last_pos.remove(id);
                    population.push(SeriesPoint { t: rec.at.as_secs_f64(), value: pop as f64 });
                }
                SceneOp::MoveNode { id, pos } => {
                    ops.moves += 1;
                    if let Some(prev) = last_pos.insert(*id, *pos) {
                        *travelled.entry(*id).or_default() += prev.distance(*pos);
                    }
                }
                SceneOp::SetRadioChannel { .. } => ops.retune += 1,
                SceneOp::SetRadioRange { .. } => ops.range += 1,
                SceneOp::SetRadios { .. } => ops.radios += 1,
                SceneOp::SetMobility { .. } => ops.mobility += 1,
                SceneOp::SetLinkParams { .. } => ops.link += 1,
                SceneOp::SetLinkProfile { .. } => ops.profile += 1,
                SceneOp::SetArena { .. } => ops.arena += 1,
            }
        }

        let w_secs = window.as_secs_f64();
        let op_rate = op_buckets
            .into_iter()
            .map(|(b, count)| SeriesPoint { t: b as f64 * w_secs, value: count as f64 })
            .collect();

        SceneStats { ops, population, distance_travelled: travelled.into_iter().collect(), op_rate }
    }

    /// The peak node population over the run.
    pub fn peak_population(&self) -> u64 {
        self.population.iter().map(|p| p.value as u64).max().unwrap_or(0)
    }

    /// Total distance travelled across all nodes.
    pub fn total_distance(&self) -> f64 {
        self.distance_travelled.iter().map(|(_, d)| d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poem_core::linkmodel::LinkParams;
    use poem_core::mobility::MobilityModel;
    use poem_core::radio::RadioConfig;
    use poem_core::{ChannelId, EmuTime, RadioId};

    fn rec(at_s: u64, op: SceneOp) -> SceneRecord {
        SceneRecord::new(EmuTime::from_secs(at_s), op)
    }

    fn add(id: u32, x: f64, y: f64) -> SceneOp {
        SceneOp::AddNode {
            id: NodeId(id),
            pos: Point::new(x, y),
            radios: RadioConfig::single(ChannelId(1), 100.0),
            mobility: MobilityModel::Stationary,
            link: LinkParams::default(),
        }
    }

    fn sample_log() -> Vec<SceneRecord> {
        vec![
            rec(0, add(1, 0.0, 0.0)),
            rec(0, add(2, 10.0, 0.0)),
            rec(1, SceneOp::MoveNode { id: NodeId(2), pos: Point::new(10.0, 30.0) }),
            rec(2, SceneOp::MoveNode { id: NodeId(2), pos: Point::new(10.0, 70.0) }),
            rec(
                3,
                SceneOp::SetRadioChannel {
                    id: NodeId(1),
                    radio: RadioId(0),
                    channel: ChannelId(2),
                },
            ),
            rec(9, SceneOp::RemoveNode { id: NodeId(1) }),
        ]
    }

    #[test]
    fn histogram_counts_by_kind() {
        let s = SceneStats::compute(&sample_log(), EmuDuration::from_secs(1));
        assert_eq!(s.ops.add, 2);
        assert_eq!(s.ops.remove, 1);
        assert_eq!(s.ops.moves, 2);
        assert_eq!(s.ops.retune, 1);
        assert_eq!(s.ops.total(), 6);
    }

    #[test]
    fn population_series_tracks_adds_and_removes() {
        let s = SceneStats::compute(&sample_log(), EmuDuration::from_secs(1));
        let values: Vec<f64> = s.population.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 1.0]);
        assert_eq!(s.peak_population(), 2);
    }

    #[test]
    fn distance_sums_recorded_moves() {
        let s = SceneStats::compute(&sample_log(), EmuDuration::from_secs(1));
        let d2 =
            s.distance_travelled.iter().find(|(id, _)| *id == NodeId(2)).map(|(_, d)| *d).unwrap();
        assert!((d2 - 70.0).abs() < 1e-9, "{d2}"); // 30 + 40
        assert!((s.total_distance() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn op_rate_buckets_by_window() {
        let s = SceneStats::compute(&sample_log(), EmuDuration::from_secs(2));
        // Windows: [0,2) → 3 ops, [2,4) → 2 ops, [8,10) → 1 op.
        let rates: Vec<(f64, f64)> = s.op_rate.iter().map(|p| (p.t, p.value)).collect();
        assert_eq!(rates, vec![(0.0, 3.0), (2.0, 2.0), (8.0, 1.0)]);
    }

    #[test]
    fn unsorted_log_is_handled() {
        let mut log = sample_log();
        log.reverse();
        let sorted = SceneStats::compute(&sample_log(), EmuDuration::from_secs(1));
        let shuffled = SceneStats::compute(&log, EmuDuration::from_secs(1));
        assert_eq!(sorted.ops, shuffled.ops);
        assert_eq!(sorted.total_distance(), shuffled.total_distance());
    }

    #[test]
    fn empty_log() {
        let s = SceneStats::compute(&[], EmuDuration::from_secs(1));
        assert_eq!(s.ops.total(), 0);
        assert!(s.population.is_empty());
        assert_eq!(s.peak_population(), 0);
        assert_eq!(s.total_distance(), 0.0);
    }
}
