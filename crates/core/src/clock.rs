//! Emulation clocks and the §4.1 lightweight clock-synchronization scheme.
//!
//! PoEm's real-time traffic recording works because every *client* stamps
//! its own packets against a clock that has been synchronized with the
//! server's — "parallel time-stamping". Two clock implementations share the
//! [`Clock`] trait:
//!
//! * [`VirtualClock`] — discrete-event time that only moves when the
//!   emulation engine advances it. Deterministic; used by every test and
//!   experiment that doesn't need wall time.
//! * [`WallClock`] — monotonic OS time plus a synchronization offset; used
//!   when PoEm runs in real-time mode over real sockets.
//!
//! The [`sync`] module implements the six-step handshake of Fig. 5 exactly
//! and exposes its error analytically (the estimate is off by half the
//! asymmetry between the forward and reverse path delays).

use crate::time::{EmuDuration, EmuTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A source of emulation time.
///
/// Shared (`&self`) because many threads — scheduling, scanning, sending,
/// recording — read the clock concurrently (§3.2).
pub trait Clock: Send + Sync {
    /// The current emulation time.
    fn now(&self) -> EmuTime;

    /// Shifts the clock by `offset` (positive = forward). Used by clients
    /// after a synchronization round ("pushes the emulation clock
    /// forward", §4.1 step 6).
    fn adjust(&self, offset: EmuDuration);
}

/// Discrete-event emulation time.
///
/// Starts at the epoch; [`VirtualClock::advance_to`] moves it forward.
/// Monotonicity is enforced: attempts to move backwards are ignored, so an
/// out-of-order event pop can never make time regress.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A fresh clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh clock starting at `t`.
    pub fn starting_at(t: EmuTime) -> Self {
        VirtualClock { now_ns: AtomicU64::new(t.as_nanos()) }
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the resulting time.
    pub fn advance_to(&self, t: EmuTime) -> EmuTime {
        let mut cur = self.now_ns.load(Ordering::Acquire);
        while t.as_nanos() > cur {
            match self.now_ns.compare_exchange_weak(
                cur,
                t.as_nanos(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        EmuTime::from_nanos(cur)
    }

    /// Advances the clock by `d` (negative spans are ignored).
    pub fn advance_by(&self, d: EmuDuration) -> EmuTime {
        let now = EmuTime::from_nanos(self.now_ns.load(Ordering::Acquire));
        self.advance_to(now + d)
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> EmuTime {
        EmuTime::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    fn adjust(&self, offset: EmuDuration) {
        if offset.as_nanos() > 0 {
            self.advance_by(offset);
        }
        // A virtual clock never moves backwards; negative adjustments are
        // dropped to preserve event-order monotonicity.
    }
}

/// Wall-clock emulation time: a monotonic [`Instant`] base plus a signed
/// offset installed by clock synchronization.
#[derive(Debug)]
pub struct WallClock {
    base: Instant,
    /// Signed nanosecond offset added to the elapsed monotonic time.
    /// Shared between clocks created with [`WallClock::sharing_base`]: a
    /// sync `adjust` on any of them moves the whole workstation.
    offset: Arc<Mutex<i64>>,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        // WallClock IS the real-time boundary of the emulator; everything
        // replay-deterministic runs against SimClock instead.
        // poem-lint: allow(determinism_taint): this type is the wall-clock abstraction
        WallClock { base: Instant::now(), offset: Arc::new(Mutex::new(0)) }
    }

    /// A wall clock sharing another's monotonic base *and* offset —
    /// models several clients on one workstation (§3.1): a later sync
    /// `adjust` on either clock keeps propagating to the other.
    pub fn sharing_base(&self) -> Self {
        WallClock { base: self.base, offset: Arc::clone(&self.offset) }
    }

    /// A wall clock sharing another's monotonic base but with an
    /// independent offset seeded from the current one. Use this to model
    /// hosts whose clocks start aligned and then drift apart under
    /// separate synchronization.
    pub fn snapshot_base(&self) -> Self {
        WallClock { base: self.base, offset: Arc::new(Mutex::new(*self.offset.lock())) }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> EmuTime {
        let elapsed = self.base.elapsed().as_nanos() as i64;
        let off = *self.offset.lock();
        EmuTime::from_nanos(elapsed.saturating_add(off).max(0) as u64)
    }

    fn adjust(&self, offset: EmuDuration) {
        let mut off = self.offset.lock();
        *off = off.saturating_add(offset.as_nanos());
    }
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

pub mod sync {
    //! The §4.1 / Fig. 5 clock-synchronization handshake.
    //!
    //! 1. Client sends a message stamped with its local time `t_c1`.
    //! 2. Server receives it at server time `t_s2`.
    //! 3. At server time `t_s3` the server replies with `t_s3` and
    //!    `t_c1 + t_s3 − t_s2`.
    //! 4. Client receives the reply at local time `t_c4`.
    //! 5. Assuming symmetric transport delay, the client estimates
    //!    `t_d = ½·(t_c4 − (t_c1 + t_s3 − t_s2))` and the current server
    //!    clock as `t_s4 = t_s3 + t_d`.
    //! 6. The client adopts `t_s4` as its emulation time.

    use super::Clock;
    use crate::time::{EmuDuration, EmuTime};

    /// The four timestamps gathered by one handshake round.
    ///
    /// ```
    /// use poem_core::clock::sync::simulate_handshake;
    /// use poem_core::{EmuDuration, EmuTime};
    /// // Client 100 s, server 105 s, symmetric 10 ms paths:
    /// let d = EmuDuration::from_millis(10);
    /// let sample = simulate_handshake(
    ///     EmuTime::from_secs(100), EmuTime::from_secs(105), d, d, EmuDuration::ZERO);
    /// let out = sample.solve();
    /// assert_eq!(out.estimated_delay, d);            // exact under symmetry
    /// assert_eq!(out.offset, EmuDuration::from_secs(5)); // the 5 s skew
    /// ```
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SyncSample {
        /// Client send time (client clock) — step 1.
        pub t_c1: EmuTime,
        /// Server receive time (server clock) — step 2.
        pub t_s2: EmuTime,
        /// Server reply time (server clock) — step 3.
        pub t_s3: EmuTime,
        /// Client receive time (client clock) — step 4.
        pub t_c4: EmuTime,
    }

    /// The outcome of one synchronization round.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SyncOutcome {
        /// Estimated one-way transport delay `t_d`.
        pub estimated_delay: EmuDuration,
        /// Estimated current server time `t_s4 = t_s3 + t_d`.
        pub estimated_server_now: EmuTime,
        /// Correction the client must apply: `t_s4 − t_c4`.
        pub offset: EmuDuration,
        /// Round-trip time observed by the client, `t_c4 − t_c1`.
        pub round_trip: EmuDuration,
    }

    impl SyncSample {
        /// Applies the paper's step-5 arithmetic.
        ///
        /// `t_d = ½·(t_c4 − (t_c1 + t_s3 − t_s2))`. Note that
        /// `t_c4 − t_c1 − (t_s3 − t_s2)` is exactly the round trip minus
        /// the server's turnaround, i.e. the sum of the two path delays —
        /// halving it assumes symmetry, and the residual estimation error
        /// equals half the path asymmetry (verified by experiment E6).
        pub fn solve(self) -> SyncOutcome {
            let round_trip = self.t_c4 - self.t_c1;
            let turnaround = self.t_s3 - self.t_s2;
            let estimated_delay = (round_trip - turnaround) / 2;
            let estimated_server_now = self.t_s3 + estimated_delay;
            SyncOutcome {
                estimated_delay,
                estimated_server_now,
                offset: estimated_server_now - self.t_c4,
                round_trip,
            }
        }
    }

    /// Runs step 6: applies the computed offset to the client clock.
    pub fn apply(outcome: &SyncOutcome, client_clock: &dyn Clock) {
        client_clock.adjust(outcome.offset);
    }

    /// Simulates a full handshake between two clocks over links with the
    /// given one-way delays, returning the sample a real exchange would
    /// have produced. `turnaround` is the server's processing time between
    /// steps 2 and 3.
    ///
    /// This is the reference harness for experiment E6 (Fig. 5): with
    /// `uplink == downlink` the estimate is exact; otherwise its error is
    /// `(downlink − uplink)/2`.
    pub fn simulate_handshake(
        client_now: EmuTime,
        server_now: EmuTime,
        uplink: EmuDuration,
        downlink: EmuDuration,
        turnaround: EmuDuration,
    ) -> SyncSample {
        let t_c1 = client_now;
        let t_s2 = server_now + uplink;
        let t_s3 = t_s2 + turnaround;
        // Client-side elapsed time while the exchange ran:
        let t_c4 = t_c1 + uplink + turnaround + downlink;
        SyncSample { t_c1, t_s2, t_s3, t_c4 }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::clock::VirtualClock;

        #[test]
        fn symmetric_delay_recovers_server_clock_exactly() {
            // Client clock lags the server by 5 s; both paths take 10 ms.
            let client = EmuTime::from_secs(100);
            let server = EmuTime::from_secs(105);
            let d = EmuDuration::from_millis(10);
            let sample = simulate_handshake(client, server, d, d, EmuDuration::from_millis(2));
            let out = sample.solve();
            assert_eq!(out.estimated_delay, d);
            // True server time at t_c4 is server + up + turn + down.
            let true_server_at_c4 = server + d + EmuDuration::from_millis(2) + d;
            assert_eq!(out.estimated_server_now, true_server_at_c4);
            assert_eq!(out.round_trip, d + d + EmuDuration::from_millis(2));
        }

        #[test]
        fn asymmetry_error_is_half_the_difference() {
            let client = EmuTime::from_secs(10);
            let server = EmuTime::from_secs(10);
            let up = EmuDuration::from_millis(4);
            let down = EmuDuration::from_millis(12);
            let sample = simulate_handshake(client, server, up, down, EmuDuration::ZERO);
            let out = sample.solve();
            let true_server_at_c4 = server + up + down;
            let err = out.estimated_server_now - true_server_at_c4;
            assert_eq!(err, (up - down) / 2); // -4 ms
            assert_eq!(err.abs(), EmuDuration::from_millis(4));
        }

        #[test]
        fn apply_brings_client_to_server_time() {
            let client_clock = VirtualClock::starting_at(EmuTime::from_secs(1));
            let server_now = EmuTime::from_secs(60);
            let d = EmuDuration::from_millis(5);
            let sample = simulate_handshake(
                client_clock.now(),
                server_now,
                d,
                d,
                EmuDuration::from_millis(1),
            );
            // Emulate the passage of client-local time during the exchange.
            client_clock.advance_to(sample.t_c4);
            let out = sample.solve();
            apply(&out, &client_clock);
            assert!(!out.offset.is_negative());
            assert_eq!(client_clock.now(), out.estimated_server_now);
        }

        #[test]
        fn zero_delay_zero_turnaround_is_instantaneous() {
            let sample = simulate_handshake(
                EmuTime::from_secs(3),
                EmuTime::from_secs(9),
                EmuDuration::ZERO,
                EmuDuration::ZERO,
                EmuDuration::ZERO,
            );
            let out = sample.solve();
            assert_eq!(out.estimated_delay, EmuDuration::ZERO);
            assert_eq!(out.estimated_server_now, EmuTime::from_secs(9));
            assert_eq!(out.offset, EmuDuration::from_secs(6));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn virtual_clock_starts_at_epoch() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), EmuTime::ZERO);
    }

    #[test]
    fn virtual_clock_advances_monotonically() {
        let c = VirtualClock::new();
        assert_eq!(c.advance_to(EmuTime::from_secs(5)), EmuTime::from_secs(5));
        // Regression attempt is ignored.
        assert_eq!(c.advance_to(EmuTime::from_secs(3)), EmuTime::from_secs(5));
        assert_eq!(c.now(), EmuTime::from_secs(5));
        c.advance_by(EmuDuration::from_secs(2));
        assert_eq!(c.now(), EmuTime::from_secs(7));
    }

    #[test]
    fn virtual_clock_ignores_negative_adjust() {
        let c = VirtualClock::starting_at(EmuTime::from_secs(10));
        c.adjust(EmuDuration::from_secs(-5));
        assert_eq!(c.now(), EmuTime::from_secs(10));
        c.adjust(EmuDuration::from_secs(5));
        assert_eq!(c.now(), EmuTime::from_secs(15));
    }

    #[test]
    fn virtual_clock_concurrent_advance_takes_max() {
        let c = Arc::new(VirtualClock::new());
        let mut handles = vec![];
        for i in 1..=8u64 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for j in 0..1000u64 {
                    c.advance_to(EmuTime::from_nanos(i * 1000 + j));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), EmuTime::from_nanos(8 * 1000 + 999));
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now();
        thread::sleep(std::time::Duration::from_millis(5));
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn wall_clock_adjust_shifts_reading() {
        let c = WallClock::new();
        let before = c.now();
        c.adjust(EmuDuration::from_secs(100));
        let after = c.now();
        assert!(after.since(before) >= EmuDuration::from_secs(100));
        // Negative adjustment saturates the reading at the epoch rather
        // than producing a negative time.
        c.adjust(EmuDuration::from_secs(-1_000_000));
        assert_eq!(c.now(), EmuTime::ZERO);
    }

    #[test]
    fn wall_clock_shared_base_agrees_initially() {
        let a = WallClock::new();
        a.adjust(EmuDuration::from_secs(50));
        let b = a.sharing_base();
        let da = a.now().as_secs_f64();
        let db = b.now().as_secs_f64();
        assert!((da - db).abs() < 0.05, "{da} vs {db}");
    }

    #[test]
    fn wall_clock_sharing_base_propagates_later_adjust() {
        // Regression: `sharing_base` used to snapshot the offset, so a
        // sync round on the parent after the child was created silently
        // diverged the two clocks "on one workstation".
        let parent = WallClock::new();
        let child = parent.sharing_base();
        parent.adjust(EmuDuration::from_secs(100));
        let dp = parent.now().as_secs_f64();
        let dc = child.now().as_secs_f64();
        assert!((dp - dc).abs() < 0.05, "{dp} vs {dc}");
        // And the other direction: the child adjusting moves the parent.
        child.adjust(EmuDuration::from_secs(100));
        assert!(parent.now().as_secs_f64() >= 200.0);
    }

    #[test]
    fn wall_clock_snapshot_base_is_independent() {
        let parent = WallClock::new();
        parent.adjust(EmuDuration::from_secs(50));
        let child = parent.snapshot_base();
        parent.adjust(EmuDuration::from_secs(100));
        let dp = parent.now().as_secs_f64();
        let dc = child.now().as_secs_f64();
        assert!((dp - dc - 100.0).abs() < 0.05, "{dp} vs {dc}");
    }
}
