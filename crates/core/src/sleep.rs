//! Real-time scan-loop sleep policies and guard-band calibration.
//!
//! The §3.2 scanning thread must wake *at* each forward deadline, but an
//! OS sleep primitive only promises to wake *no earlier than* requested —
//! the actual wake-up error is the scheduler's timer slack plus run-queue
//! latency, typically tens of microseconds and spiky under load. The
//! real-time-scheduler literature (INET's RT scheduler, arXiv:1509.03105)
//! resolves this with a hybrid: sleep coarsely to `deadline − guard`,
//! then spin the last `guard` nanoseconds, where `guard` is calibrated
//! online from the wake-up error the host actually exhibits.
//!
//! This module holds the policy taxonomy ([`SleepPolicy`]) and the online
//! calibrator ([`GuardBand`]); the policies are *executed* by the server's
//! scan loop, which owns the condvar and the clock. Everything here is
//! pure arithmetic so both frontends and the tests can exercise it
//! deterministically.

use serde::{Deserialize, Serialize};

/// How the scanning thread waits for the next forward deadline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SleepPolicy {
    /// Plain condvar sleep with a fixed 50 µs floor and 50 ms cap — the
    /// pre-calibration behaviour, kept as the comparison baseline for E16.
    Naive,
    /// Coarse condvar sleep down to the calibrated guard band, then
    /// spin/yield to the deadline (the default).
    #[default]
    Hybrid,
    /// Spin/yield all the way to the deadline; lowest latency, one core
    /// pinned. Condvar-sleeps only while the schedule is empty.
    Spin,
    /// Hybrid while the loop keeps up; once the overload duty cycle over a
    /// sliding window crosses the engage threshold, fall back to
    /// batch-drain with coarse (naive) waits until the duty cycle decays
    /// below the disengage threshold ([`DutyCycle`] hysteresis). Trades
    /// wake precision for throughput exactly when precision is already
    /// lost to overload.
    Auto,
}

impl SleepPolicy {
    /// Stable lowercase name, used in CLI flags and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SleepPolicy::Naive => "naive",
            SleepPolicy::Hybrid => "hybrid",
            SleepPolicy::Spin => "spin",
            SleepPolicy::Auto => "auto",
        }
    }
}

impl std::fmt::Display for SleepPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SleepPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(SleepPolicy::Naive),
            "hybrid" => Ok(SleepPolicy::Hybrid),
            "spin" => Ok(SleepPolicy::Spin),
            "auto" => Ok(SleepPolicy::Auto),
            other => Err(format!("unknown sleep policy `{other}` (naive|hybrid|spin|auto)")),
        }
    }
}

/// Online guard-band calibrator.
///
/// Tracks the smoothed wake-up error and its mean deviation with the
/// classic RTO-style EWMA (gains 1/8 and 1/4) and derives the guard band
/// as `srt + 4·var`, clamped to `[min, max]`. A host with tight timers
/// converges to a narrow band (little spinning); a noisy host widens the
/// band so the spin phase still absorbs the oversleep.
#[derive(Debug, Clone)]
pub struct GuardBand {
    srt_ns: u64,
    var_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: u64,
}

impl GuardBand {
    /// A calibrator starting at `initial_ns`, clamped to `[min_ns, max_ns]`.
    pub fn new(initial_ns: u64, min_ns: u64, max_ns: u64) -> Self {
        GuardBand {
            srt_ns: initial_ns.clamp(min_ns, max_ns),
            var_ns: initial_ns / 4,
            min_ns,
            max_ns: max_ns.max(min_ns),
            samples: 0,
        }
    }

    /// The server default: start at 200 µs, never narrower than 20 µs
    /// (below timer resolution the spin phase buys nothing) and never
    /// wider than 2 ms (bounds worst-case spin per event).
    pub fn standard() -> Self {
        GuardBand::new(200_000, 20_000, 2_000_000)
    }

    /// Feeds one observed wake-up error (nanoseconds the OS woke us past
    /// the requested instant).
    pub fn observe(&mut self, wake_error_ns: u64) {
        if self.samples == 0 {
            self.srt_ns = wake_error_ns;
            self.var_ns = wake_error_ns / 2;
        } else {
            let err = wake_error_ns as i64 - self.srt_ns as i64;
            self.var_ns = (self.var_ns as i64 + (err.abs() - self.var_ns as i64) / 4).max(0) as u64;
            self.srt_ns = (self.srt_ns as i64 + err / 8).max(0) as u64;
        }
        self.samples += 1;
    }

    /// The current guard band in nanoseconds: `srt + 4·var`, clamped.
    pub fn current_ns(&self) -> u64 {
        self.srt_ns.saturating_add(self.var_ns.saturating_mul(4)).clamp(self.min_ns, self.max_ns)
    }

    /// Number of wake-up errors observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for GuardBand {
    fn default() -> Self {
        GuardBand::standard()
    }
}

/// Overload duty-cycle tracker with hysteresis, driving
/// [`SleepPolicy::Auto`].
///
/// Each scan pass reports whether it found itself overloaded (lag past
/// the overload threshold). The tracker keeps the last `window` booleans
/// in a ring and exposes one engaged/disengaged bit: engaged when the
/// overloaded fraction rises to `engage` (default ½), released only when
/// it decays below `disengage` (default ¼). The gap between the two
/// thresholds prevents mode flapping when the duty cycle hovers near the
/// boundary — the expensive part of a mode switch is the precision loss,
/// so switching must be rarer than the noise.
#[derive(Debug, Clone)]
pub struct DutyCycle {
    ring: Vec<bool>,
    next: usize,
    filled: usize,
    overloaded: usize,
    engage_pct: u32,
    disengage_pct: u32,
    engaged: bool,
}

impl DutyCycle {
    /// A tracker over the last `window` passes with the given percentage
    /// thresholds. `window` is clamped to at least 1, and `disengage_pct`
    /// to below `engage_pct`.
    pub fn new(window: usize, engage_pct: u32, disengage_pct: u32) -> Self {
        let window = window.max(1);
        DutyCycle {
            ring: vec![false; window],
            next: 0,
            filled: 0,
            overloaded: 0,
            engage_pct: engage_pct.max(1),
            disengage_pct: disengage_pct.min(engage_pct.saturating_sub(1)),
            engaged: false,
        }
    }

    /// The server default: a 64-pass window, engage at 50 %, release
    /// below 25 %.
    pub fn standard() -> Self {
        DutyCycle::new(64, 50, 25)
    }

    /// Record one scan pass; returns the (possibly updated) engaged bit.
    pub fn observe(&mut self, overloaded: bool) -> bool {
        if self.filled == self.ring.len() {
            if self.ring[self.next] {
                self.overloaded -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.ring[self.next] = overloaded;
        if overloaded {
            self.overloaded += 1;
        }
        self.next = (self.next + 1) % self.ring.len();

        let pct = self.duty_pct();
        if self.engaged {
            if pct < self.disengage_pct {
                self.engaged = false;
            }
        } else if pct >= self.engage_pct {
            self.engaged = true;
        }
        self.engaged
    }

    /// Whether batch-drain mode is currently engaged.
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Overloaded fraction of the observed window, in percent.
    pub fn duty_pct(&self) -> u32 {
        (self.overloaded * 100).checked_div(self.filled).unwrap_or(0) as u32
    }
}

impl Default for DutyCycle {
    fn default() -> Self {
        DutyCycle::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [SleepPolicy::Naive, SleepPolicy::Hybrid, SleepPolicy::Spin, SleepPolicy::Auto] {
            assert_eq!(p.name().parse::<SleepPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert!("busywait".parse::<SleepPolicy>().is_err());
        assert_eq!(SleepPolicy::default(), SleepPolicy::Hybrid);
    }

    #[test]
    fn duty_cycle_engages_at_half_and_releases_below_quarter() {
        let mut d = DutyCycle::new(8, 50, 25);
        // 3/8 overloaded: still under the engage threshold.
        for _ in 0..5 {
            assert!(!d.observe(false));
        }
        for _ in 0..3 {
            assert!(!d.observe(true));
        }
        // A 4th overload in the window tips the duty cycle to 50 %.
        assert!(d.observe(true));
        assert_eq!(d.duty_pct(), 50);
        // Hysteresis: a calm pass holds the window at 50 % — engaged.
        assert!(d.observe(false));
        // …only decaying below 25 % releases. Feed calm passes until all
        // but one overloaded entry age out of the ring (1/8 = 12 %).
        for _ in 0..6 {
            d.observe(false);
        }
        assert!(!d.engaged());
        assert_eq!(d.duty_pct(), 12);
    }

    #[test]
    fn duty_cycle_does_not_flap_at_the_boundary() {
        let mut d = DutyCycle::new(4, 50, 25);
        // Alternating passes hold the duty cycle at exactly 50 %: once
        // engaged it must stay engaged (50 % ≥ 25 %), not toggle per pass.
        let mut transitions = 0;
        let mut last = d.observe(true);
        for i in 0..64 {
            let now = d.observe(i % 2 == 0);
            if now != last {
                transitions += 1;
            }
            last = now;
        }
        assert!(last, "alternating load at 50% must keep batch mode engaged");
        assert!(transitions <= 1, "mode flapped {transitions} times");
    }

    #[test]
    fn guard_band_first_sample_seeds_estimate() {
        let mut g = GuardBand::new(500_000, 1_000, 10_000_000);
        assert_eq!(g.current_ns(), 500_000 + 4 * 125_000);
        g.observe(80_000);
        // srt = 80 µs, var = 40 µs → guard = 240 µs.
        assert_eq!(g.current_ns(), 240_000);
        assert_eq!(g.samples(), 1);
    }

    #[test]
    fn guard_band_converges_toward_stable_error() {
        let mut g = GuardBand::new(1_000_000, 1_000, 10_000_000);
        for _ in 0..200 {
            g.observe(50_000);
        }
        // Constant 50 µs error: srt → 50 µs, var → 0, guard → 50 µs-ish.
        let guard = g.current_ns();
        assert!((50_000..150_000).contains(&guard), "guard = {guard}");
    }

    #[test]
    fn guard_band_widens_under_jitter_and_respects_clamp() {
        let mut g = GuardBand::new(10_000, 20_000, 300_000);
        // Alternate tight and terrible wake-ups; the band must stay within
        // the configured clamp despite the 5 ms outliers.
        for i in 0..100 {
            g.observe(if i % 2 == 0 { 5_000 } else { 5_000_000 });
        }
        assert_eq!(g.current_ns(), 300_000);
        let tight = GuardBand::new(1, 20_000, 300_000);
        assert_eq!(tight.current_ns(), 20_000);
    }
}
