//! Real-time scan-loop sleep policies and guard-band calibration.
//!
//! The §3.2 scanning thread must wake *at* each forward deadline, but an
//! OS sleep primitive only promises to wake *no earlier than* requested —
//! the actual wake-up error is the scheduler's timer slack plus run-queue
//! latency, typically tens of microseconds and spiky under load. The
//! real-time-scheduler literature (INET's RT scheduler, arXiv:1509.03105)
//! resolves this with a hybrid: sleep coarsely to `deadline − guard`,
//! then spin the last `guard` nanoseconds, where `guard` is calibrated
//! online from the wake-up error the host actually exhibits.
//!
//! This module holds the policy taxonomy ([`SleepPolicy`]) and the online
//! calibrator ([`GuardBand`]); the policies are *executed* by the server's
//! scan loop, which owns the condvar and the clock. Everything here is
//! pure arithmetic so both frontends and the tests can exercise it
//! deterministically.

use serde::{Deserialize, Serialize};

/// How the scanning thread waits for the next forward deadline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SleepPolicy {
    /// Plain condvar sleep with a fixed 50 µs floor and 50 ms cap — the
    /// pre-calibration behaviour, kept as the comparison baseline for E16.
    Naive,
    /// Coarse condvar sleep down to the calibrated guard band, then
    /// spin/yield to the deadline (the default).
    #[default]
    Hybrid,
    /// Spin/yield all the way to the deadline; lowest latency, one core
    /// pinned. Condvar-sleeps only while the schedule is empty.
    Spin,
}

impl SleepPolicy {
    /// Stable lowercase name, used in CLI flags and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SleepPolicy::Naive => "naive",
            SleepPolicy::Hybrid => "hybrid",
            SleepPolicy::Spin => "spin",
        }
    }
}

impl std::fmt::Display for SleepPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SleepPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(SleepPolicy::Naive),
            "hybrid" => Ok(SleepPolicy::Hybrid),
            "spin" => Ok(SleepPolicy::Spin),
            other => Err(format!("unknown sleep policy `{other}` (naive|hybrid|spin)")),
        }
    }
}

/// Online guard-band calibrator.
///
/// Tracks the smoothed wake-up error and its mean deviation with the
/// classic RTO-style EWMA (gains 1/8 and 1/4) and derives the guard band
/// as `srt + 4·var`, clamped to `[min, max]`. A host with tight timers
/// converges to a narrow band (little spinning); a noisy host widens the
/// band so the spin phase still absorbs the oversleep.
#[derive(Debug, Clone)]
pub struct GuardBand {
    srt_ns: u64,
    var_ns: u64,
    min_ns: u64,
    max_ns: u64,
    samples: u64,
}

impl GuardBand {
    /// A calibrator starting at `initial_ns`, clamped to `[min_ns, max_ns]`.
    pub fn new(initial_ns: u64, min_ns: u64, max_ns: u64) -> Self {
        GuardBand {
            srt_ns: initial_ns.clamp(min_ns, max_ns),
            var_ns: initial_ns / 4,
            min_ns,
            max_ns: max_ns.max(min_ns),
            samples: 0,
        }
    }

    /// The server default: start at 200 µs, never narrower than 20 µs
    /// (below timer resolution the spin phase buys nothing) and never
    /// wider than 2 ms (bounds worst-case spin per event).
    pub fn standard() -> Self {
        GuardBand::new(200_000, 20_000, 2_000_000)
    }

    /// Feeds one observed wake-up error (nanoseconds the OS woke us past
    /// the requested instant).
    pub fn observe(&mut self, wake_error_ns: u64) {
        if self.samples == 0 {
            self.srt_ns = wake_error_ns;
            self.var_ns = wake_error_ns / 2;
        } else {
            let err = wake_error_ns as i64 - self.srt_ns as i64;
            self.var_ns = (self.var_ns as i64 + (err.abs() - self.var_ns as i64) / 4).max(0) as u64;
            self.srt_ns = (self.srt_ns as i64 + err / 8).max(0) as u64;
        }
        self.samples += 1;
    }

    /// The current guard band in nanoseconds: `srt + 4·var`, clamped.
    pub fn current_ns(&self) -> u64 {
        self.srt_ns.saturating_add(self.var_ns.saturating_mul(4)).clamp(self.min_ns, self.max_ns)
    }

    /// Number of wake-up errors observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for GuardBand {
    fn default() -> Self {
        GuardBand::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [SleepPolicy::Naive, SleepPolicy::Hybrid, SleepPolicy::Spin] {
            assert_eq!(p.name().parse::<SleepPolicy>().unwrap(), p);
            assert_eq!(p.to_string(), p.name());
        }
        assert!("busywait".parse::<SleepPolicy>().is_err());
        assert_eq!(SleepPolicy::default(), SleepPolicy::Hybrid);
    }

    #[test]
    fn guard_band_first_sample_seeds_estimate() {
        let mut g = GuardBand::new(500_000, 1_000, 10_000_000);
        assert_eq!(g.current_ns(), 500_000 + 4 * 125_000);
        g.observe(80_000);
        // srt = 80 µs, var = 40 µs → guard = 240 µs.
        assert_eq!(g.current_ns(), 240_000);
        assert_eq!(g.samples(), 1);
    }

    #[test]
    fn guard_band_converges_toward_stable_error() {
        let mut g = GuardBand::new(1_000_000, 1_000, 10_000_000);
        for _ in 0..200 {
            g.observe(50_000);
        }
        // Constant 50 µs error: srt → 50 µs, var → 0, guard → 50 µs-ish.
        let guard = g.current_ns();
        assert!((50_000..150_000).contains(&guard), "guard = {guard}");
    }

    #[test]
    fn guard_band_widens_under_jitter_and_respects_clamp() {
        let mut g = GuardBand::new(10_000, 20_000, 300_000);
        // Alternate tight and terrible wake-ups; the band must stay within
        // the configured clamp despite the 5 ms outliers.
        for i in 0..100 {
            g.observe(if i % 2 == 0 { 5_000 } else { 5_000_000 });
        }
        assert_eq!(g.current_ns(), 300_000);
        let tight = GuardBand::new(1, 20_000, 300_000);
        assert_eq!(tight.current_ns(), 20_000);
    }
}
