//! The emulated network scene (§3.2).
//!
//! The emulation server "creates the desired network scene by controlling
//! the topology and configuring the wireless circumstance parameters". A
//! [`Scene`] holds every Virtual MANET Node ([`Vmn`]) with its position,
//! radios, mobility and link parameters, and keeps the channel-ID indexed
//! neighbor tables up to date incrementally as [`SceneOp`]s are applied.
//!
//! The op vocabulary is exactly what the paper's GUI exposes: "dragging and
//! dropping VMNs anywhere, double-clicking the VMN to activate
//! configuration dialogue-boxes anytime" — move node, shrink radio range,
//! switch channels, change link parameters, add/remove nodes
//! ("moving out some nodes ... to emulate a military attack", §2.2).
//!
//! [`Scene::route`] and [`Scene::decide`] implement the per-packet steps 2
//! and 3 of the server pipeline: neighbor lookup in the channel-indexed
//! table, then the drop/forward-time decision under the sender's link
//! model.

use crate::geom::Point;
use crate::ids::{ChannelId, NodeId, ProfileId, RadioId};
use crate::linkmodel::{ForwardDecision, LinkParams};
use crate::mobility::{Arena, MobilityModel, MobilityState};
use crate::neighbor::{ChannelIndexedTables, NeighborTables};
use crate::packet::{Destination, EmuPacket};
use crate::radio::RadioConfig;
use crate::rng::EmuRng;
use crate::time::EmuTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A Virtual MANET Node: the server-side image of one emulation client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vmn {
    /// Node identity.
    pub id: NodeId,
    /// Current position.
    pub pos: Point,
    /// Radio configuration (channels + ranges).
    pub radios: RadioConfig,
    /// Mobility model governing autonomous movement.
    pub mobility: MobilityModel,
    /// Runtime state of the mobility model.
    pub mob_state: MobilityState,
    /// Wireless circumstance parameters for this node's transmissions.
    pub link: LinkParams,
}

impl Vmn {
    /// A stationary node with the given radios and ideal link parameters.
    pub fn stationary(id: NodeId, pos: Point, radios: RadioConfig) -> Self {
        Vmn {
            id,
            pos,
            radios,
            mobility: MobilityModel::Stationary,
            mob_state: MobilityState::Still,
            link: LinkParams::default(),
        }
    }
}

/// A scene-construction operation — the GUI/script vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SceneOp {
    /// Adds a node to the scene.
    AddNode {
        /// New node id (must be unused).
        id: NodeId,
        /// Initial position.
        pos: Point,
        /// Radio configuration.
        radios: RadioConfig,
        /// Mobility model.
        mobility: MobilityModel,
        /// Link parameters.
        link: LinkParams,
    },
    /// Removes a node ("moving out some nodes").
    RemoveNode {
        /// Node to remove.
        id: NodeId,
    },
    /// Drag-and-drop: teleports a node to a new position.
    MoveNode {
        /// Node to move.
        id: NodeId,
        /// New position.
        pos: Point,
    },
    /// Retunes one radio to a new channel ("switching the channel").
    SetRadioChannel {
        /// Target node.
        id: NodeId,
        /// Radio slot.
        radio: RadioId,
        /// New channel.
        channel: ChannelId,
    },
    /// Changes one radio's transmission range ("changing the radio range").
    SetRadioRange {
        /// Target node.
        id: NodeId,
        /// Radio slot.
        radio: RadioId,
        /// New range, units.
        range: f64,
    },
    /// Replaces a node's whole radio configuration.
    SetRadios {
        /// Target node.
        id: NodeId,
        /// New configuration.
        radios: RadioConfig,
    },
    /// Replaces a node's mobility model.
    SetMobility {
        /// Target node.
        id: NodeId,
        /// New model.
        model: MobilityModel,
    },
    /// Reconfigures a node's wireless circumstance parameters
    /// ("lowering some link's bandwidth").
    SetLinkParams {
        /// Target node.
        id: NodeId,
        /// New parameters.
        params: LinkParams,
    },
    /// Binds a node's transmissions to an empirical link profile (or back
    /// to the analytic models with `None`). The id refers into the
    /// scenario's profile library.
    SetLinkProfile {
        /// Target node.
        id: NodeId,
        /// Profile to drive this node's links, or `None` for analytic.
        profile: Option<ProfileId>,
    },
    /// Installs or clears the arena bounds.
    SetArena {
        /// New arena, or `None` for an unbounded plane.
        arena: Option<Arena>,
    },
}

impl fmt::Display for SceneOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneOp::AddNode { id, pos, .. } => write!(f, "add {id} at {pos}"),
            SceneOp::RemoveNode { id } => write!(f, "remove {id}"),
            SceneOp::MoveNode { id, pos } => write!(f, "move {id} to {pos}"),
            SceneOp::SetRadioChannel { id, radio, channel } => {
                write!(f, "retune {id}/{radio} to {channel}")
            }
            SceneOp::SetRadioRange { id, radio, range } => {
                write!(f, "set {id}/{radio} range to {range}")
            }
            SceneOp::SetRadios { id, .. } => write!(f, "reconfigure radios of {id}"),
            SceneOp::SetMobility { id, .. } => write!(f, "set mobility of {id}"),
            SceneOp::SetLinkParams { id, .. } => write!(f, "set link params of {id}"),
            SceneOp::SetLinkProfile { id, profile: Some(p) } => {
                write!(f, "bind {id} to {p}")
            }
            SceneOp::SetLinkProfile { id, profile: None } => {
                write!(f, "unbind link profile of {id}")
            }
            SceneOp::SetArena { .. } => write!(f, "set arena"),
        }
    }
}

/// Why a scene operation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SceneError {
    /// The referenced node does not exist.
    UnknownNode(NodeId),
    /// `AddNode` with an id already in use.
    DuplicateNode(NodeId),
    /// The referenced radio slot does not exist on the node.
    NoSuchRadio(NodeId, RadioId),
    /// A numeric parameter was not finite or was negative.
    BadParameter(&'static str),
}

impl fmt::Display for SceneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SceneError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SceneError::DuplicateNode(n) => write!(f, "node {n} already exists"),
            SceneError::NoSuchRadio(n, r) => write!(f, "{n} has no {r}"),
            SceneError::BadParameter(what) => write!(f, "bad parameter: {what}"),
        }
    }
}

impl std::error::Error for SceneError {}

/// The full emulated network state.
#[derive(Debug, Default)]
pub struct Scene {
    nodes: BTreeMap<NodeId, Vmn>,
    tables: ChannelIndexedTables,
    arena: Option<Arena>,
    /// Time up to which mobility has been integrated.
    mobility_horizon: EmuTime,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node state, if present.
    pub fn node(&self, id: NodeId) -> Option<&Vmn> {
        self.nodes.get(&id)
    }

    /// All nodes, ascending by id.
    pub fn nodes(&self) -> impl Iterator<Item = &Vmn> {
        self.nodes.values()
    }

    /// The current arena bounds.
    pub fn arena(&self) -> Option<&Arena> {
        self.arena.as_ref()
    }

    /// Read access to the channel-indexed neighbor tables.
    pub fn tables(&self) -> &ChannelIndexedTables {
        &self.tables
    }

    /// Applies one scene operation at time `at`.
    ///
    /// `at` is only bookkeeping here (mobility advances are explicit via
    /// [`Scene::advance_mobility`]); the server records `(at, op)` pairs to
    /// the scene log for post-emulation replay.
    pub fn apply(&mut self, at: EmuTime, op: &SceneOp) -> Result<(), SceneError> {
        self.mobility_horizon = self.mobility_horizon.max(at);
        match op {
            SceneOp::AddNode { id, pos, radios, mobility, link } => {
                if self.nodes.contains_key(id) {
                    return Err(SceneError::DuplicateNode(*id));
                }
                if !pos.is_finite() {
                    return Err(SceneError::BadParameter("position must be finite"));
                }
                let vmn = Vmn {
                    id: *id,
                    pos: *pos,
                    radios: radios.clone(),
                    mobility: *mobility,
                    mob_state: MobilityState::init(mobility),
                    link: *link,
                };
                self.tables.insert_node(*id, *pos, radios.clone());
                self.nodes.insert(*id, vmn);
                Ok(())
            }
            SceneOp::RemoveNode { id } => {
                self.nodes.remove(id).ok_or(SceneError::UnknownNode(*id))?;
                self.tables.remove_node(*id);
                Ok(())
            }
            SceneOp::MoveNode { id, pos } => {
                if !pos.is_finite() {
                    return Err(SceneError::BadParameter("position must be finite"));
                }
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.pos = *pos;
                self.tables.update_position(*id, *pos);
                Ok(())
            }
            SceneOp::SetRadioChannel { id, radio, channel } => {
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.radios
                    .set_channel(*radio, *channel)
                    .ok_or(SceneError::NoSuchRadio(*id, *radio))?;
                self.tables.update_radios(*id, v.radios.clone());
                Ok(())
            }
            SceneOp::SetRadioRange { id, radio, range } => {
                if !range.is_finite() || *range < 0.0 {
                    return Err(SceneError::BadParameter("range must be finite and ≥ 0"));
                }
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.radios.set_range(*radio, *range).ok_or(SceneError::NoSuchRadio(*id, *radio))?;
                self.tables.update_radios(*id, v.radios.clone());
                Ok(())
            }
            SceneOp::SetRadios { id, radios } => {
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.radios = radios.clone();
                self.tables.update_radios(*id, radios.clone());
                Ok(())
            }
            SceneOp::SetMobility { id, model } => {
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.mobility = *model;
                v.mob_state = MobilityState::init(model);
                Ok(())
            }
            SceneOp::SetLinkParams { id, params } => {
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.link = *params;
                Ok(())
            }
            SceneOp::SetLinkProfile { id, profile } => {
                let v = self.nodes.get_mut(id).ok_or(SceneError::UnknownNode(*id))?;
                v.link.profile = *profile;
                Ok(())
            }
            SceneOp::SetArena { arena } => {
                self.arena = *arena;
                Ok(())
            }
        }
    }

    /// Integrates every node's mobility model from the last horizon up to
    /// `to`, updating positions and neighbor tables. No-op for `to` at or
    /// before the horizon.
    ///
    /// Two passes: independent movers first, then group members relative
    /// to their (already updated) leader — the reference-point group
    /// mobility semantics. A member whose leader has left the scene holds
    /// its position.
    pub fn advance_mobility(&mut self, to: EmuTime, rng: &mut EmuRng) {
        if to <= self.mobility_horizon {
            return;
        }
        let dt = (to - self.mobility_horizon).as_secs_f64();
        self.mobility_horizon = to;
        let arena = self.arena;
        let mut moved: Vec<(NodeId, Point)> = self
            .nodes
            .values_mut()
            .filter(|v| v.mobility.is_mobile() && v.mobility.leader().is_none())
            .map(|v| {
                let new_pos = v.mob_state.advance(&v.mobility, v.pos, dt, rng, arena.as_ref());
                v.pos = new_pos;
                (v.id, new_pos)
            })
            .collect();
        // Second pass: group members follow their leader's new position.
        let member_ids: Vec<NodeId> =
            self.nodes.values().filter(|v| v.mobility.leader().is_some()).map(|v| v.id).collect();
        for id in member_ids {
            let leader = self.nodes[&id].mobility.leader().expect("filtered members");
            let Some(leader_pos) = self.nodes.get(&leader).map(|l| l.pos) else {
                continue;
            };
            let v = self.nodes.get_mut(&id).expect("member exists");
            let model = v.mobility;
            let new_pos =
                v.mob_state.advance_following(&model, v.pos, leader_pos, dt, rng, arena.as_ref());
            v.pos = new_pos;
            moved.push((id, new_pos));
        }
        for (id, pos) in moved {
            self.tables.update_position(id, pos);
        }
    }

    /// Time up to which mobility has been integrated.
    pub fn mobility_horizon(&self) -> EmuTime {
        self.mobility_horizon
    }

    /// Step 2 of the per-packet pipeline: the set of clients a packet from
    /// `src` on `channel` must be considered for. Unicast narrows the
    /// neighbor set to the target; broadcast takes the whole `NT(src, ch)`.
    pub fn route(&self, src: NodeId, channel: ChannelId, dst: Destination) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.route_into(src, channel, dst, &mut out);
        out
    }

    /// [`Scene::route`] into a caller-provided buffer (cleared first) —
    /// the hot-path form: a reused buffer makes routing allocation-free
    /// in steady state.
    pub fn route_into(
        &self,
        src: NodeId,
        channel: ChannelId,
        dst: Destination,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.tables.neighbors_into(src, channel, out);
        if let Destination::Unicast(d) = dst {
            let hit = out.binary_search(&d).is_ok();
            out.clear();
            if hit {
                out.push(d);
            }
        }
    }

    /// Step 3: the drop/forward-time decision for one `(src → dst)` copy
    /// of a packet of `bytes` on `channel`, under the sender's link
    /// parameters materialized at its current radio range.
    pub fn decide(
        &self,
        src: NodeId,
        dst: NodeId,
        channel: ChannelId,
        bytes: usize,
        rng: &mut EmuRng,
    ) -> Option<ForwardDecision> {
        let s = self.nodes.get(&src)?;
        let d = self.nodes.get(&dst)?;
        let range = s.radios.range_on(channel)?;
        let r = s.pos.distance(d.pos);
        Some(s.link.with_range(range).decide(bytes, r, rng))
    }

    /// The profile bound to `src`'s transmissions, if any.
    pub fn link_profile(&self, src: NodeId) -> Option<ProfileId> {
        self.nodes.get(&src).and_then(|v| v.link.profile)
    }

    /// Reachability gate for a profile-driven transmission: `Some(r)` when
    /// both endpoints exist and the sender is tuned on `channel` — the same
    /// preconditions [`Scene::decide`] enforces before consulting the
    /// analytic models. The distance is returned for diagnostics; the
    /// profile backends are time-indexed, not distance-indexed.
    pub fn link_gate(&self, src: NodeId, dst: NodeId, channel: ChannelId) -> Option<f64> {
        let s = self.nodes.get(&src)?;
        let d = self.nodes.get(&dst)?;
        s.radios.range_on(channel)?;
        Some(s.pos.distance(d.pos))
    }

    /// Steps 2+3 for a whole packet: routes it and returns, per reachable
    /// destination, the forwarding decision.
    pub fn dispatch(&self, pkt: &EmuPacket, rng: &mut EmuRng) -> Vec<(NodeId, ForwardDecision)> {
        self.route(pkt.src, pkt.channel, pkt.dst)
            .into_iter()
            .filter_map(|dst| {
                self.decide(pkt.src, dst, pkt.channel, pkt.wire_size(), rng).map(|dec| (dst, dec))
            })
            .collect()
    }

    /// Loss probability of the `src → dst` link on `channel` right now,
    /// under the current scene — the "expected" value the Fig. 10 curves
    /// are drawn from.
    pub fn loss_probability(&self, src: NodeId, dst: NodeId, channel: ChannelId) -> Option<f64> {
        let s = self.nodes.get(&src)?;
        let d = self.nodes.get(&dst)?;
        let range = s.radios.range_on(channel)?;
        if !d.radios.listens_on(channel) {
            return Some(1.0);
        }
        let r = s.pos.distance(d.pos);
        Some(s.link.with_range(range).loss.probability(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RadioId;
    use crate::linkmodel::ForwardDecision;
    use crate::neighbor::check_against_brute_force;
    use crate::packet::HEADER_BYTES;
    use crate::PacketId;

    fn add(scene: &mut Scene, id: u32, x: f64, y: f64, ch: u16, range: f64) {
        scene
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(x, y),
                    radios: RadioConfig::single(ChannelId(ch), range),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::ideal(8e6),
                },
            )
            .unwrap();
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        add(&mut s, 2, 50.0, 0.0, 1, 100.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast), vec![NodeId(2)]);
        s.apply(EmuTime::ZERO, &SceneOp::RemoveNode { id: NodeId(2) }).unwrap();
        assert!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        let err = s
            .apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(1),
                    pos: Point::ORIGIN,
                    radios: RadioConfig::none(),
                    mobility: MobilityModel::Stationary,
                    link: LinkParams::default(),
                },
            )
            .unwrap_err();
        assert_eq!(err, SceneError::DuplicateNode(NodeId(1)));
    }

    #[test]
    fn ops_on_unknown_node_rejected() {
        let mut s = Scene::new();
        for op in [
            SceneOp::RemoveNode { id: NodeId(9) },
            SceneOp::MoveNode { id: NodeId(9), pos: Point::ORIGIN },
            SceneOp::SetMobility { id: NodeId(9), model: MobilityModel::Stationary },
            SceneOp::SetLinkParams { id: NodeId(9), params: LinkParams::default() },
            SceneOp::SetRadioRange { id: NodeId(9), radio: RadioId(0), range: 1.0 },
        ] {
            assert_eq!(s.apply(EmuTime::ZERO, &op), Err(SceneError::UnknownNode(NodeId(9))));
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        assert!(matches!(
            s.apply(
                EmuTime::ZERO,
                &SceneOp::MoveNode { id: NodeId(1), pos: Point::new(f64::NAN, 0.0) }
            ),
            Err(SceneError::BadParameter(_))
        ));
        assert!(matches!(
            s.apply(
                EmuTime::ZERO,
                &SceneOp::SetRadioRange { id: NodeId(1), radio: RadioId(0), range: -5.0 }
            ),
            Err(SceneError::BadParameter(_))
        ));
        assert!(matches!(
            s.apply(
                EmuTime::ZERO,
                &SceneOp::SetRadioRange { id: NodeId(1), radio: RadioId(3), range: 5.0 }
            ),
            Err(SceneError::NoSuchRadio(_, _))
        ));
    }

    #[test]
    fn drag_and_drop_updates_neighborhood() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        add(&mut s, 2, 300.0, 0.0, 1, 100.0);
        assert!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast).is_empty());
        s.apply(
            EmuTime::from_secs(1),
            &SceneOp::MoveNode { id: NodeId(2), pos: Point::new(80.0, 0.0) },
        )
        .unwrap();
        assert_eq!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast), vec![NodeId(2)]);
        check_against_brute_force(s.tables()).unwrap();
    }

    #[test]
    fn channel_switch_disconnects() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 200.0);
        add(&mut s, 2, 100.0, 0.0, 1, 200.0);
        s.apply(
            EmuTime::ZERO,
            &SceneOp::SetRadioChannel { id: NodeId(2), radio: RadioId(0), channel: ChannelId(5) },
        )
        .unwrap();
        assert!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast).is_empty());
        assert_eq!(s.loss_probability(NodeId(1), NodeId(2), ChannelId(1)), Some(1.0));
    }

    #[test]
    fn unicast_routing_respects_neighborhood() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        add(&mut s, 2, 50.0, 0.0, 1, 100.0);
        add(&mut s, 3, 90.0, 0.0, 1, 100.0);
        assert_eq!(
            s.route(NodeId(1), ChannelId(1), Destination::Unicast(NodeId(2))),
            vec![NodeId(2)]
        );
        // Node 3 is in range of 1 (90 ≤ 100) so unicast reaches it directly,
        // but a node out of range is unreachable.
        assert_eq!(
            s.route(NodeId(1), ChannelId(1), Destination::Unicast(NodeId(3))),
            vec![NodeId(3)]
        );
        s.apply(EmuTime::ZERO, &SceneOp::MoveNode { id: NodeId(3), pos: Point::new(150.0, 0.0) })
            .unwrap();
        assert!(s.route(NodeId(1), ChannelId(1), Destination::Unicast(NodeId(3))).is_empty());
    }

    #[test]
    fn dispatch_forwards_on_ideal_link() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        add(&mut s, 2, 60.0, 0.0, 1, 100.0);
        let pkt = EmuPacket::new(
            PacketId(1),
            NodeId(1),
            Destination::Broadcast,
            ChannelId(1),
            RadioId(0),
            EmuTime::ZERO,
            vec![0u8; 1000 - HEADER_BYTES],
        );
        let mut rng = EmuRng::seed(1);
        let out = s.dispatch(&pkt, &mut rng);
        assert_eq!(out.len(), 1);
        let (dst, dec) = out[0];
        assert_eq!(dst, NodeId(2));
        // 1000 bytes at 8 Mbps = 1 ms transmission time.
        assert_eq!(dec, ForwardDecision::ForwardAfter(crate::EmuDuration::from_millis(1)));
    }

    #[test]
    fn mobility_advance_moves_nodes_and_tables() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(2),
                pos: Point::new(90.0, 0.0),
                radios: RadioConfig::single(ChannelId(1), 100.0),
                mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                link: LinkParams::ideal(8e6),
            },
        )
        .unwrap();
        let mut rng = EmuRng::seed(7);
        assert_eq!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast), vec![NodeId(2)]);
        // After 2 s node 2 is at x = 110 > range 100.
        s.advance_mobility(EmuTime::from_secs(2), &mut rng);
        assert!(s.route(NodeId(1), ChannelId(1), Destination::Broadcast).is_empty());
        assert_eq!(s.node(NodeId(2)).unwrap().pos, Point::new(110.0, 0.0));
        check_against_brute_force(s.tables()).unwrap();
        // Advancing to a past time is a no-op.
        s.advance_mobility(EmuTime::from_secs(1), &mut rng);
        assert_eq!(s.node(NodeId(2)).unwrap().pos, Point::new(110.0, 0.0));
        assert_eq!(s.mobility_horizon(), EmuTime::from_secs(2));
    }

    #[test]
    fn loss_probability_tracks_distance_and_params() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 200.0);
        add(&mut s, 2, 125.0, 0.0, 1, 200.0);
        s.apply(
            EmuTime::ZERO,
            &SceneOp::SetLinkParams { id: NodeId(1), params: LinkParams::table3() },
        )
        .unwrap();
        // Table-3 model at r=125: 0.5 (see linkmodel tests).
        let p = s.loss_probability(NodeId(1), NodeId(2), ChannelId(1)).unwrap();
        assert!((p - 0.5).abs() < 1e-9, "{p}");
    }

    #[test]
    fn set_mobility_resets_state() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        s.apply(
            EmuTime::ZERO,
            &SceneOp::SetMobility {
                id: NodeId(1),
                model: MobilityModel::Linear { direction_deg: 90.0, speed: 5.0 },
            },
        )
        .unwrap();
        let mut rng = EmuRng::seed(3);
        s.advance_mobility(EmuTime::from_secs(4), &mut rng);
        let p = s.node(NodeId(1)).unwrap().pos;
        assert!(p.distance(Point::new(0.0, 20.0)) < 1e-9, "{p}");
    }

    #[test]
    fn arena_constrains_scene_mobility() {
        let mut s = Scene::new();
        s.apply(EmuTime::ZERO, &SceneOp::SetArena { arena: Some(Arena::new(50.0, 50.0)) }).unwrap();
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(1),
                pos: Point::new(25.0, 25.0),
                radios: RadioConfig::single(ChannelId(1), 10.0),
                mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 100.0 },
                link: LinkParams::default(),
            },
        )
        .unwrap();
        let mut rng = EmuRng::seed(4);
        s.advance_mobility(EmuTime::from_secs(10), &mut rng);
        assert_eq!(s.node(NodeId(1)).unwrap().pos, Point::new(50.0, 25.0));
    }

    #[test]
    fn link_profile_binding_round_trips_through_ops() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        assert_eq!(s.link_profile(NodeId(1)), None);
        s.apply(
            EmuTime::ZERO,
            &SceneOp::SetLinkProfile { id: NodeId(1), profile: Some(crate::ProfileId(2)) },
        )
        .unwrap();
        assert_eq!(s.link_profile(NodeId(1)), Some(crate::ProfileId(2)));
        s.apply(EmuTime::ZERO, &SceneOp::SetLinkProfile { id: NodeId(1), profile: None }).unwrap();
        assert_eq!(s.link_profile(NodeId(1)), None);
        assert_eq!(
            s.apply(EmuTime::ZERO, &SceneOp::SetLinkProfile { id: NodeId(9), profile: None }),
            Err(SceneError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn link_gate_mirrors_decide_preconditions() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        add(&mut s, 2, 60.0, 0.0, 1, 100.0);
        assert_eq!(s.link_gate(NodeId(1), NodeId(2), ChannelId(1)), Some(60.0));
        // Same None cases as decide: missing node, untuned channel.
        assert!(s.link_gate(NodeId(1), NodeId(9), ChannelId(1)).is_none());
        assert!(s.link_gate(NodeId(9), NodeId(2), ChannelId(1)).is_none());
        assert!(s.link_gate(NodeId(1), NodeId(2), ChannelId(7)).is_none());
    }

    #[test]
    fn decide_missing_entities_yield_none() {
        let mut s = Scene::new();
        add(&mut s, 1, 0.0, 0.0, 1, 100.0);
        let mut rng = EmuRng::seed(5);
        assert!(s.decide(NodeId(1), NodeId(9), ChannelId(1), 100, &mut rng).is_none());
        assert!(s.decide(NodeId(9), NodeId(1), ChannelId(1), 100, &mut rng).is_none());
        // Source not tuned to the channel:
        assert!(s.decide(NodeId(1), NodeId(1), ChannelId(7), 100, &mut rng).is_none());
    }
}

#[cfg(test)]
mod group_mobility_tests {
    use super::*;
    use crate::ChannelId;

    fn group_scene() -> Scene {
        let mut s = Scene::new();
        // Leader marches east; two members in formation behind it.
        s.apply(
            EmuTime::ZERO,
            &SceneOp::AddNode {
                id: NodeId(1),
                pos: Point::new(0.0, 0.0),
                radios: RadioConfig::single(ChannelId(1), 100.0),
                mobility: MobilityModel::Linear { direction_deg: 0.0, speed: 10.0 },
                link: LinkParams::default(),
            },
        )
        .unwrap();
        for (id, y) in [(2u32, 20.0), (3u32, -20.0)] {
            s.apply(
                EmuTime::ZERO,
                &SceneOp::AddNode {
                    id: NodeId(id),
                    pos: Point::new(-10.0, y),
                    radios: RadioConfig::single(ChannelId(1), 100.0),
                    mobility: MobilityModel::GroupMember { leader: NodeId(1), max_wander: 3.0 },
                    link: LinkParams::default(),
                },
            )
            .unwrap();
        }
        s
    }

    #[test]
    fn members_follow_the_marching_leader() {
        let mut s = group_scene();
        let mut rng = EmuRng::seed(5);
        for step in 1..=100u64 {
            s.advance_mobility(EmuTime::from_millis(step * 100), &mut rng);
        }
        // After 10 s the leader is at x = 100.
        let leader = s.node(NodeId(1)).unwrap().pos;
        assert!((leader.x - 100.0).abs() < 1e-6, "{leader}");
        // Members hold formation (offset ± wander radius).
        for (id, y) in [(2u32, 20.0), (3u32, -20.0)] {
            let m = s.node(NodeId(id)).unwrap().pos;
            let reference = Point::new(leader.x - 10.0, y);
            assert!(
                m.distance(reference) <= 3.0 + 1e-9,
                "{id} strayed: {m} vs reference {reference}"
            );
        }
        crate::neighbor::check_against_brute_force(s.tables()).unwrap();
    }

    #[test]
    fn member_with_missing_leader_holds_position() {
        let mut s = group_scene();
        s.apply(EmuTime::ZERO, &SceneOp::RemoveNode { id: NodeId(1) }).unwrap();
        let before = s.node(NodeId(2)).unwrap().pos;
        let mut rng = EmuRng::seed(6);
        s.advance_mobility(EmuTime::from_secs(5), &mut rng);
        assert_eq!(s.node(NodeId(2)).unwrap().pos, before);
    }

    #[test]
    fn group_stays_connected_while_marching() {
        let mut s = group_scene();
        let mut rng = EmuRng::seed(7);
        for step in 1..=200u64 {
            s.advance_mobility(EmuTime::from_millis(step * 100), &mut rng);
            // The whole formation stays within radio range of the leader.
            let nbrs = s.route(NodeId(1), ChannelId(1), Destination::Broadcast);
            assert_eq!(nbrs.len(), 2, "formation broke at step {step}: {nbrs:?}");
        }
    }
}
