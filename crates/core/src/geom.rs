//! 2-D geometry for node placement and mobility.
//!
//! The paper's mobility and link models (§4.3) are planar: positions are
//! `(x, y)` in an abstract "(unit)" coordinate system, directions are
//! degrees measured counter-clockwise from the +x axis (so the paper's
//! "moving direction 90°" in Table 3 points along +y; the experiment moves
//! the relay "downwards", i.e. we treat +y as down — the models are
//! orientation-agnostic).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point (or displacement) in the 2-D emulation plane, in abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Builds a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point — the paper's `D(A,B)`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared distance; avoids the square root in neighbor checks.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let d = self - other;
        d.x * d.x + d.y * d.y
    }

    /// Vector length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// A unit displacement for a heading in degrees (counter-clockwise
    /// from +x), matching the paper's kinematics
    /// `x += v·t·cosθ, y += v·t·sinθ`.
    #[inline]
    pub fn heading(degrees: f64) -> Point {
        let r = degrees.to_radians();
        Point::new(r.cos(), r.sin())
    }

    /// Moves `speed` units/second along `degrees` for `secs` seconds.
    #[inline]
    pub fn advance(self, degrees: f64, speed: f64, secs: f64) -> Point {
        self + Point::heading(degrees) * (speed * secs)
    }

    /// Clamps the point into the axis-aligned rectangle `[0, w] × [0, h]`.
    #[inline]
    pub fn clamp_to(self, w: f64, h: f64) -> Point {
        Point::new(self.x.clamp(0.0, w), self.y.clamp(0.0, h))
    }

    /// True when every coordinate is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, o: Point) -> Point {
        Point::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, o: Point) {
        *self = *self + o;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, o: Point) -> Point {
        Point::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!(close(a.distance(b), 5.0));
        assert!(close(a.distance_sq(b), 25.0));
        assert!(close(b.distance(a), 5.0));
    }

    #[test]
    fn heading_cardinals() {
        let e = Point::heading(0.0);
        assert!(close(e.x, 1.0) && close(e.y, 0.0));
        let n = Point::heading(90.0);
        assert!(close(n.x, 0.0) && close(n.y, 1.0));
        let w = Point::heading(180.0);
        assert!(close(w.x, -1.0) && close(w.y, 0.0));
        let s = Point::heading(270.0);
        assert!(close(s.x, 0.0) && close(s.y, -1.0));
    }

    #[test]
    fn advance_matches_kinematics() {
        // Paper §4.3.1: x(t+Δ) = x(t) + v·t_move·cosθ
        let p = Point::new(10.0, 20.0).advance(90.0, 10.0, 2.0);
        assert!(close(p.x, 10.0));
        assert!(close(p.y, 40.0));
    }

    #[test]
    fn clamp_keeps_points_in_arena() {
        let p = Point::new(-5.0, 1200.0).clamp_to(1000.0, 1000.0);
        assert_eq!(p, Point::new(0.0, 1000.0));
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
