//! Strongly typed identifiers used throughout the emulator.
//!
//! The paper identifies virtual MANET nodes ("VMN1", "VMN2", ...) by small
//! integers, radios by their index within a node, and channels by a global
//! channel ID. Newtypes keep those three spaces from being mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a Virtual MANET Node (VMN).
///
/// Each emulation client maps to exactly one VMN in the server (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VMN{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifier of a radio channel.
///
/// In the multi-radio model (§4.2) every radio is tuned to one channel and
/// the server keeps one neighbor table per channel ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// Returns the raw channel number.
    #[inline]
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u16> for ChannelId {
    fn from(v: u16) -> Self {
        ChannelId(v)
    }
}

/// Index of a radio within a node (a multi-radio node has several).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RadioId(pub u8);

impl RadioId {
    /// Returns the raw radio slot index.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for RadioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "radio{}", self.0)
    }
}

/// Identifier of an empirical link profile in a scenario's profile library.
///
/// Profiles are declared by name in committed profile files; the library
/// interns each name to a dense index so scene state stays `Copy` and the
/// `.poemlog` serialization never embeds strings. `ProfileId(3)` is only
/// meaningful relative to the library the scenario loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProfileId(pub u32);

impl ProfileId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ProfileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "profile#{}", self.0)
    }
}

impl From<u32> for ProfileId {
    fn from(v: u32) -> Self {
        ProfileId(v)
    }
}

/// Globally unique identifier of an emulated packet.
///
/// Assigned by the originating client; used by the recorder to correlate the
/// incoming and outgoing legs of each forwarded packet (§3.2 step 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl PacketId {
    /// Returns the raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_display_matches_paper_naming() {
        assert_eq!(NodeId(1).to_string(), "VMN1");
        assert_eq!(NodeId(42).to_string(), "VMN42");
    }

    #[test]
    fn channel_id_display() {
        assert_eq!(ChannelId(2).to_string(), "ch2");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
        assert!(ChannelId(1) < ChannelId(2));
        assert!(PacketId(1) < PacketId(2));
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(NodeId::from(7u32).index(), 7);
        assert_eq!(ChannelId::from(3u16).index(), 3);
        assert_eq!(RadioId(1).index(), 1);
        assert_eq!(PacketId(9).raw(), 9);
        assert_eq!(ProfileId::from(5u32).index(), 5);
        assert_eq!(ProfileId(5).to_string(), "profile#5");
    }
}
